package cluster

import (
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"harness2/internal/registry"
	"harness2/internal/soap"
	"harness2/internal/telemetry"
)

// Peer-op SOAP actions. The "c." prefix keeps them out of the public
// registry action namespace; a node serves both sets on one endpoint.
const (
	opPublish       = "c.publish"
	opReplicate     = "c.replicate"
	opGet           = "c.get"
	opFindName      = "c.findName"
	opFindQuery     = "c.findQuery"
	opRenew         = "c.renew"
	opRemove        = "c.remove"
	opRemoveReplica = "c.removeReplica"
	opGossip        = "c.gossip"
	opMembers       = "c.members"
)

// Exported peer-op names for callers outside the package: the
// cmd/hregistry join bootstrap asks any live peer for OpMembers, and the
// E17 bench probes an owner shard directly with OpFindName.
const (
	OpMembers  = opMembers
	OpFindName = opFindName
)

// Config describes one cluster node.
type Config struct {
	// ID is the node's logical identity: what the ring hashes and the
	// membership tracks. Addr is where its transport listens; keeping
	// the two distinct lets tests pick IDs that steer ring placement.
	ID   string
	Addr string
	// Seed is the initial membership (self is added automatically).
	Seed []PeerState
	// Replicas is the total copy count per entry (owner + successors);
	// values < 1 mean 1 (no replication). R=2 survives one peer death.
	Replicas int
	// VNodes is the per-peer vnode count (0 = DefaultVNodes).
	VNodes int
	// DeadAfter ages a suspicion into death and ring eviction.
	// Zero defaults to 5s.
	DeadAfter time.Duration
	// Clock is the time source (nil = time.Now); churn tests inject a
	// stepped clock shared with the store.
	Clock func() time.Time
	// Caller carries peer RPCs (required for multi-node operation).
	Caller PeerCaller
	// Store is the local shard store; nil builds one on Clock.
	Store *registry.Registry
	// Telemetry receives the ring/replication gauges and counters.
	Telemetry *telemetry.Registry
}

// Node is one peer of the registry cluster: a local shard store plus the
// routing, replication, membership, and rebalance machinery that makes N
// of them behave as one logical registry. It implements registry.Lookup,
// registry.LeaseHolder, and registry.CheckedLookup, so every existing
// client (Cache, Binder, LeaseKeeper) composes with a cluster node
// exactly as with a single registry.
type Node struct {
	cfg     Config
	store   *registry.Registry
	members *Membership
	caller  PeerCaller

	mu   sync.Mutex
	ring *Ring
	seq  uint64

	// stats are plain atomic counters mirroring the telemetry counters,
	// readable even when telemetry is disabled (bench harness, tests).
	stMoved, stHandoffFail, stReplFail, stForwarded atomic.Uint64

	// metrics
	gAlive, gSuspect, gDead *telemetry.Gauge
	gRingPeers              *telemetry.Gauge
	gLocalEntries           *telemetry.Gauge
	cMoved                  *telemetry.Counter
	cHandoffFail            *telemetry.Counter
	cReplFail               *telemetry.Counter
	cForwarded              *telemetry.Counter
	cGossipRounds           *telemetry.Counter
}

// NewNode builds a cluster node from cfg. The node is ready to serve
// immediately; call Step periodically (or from a Ticker) to drive gossip.
func NewNode(cfg Config) *Node {
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 5 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	st := cfg.Store
	if st == nil {
		st = registry.NewWithClock(cfg.Clock)
	}
	seed := append([]PeerState(nil), cfg.Seed...)
	seed = append(seed, PeerState{ID: cfg.ID, Addr: cfg.Addr})
	n := &Node{
		cfg:     cfg,
		store:   st,
		members: NewMembership(cfg.ID, seed, cfg.DeadAfter, cfg.Clock),
		caller:  cfg.Caller,
	}
	n.ring = BuildRing(idsOf(n.members.Members()), cfg.VNodes)
	tel := telemetry.Or(cfg.Telemetry)
	tel.Help("cluster_members", "Cluster membership per liveness state.")
	tel.Help("cluster_ring_peers", "Peers currently in the consistent-hash ring.")
	tel.Help("cluster_entries_local", "Entries held by the local shard store.")
	tel.Help("cluster_rebalance_moved_total", "Entries pushed to other peers by rebalance.")
	tel.Help("cluster_handoff_failures_total", "Rebalance pushes that failed (entry retained locally).")
	tel.Help("cluster_replication_failures_total", "Replica writes that failed during publish/renew.")
	tel.Help("cluster_forwarded_total", "Client operations forwarded to the owning peer.")
	tel.Help("cluster_gossip_rounds_total", "Gossip exchanges initiated by this node.")
	id := cfg.ID
	n.gAlive = tel.Gauge("cluster_members", "node", id, "state", "alive")
	n.gSuspect = tel.Gauge("cluster_members", "node", id, "state", "suspect")
	n.gDead = tel.Gauge("cluster_members", "node", id, "state", "dead")
	n.gRingPeers = tel.Gauge("cluster_ring_peers", "node", id)
	n.gLocalEntries = tel.Gauge("cluster_entries_local", "node", id)
	n.cMoved = tel.Counter("cluster_rebalance_moved_total", "node", id)
	n.cHandoffFail = tel.Counter("cluster_handoff_failures_total", "node", id)
	n.cReplFail = tel.Counter("cluster_replication_failures_total", "node", id)
	n.cForwarded = tel.Counter("cluster_forwarded_total", "node", id)
	n.cGossipRounds = tel.Counter("cluster_gossip_rounds_total", "node", id)
	n.updateGauges()
	return n
}

var (
	_ registry.Lookup        = (*Node)(nil)
	_ registry.LeaseHolder   = (*Node)(nil)
	_ registry.CheckedLookup = (*Node)(nil)
	_ registry.Backend       = (*Node)(nil)
)

func idsOf(ps []PeerState) []string {
	ids := make([]string, len(ps))
	for i, p := range ps {
		ids[i] = p.ID
	}
	return ids
}

// ID returns the node's logical identity.
func (n *Node) ID() string { return n.cfg.ID }

// Addr returns the node's transport address.
func (n *Node) Addr() string { return n.cfg.Addr }

// Store exposes the local shard store (tests and metrics).
func (n *Node) Store() *registry.Registry { return n.store }

// Membership exposes the peer table (tests and the members peer op).
func (n *Node) Membership() *Membership { return n.members }

// Ring returns the node's current ring snapshot.
func (n *Node) Ring() *Ring {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ring
}

func (n *Node) updateGauges() {
	a, s, d := n.members.Counts()
	n.gAlive.Set(int64(a))
	n.gSuspect.Set(int64(s))
	n.gDead.Set(int64(d))
	n.gRingPeers.Set(int64(n.Ring().Len()))
	n.gLocalEntries.Set(int64(n.store.Len()))
}

// owners resolves the owner peer-states for a ring key, primary first,
// using the node's current ring and membership. Peers the membership has
// lost track of are skipped.
func (n *Node) owners(ringKey string) []PeerState {
	ring := n.Ring()
	ids := ring.Owners(ringKey, n.cfg.Replicas)
	out := make([]PeerState, 0, len(ids))
	for _, id := range ids {
		if p, ok := n.members.Get(id); ok {
			out = append(out, p)
		}
	}
	return out
}

// OwnerAddr returns the transport address of keyOrName's primary owner.
func (n *Node) OwnerAddr(keyOrName string) (string, bool) {
	os := n.owners(RingKey(keyOrName))
	if len(os) == 0 {
		return "", false
	}
	return os[0].Addr, true
}

// IsLocalOwner reports whether this node is among keyOrName's owners.
func (n *Node) IsLocalOwner(keyOrName string) bool {
	for _, p := range n.owners(RingKey(keyOrName)) {
		if p.ID == n.cfg.ID {
			return true
		}
	}
	return false
}

// isLocalPrimary reports whether this node is the primary owner.
func (n *Node) isLocalPrimary(ringKey string) bool {
	os := n.owners(ringKey)
	return len(os) > 0 && os[0].ID == n.cfg.ID
}

// clusterKey canonicalises an entry key so it routes with its name: a
// cluster-assigned key is "name::<node>-<seq>", and a caller-chosen key
// that does not already carry the entry's name as its ring prefix is
// rewritten to "name::key". Rewriting is deterministic, so keyed
// re-publication stays idempotent.
func (n *Node) clusterKey(e registry.Entry) string {
	if e.Key == "" {
		n.mu.Lock()
		n.seq++
		k := fmt.Sprintf("%s::%s-%d", e.Name, n.cfg.ID, n.seq)
		n.mu.Unlock()
		return k
	}
	if RingKey(e.Key) == e.Name {
		return e.Key
	}
	return e.Name + "::" + e.Key
}

// ---- client surface -------------------------------------------------

// Publish implements registry.Lookup.
func (n *Node) Publish(e registry.Entry) (string, error) {
	return n.PublishLeased(e, 0)
}

// PublishLeased implements registry.LeaseHolder: the entry is stored on
// its name's primary owner and replicated (with its lease) to the ring
// successors. Called on a non-owner, the operation is forwarded.
func (n *Node) PublishLeased(e registry.Entry, lease time.Duration) (string, error) {
	if e.Name == "" {
		return "", fmt.Errorf("registry: entry must be named")
	}
	e.Key = n.clusterKey(e)
	if n.isLocalPrimary(e.Name) {
		return n.publishLocal(e, lease)
	}
	return n.forwardPublish(e, lease)
}

// publishLocal stores the entry on this (owning) node and replicates it,
// lease included, to the other owners. The owner write is authoritative:
// replica failures are counted but do not fail the publish — the next
// renewal or rebalance repairs them.
func (n *Node) publishLocal(e registry.Entry, lease time.Duration) (string, error) {
	key, err := n.store.PublishLeased(e, lease)
	if err != nil {
		return "", err
	}
	e.Key = key
	n.replicate(e, lease)
	n.gLocalEntries.Set(int64(n.store.Len()))
	return key, nil
}

// replicate pushes one entry to every non-self owner.
func (n *Node) replicate(e registry.Entry, lease time.Duration) {
	for _, p := range n.owners(RingKey(e.Key)) {
		if p.ID == n.cfg.ID {
			continue
		}
		if err := n.replicateTo(p.Addr, e, lease); err != nil {
			n.cReplFail.Inc()
			n.stReplFail.Add(1)
		}
	}
}

func (n *Node) replicateTo(addr string, e registry.Entry, lease time.Duration) error {
	e.LeaseRemaining = lease
	_, err := n.call(addr, opReplicate, registry.MarshalEntry(e))
	return err
}

func (n *Node) forwardPublish(e registry.Entry, lease time.Duration) (string, error) {
	addr, ok := n.OwnerAddr(e.Name)
	if !ok {
		return "", fmt.Errorf("%w: no owner for %q", registry.ErrUnavailable, e.Name)
	}
	n.cForwarded.Inc()
	n.stForwarded.Add(1)
	e.LeaseRemaining = lease
	out, err := n.call(addr, opPublish, registry.MarshalEntry(e))
	if err != nil {
		return "", fmt.Errorf("%w: publish via %s: %v", registry.ErrUnavailable, addr, err)
	}
	if v, ok := outParam(out, "key"); ok {
		if k, ok := v.(string); ok {
			return k, nil
		}
	}
	return "", fmt.Errorf("registry: malformed publish response")
}

// Renew implements registry.LeaseHolder, routing the renewal to the
// entry's current primary owner (which may have changed since the entry
// was published). On the owner it renews locally and refreshes replicas.
func (n *Node) Renew(key string) error {
	rk := RingKey(key)
	if n.isLocalPrimary(rk) {
		return n.renewLocal(key)
	}
	addr, ok := n.OwnerAddr(rk)
	if !ok {
		return fmt.Errorf("%w: no owner for %q", registry.ErrUnavailable, key)
	}
	n.cForwarded.Inc()
	n.stForwarded.Add(1)
	_, err := n.call(addr, opRenew, []soap.Param{{Name: "key", Value: key}})
	return err
}

func (n *Node) renewLocal(key string) error {
	if err := n.store.Renew(key); err != nil {
		return err
	}
	if e, ok := n.store.Get(key); ok && e.LeaseRemaining > 0 {
		n.replicate(e, e.LeaseRemaining)
	}
	return nil
}

// Remove implements registry.Lookup, deleting the entry from its owner
// and every replica.
func (n *Node) Remove(key string) error {
	rk := RingKey(key)
	if n.isLocalPrimary(rk) {
		return n.removeLocal(key)
	}
	addr, ok := n.OwnerAddr(rk)
	if !ok {
		return fmt.Errorf("%w: no owner for %q", registry.ErrUnavailable, key)
	}
	n.cForwarded.Inc()
	n.stForwarded.Add(1)
	_, err := n.call(addr, opRemove, []soap.Param{{Name: "key", Value: key}})
	return err
}

func (n *Node) removeLocal(key string) error {
	err := n.store.Remove(key)
	for _, p := range n.owners(RingKey(key)) {
		if p.ID == n.cfg.ID {
			continue
		}
		n.call(p.Addr, opRemoveReplica, []soap.Param{{Name: "key", Value: key}})
	}
	n.gLocalEntries.Set(int64(n.store.Len()))
	return err
}

// Get implements registry.Lookup.
func (n *Node) Get(key string) (registry.Entry, bool) {
	e, ok, _ := n.GetErr(key)
	return e, ok
}

// GetErr implements registry.CheckedLookup: the read goes to the key's
// owner group — locally when this node is an owner (read-your-writes on
// the primary), otherwise to the owners in ring order, falling through
// to replicas when the primary is unreachable. Only when every owner is
// unreachable does it report ErrUnavailable; an owner's miss is
// authoritative.
func (n *Node) GetErr(key string) (registry.Entry, bool, error) {
	rk := RingKey(key)
	owners := n.owners(rk)
	for _, p := range owners {
		if p.ID == n.cfg.ID {
			e, ok := n.store.Get(key)
			return e, ok, nil
		}
	}
	var lastErr error
	for _, p := range owners {
		out, err := n.call(p.Addr, opGet, []soap.Param{{Name: "key", Value: key}})
		if err == nil {
			e, err := entryFromParams(out)
			if err != nil {
				return registry.Entry{}, false, err
			}
			return e, true, nil
		}
		if isNoEntryFault(err) {
			return registry.Entry{}, false, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no owners")
	}
	return registry.Entry{}, false, fmt.Errorf("%w: get %s: %v", registry.ErrUnavailable, key, lastErr)
}

// FindByName implements registry.Lookup.
func (n *Node) FindByName(name string) []registry.Entry {
	es, _ := n.FindByNameErr(name)
	return es
}

// FindByNameErr implements registry.CheckedLookup. A name maps to one
// shard group, so the find goes to that group only — local when this
// node is an owner, otherwise owner-then-replicas until one answers.
func (n *Node) FindByNameErr(name string) ([]registry.Entry, error) {
	owners := n.owners(name)
	for _, p := range owners {
		if p.ID == n.cfg.ID {
			return n.store.FindByName(name), nil
		}
	}
	var lastErr error
	for _, p := range owners {
		out, err := n.call(p.Addr, opFindName, []soap.Param{{Name: "arg", Value: name}})
		if err == nil {
			return registry.UnmarshalEntries(out)
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no owners")
	}
	return nil, fmt.Errorf("%w: findByName %s: %v", registry.ErrUnavailable, name, lastErr)
}

// FindByQuery implements registry.Lookup: the query cannot be mapped to
// a shard, so it scatters to every live peer's local store and merges,
// deduplicating replicated entries by key. Peer failures are tolerated
// as long as fewer than Replicas peers fail (their entries are covered
// by surviving replicas); at Replicas or more, coverage is no longer
// guaranteed and the scatter reports ErrUnavailable.
func (n *Node) FindByQuery(query string) ([]registry.Entry, error) {
	merged := make(map[string]registry.Entry)
	failed := 0
	var lastErr error
	for _, p := range n.members.Members() {
		var es []registry.Entry
		if p.ID == n.cfg.ID {
			local, err := n.store.FindByQuery(query)
			if err != nil {
				return nil, err // malformed query: authoritative
			}
			es = local
		} else {
			out, err := n.call(p.Addr, opFindQuery, []soap.Param{{Name: "arg", Value: query}})
			if err != nil {
				if f := (*soap.Fault)(nil); asFault(err, &f) && f.Code == "Client" {
					return nil, f // malformed query: authoritative
				}
				failed++
				lastErr = err
				continue
			}
			var perr error
			if es, perr = registry.UnmarshalEntries(out); perr != nil {
				failed++
				lastErr = perr
				continue
			}
		}
		for _, e := range es {
			if old, ok := merged[e.Key]; !ok || e.LeaseRemaining > old.LeaseRemaining {
				merged[e.Key] = e
			}
		}
	}
	if failed >= n.cfg.Replicas {
		return nil, fmt.Errorf("%w: findByQuery: %d peers unreachable: %v",
			registry.ErrUnavailable, failed, lastErr)
	}
	out := make([]registry.Entry, 0, len(merged))
	for _, e := range merged {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// call sends one peer RPC.
func (n *Node) call(addr, method string, params []soap.Param) ([]soap.Param, error) {
	if n.caller == nil {
		return nil, fmt.Errorf("cluster: node %s has no peer transport", n.cfg.ID)
	}
	return n.caller.Call(context.Background(), addr, method, params)
}

// ---- gossip + rebalance ---------------------------------------------

// Step runs one gossip round: probe the next round-robin peer with a
// push-pull digest exchange, fold the answer in, age suspicions, and
// rebalance if ring membership changed. Callers drive it from a ticker
// (cmd/hregistry) or manually (tests, simnet benches).
func (n *Node) Step(ctx context.Context) {
	n.cGossipRounds.Inc()
	changed := false
	if target, ok := n.members.NextTarget(); ok {
		digest := base64.StdEncoding.EncodeToString(EncodeDigest(n.members.Digest()))
		out, err := n.caller.Call(ctx, target.Addr, opGossip,
			[]soap.Param{{Name: "digest", Value: digest}})
		if err != nil {
			changed = n.members.MarkFailed(target.ID) || changed
		} else {
			changed = n.members.MarkAlive(target.ID) || changed
			if v, ok := outParam(out, "digest"); ok {
				if s, ok := v.(string); ok {
					if raw, err := base64.StdEncoding.DecodeString(s); err == nil {
						if ps, err := DecodeDigest(raw); err == nil {
							changed = n.members.Merge(ps) || changed
						}
					}
				}
			}
		}
	}
	changed = n.members.Tick() || changed
	if changed {
		n.Rebalance()
	}
	n.updateGauges()
}

// Rebalance recomputes the ring from current membership and hands off
// local entries whose owner set changed: an entry this node no longer
// owns is pushed to its new primary and dropped only once the push
// succeeds (no-loss); an entry this node still owns is pushed to each
// newly-added owner (idempotent keyed replication makes duplicate pushes
// from several owners harmless). Returns the number of entries pushed.
func (n *Node) Rebalance() int {
	n.mu.Lock()
	old := n.ring
	next := BuildRing(idsOf(n.members.Members()), n.cfg.VNodes)
	n.ring = next
	n.mu.Unlock()
	moved := 0
	for _, e := range n.store.List() {
		rk := RingKey(e.Key)
		pl := PlanMove(old, next, rk, n.cfg.Replicas)
		if next.IsOwner(rk, n.cfg.ID, n.cfg.Replicas) {
			for _, id := range pl.Adds {
				if id == n.cfg.ID {
					continue
				}
				if p, ok := n.members.Get(id); ok {
					if err := n.replicateTo(p.Addr, e, e.LeaseRemaining); err != nil {
						n.cHandoffFail.Inc()
						n.stHandoffFail.Add(1)
					} else {
						moved++
					}
				}
			}
			continue
		}
		// No longer an owner: push to the new primary, drop on success.
		pushed := false
		for _, p := range n.owners(rk) {
			if p.ID == n.cfg.ID {
				continue
			}
			if err := n.replicateTo(p.Addr, e, e.LeaseRemaining); err == nil {
				pushed = true
				break
			}
			n.cHandoffFail.Inc()
			n.stHandoffFail.Add(1)
		}
		if pushed {
			n.store.Remove(e.Key)
			moved++
		}
	}
	if moved > 0 {
		n.cMoved.Add(uint64(moved))
		n.stMoved.Add(uint64(moved))
	}
	n.gLocalEntries.Set(int64(n.store.Len()))
	return moved
}

// NodeStats is a snapshot of a node's cumulative churn counters.
type NodeStats struct {
	Moved               uint64 // entries pushed to other peers by rebalance
	HandoffFailures     uint64 // rebalance pushes that failed
	ReplicationFailures uint64 // replica writes that failed
	Forwarded           uint64 // client ops forwarded to the owner
}

// Stats returns the node's churn counters; unlike the telemetry gauges
// these are always live, so benches and tests can read them with
// instrumentation off.
func (n *Node) Stats() NodeStats {
	return NodeStats{
		Moved:               n.stMoved.Load(),
		HandoffFailures:     n.stHandoffFail.Load(),
		ReplicationFailures: n.stReplFail.Load(),
		Forwarded:           n.stForwarded.Load(),
	}
}

// ---- peer-op server side --------------------------------------------

// HandlePeer dispatches one incoming peer RPC; it is the PeerHandler a
// transport registers for this node, and the function the SOAP glue
// wraps for HTTP deployments. Errors it returns are *soap.Fault values,
// so both transports surface identical semantics.
func (n *Node) HandlePeer(ctx context.Context, method string, params []soap.Param) ([]soap.Param, error) {
	switch method {
	case opPublish:
		e, lease, err := entryWithLease(params)
		if err != nil {
			return nil, clientFault(err)
		}
		key, err := n.publishLocal(e, lease)
		if err != nil {
			return nil, clientFault(err)
		}
		return []soap.Param{{Name: "key", Value: key}}, nil
	case opReplicate:
		e, lease, err := entryWithLease(params)
		if err != nil {
			return nil, clientFault(err)
		}
		if _, err := n.store.PublishLeased(e, lease); err != nil {
			return nil, clientFault(err)
		}
		n.gLocalEntries.Set(int64(n.store.Len()))
		return []soap.Param{{Name: "ok", Value: true}}, nil
	case opGet:
		key, err := stringArg(params, "key")
		if err != nil {
			return nil, err
		}
		e, ok := n.store.Get(key)
		if !ok {
			return nil, &soap.Fault{Code: "Client", String: fmt.Sprintf("no entry %q", key)}
		}
		return registry.MarshalEntry(e), nil
	case opFindName:
		name, err := stringArg(params, "arg")
		if err != nil {
			return nil, err
		}
		return registry.MarshalEntries(n.store.FindByName(name)), nil
	case opFindQuery:
		q, err := stringArg(params, "arg")
		if err != nil {
			return nil, err
		}
		es, err := n.store.FindByQuery(q)
		if err != nil {
			return nil, clientFault(err)
		}
		return registry.MarshalEntries(es), nil
	case opRenew:
		key, err := stringArg(params, "key")
		if err != nil {
			return nil, err
		}
		if !n.isLocalPrimary(RingKey(key)) {
			// Routed here by a stale ring: redirect to the owner we know.
			if addr, ok := n.OwnerAddr(key); ok && addr != n.cfg.Addr {
				return nil, &soap.Fault{
					Code:   registry.FaultCodeRedirect,
					String: fmt.Sprintf("renew %q: not the owner", key),
					Detail: addr,
				}
			}
		}
		if err := n.renewLocal(key); err != nil {
			return nil, clientFault(err)
		}
		return []soap.Param{{Name: "ok", Value: true}}, nil
	case opRemove:
		key, err := stringArg(params, "key")
		if err != nil {
			return nil, err
		}
		if err := n.removeLocal(key); err != nil {
			return nil, clientFault(err)
		}
		return []soap.Param{{Name: "ok", Value: true}}, nil
	case opRemoveReplica:
		key, err := stringArg(params, "key")
		if err != nil {
			return nil, err
		}
		n.store.Remove(key)
		n.gLocalEntries.Set(int64(n.store.Len()))
		return []soap.Param{{Name: "ok", Value: true}}, nil
	case opGossip:
		s, err := stringArg(params, "digest")
		if err != nil {
			return nil, err
		}
		raw, err := base64.StdEncoding.DecodeString(s)
		if err != nil {
			return nil, clientFault(fmt.Errorf("cluster: bad digest encoding: %w", err))
		}
		ps, err := DecodeDigest(raw)
		if err != nil {
			return nil, clientFault(err)
		}
		if n.members.Merge(ps) {
			n.Rebalance()
			n.updateGauges()
		}
		reply := base64.StdEncoding.EncodeToString(EncodeDigest(n.members.Digest()))
		return []soap.Param{{Name: "digest", Value: reply}}, nil
	case opMembers:
		ms := n.members.Members()
		ids := make([]string, len(ms))
		addrs := make([]string, len(ms))
		for i, p := range ms {
			ids[i] = p.ID
			addrs[i] = p.Addr
		}
		return []soap.Param{
			{Name: "ids", Value: ids},
			{Name: "addrs", Value: addrs},
		}, nil
	}
	return nil, &soap.Fault{Code: "Client", String: fmt.Sprintf("unknown peer op %q", method)}
}

// ---- wire helpers ---------------------------------------------------

func clientFault(err error) error {
	if f, ok := err.(*soap.Fault); ok {
		return f
	}
	return &soap.Fault{Code: "Client", String: err.Error()}
}

func stringArg(params []soap.Param, name string) (string, error) {
	if v, ok := paramsValue(params, name); ok {
		if s, ok := v.(string); ok {
			return s, nil
		}
	}
	return "", &soap.Fault{Code: "Client", String: fmt.Sprintf("missing parameter %q", name)}
}

func paramsValue(params []soap.Param, name string) (any, bool) {
	for _, p := range params {
		if p.Name == name {
			return p.Value, true
		}
	}
	return nil, false
}

// outParam mirrors registry's response-parameter lookup.
func outParam(params []soap.Param, name string) (any, bool) {
	return paramsValue(params, name)
}

// entryWithLease decodes an entry RPC: the entry row plus its remaining
// lease (carried in LeaseRemaining by MarshalEntry).
func entryWithLease(params []soap.Param) (registry.Entry, time.Duration, error) {
	e, err := registry.UnmarshalEntry(&soap.Call{Params: params})
	if err != nil {
		return registry.Entry{}, 0, err
	}
	lease := e.LeaseRemaining
	e.LeaseRemaining = 0
	return e, lease, nil
}

// entryFromParams decodes a get response.
func entryFromParams(out []soap.Param) (registry.Entry, error) {
	e, lease, err := entryWithLease(out)
	e.LeaseRemaining = lease
	return e, err
}

func isNoEntryFault(err error) bool {
	var f *soap.Fault
	if !asFault(err, &f) {
		return false
	}
	return f.Code == "Client"
}

func asFault(err error, f **soap.Fault) bool { return errors.As(err, f) }
