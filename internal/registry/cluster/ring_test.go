package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func TestRingOwnersStableAndDistinct(t *testing.T) {
	r := BuildRing([]string{"a", "b", "c"}, 0)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("svc-%d", i)
		owners := r.Owners(key, 2)
		if len(owners) != 2 {
			t.Fatalf("owners(%q) = %v", key, owners)
		}
		if owners[0] == owners[1] {
			t.Fatalf("duplicate owner for %q: %v", key, owners)
		}
		if got := r.Owners(key, 2); !reflect.DeepEqual(got, owners) {
			t.Fatalf("owners not stable: %v vs %v", got, owners)
		}
		if r.Owner(key) != owners[0] {
			t.Fatalf("Owner != Owners[0]")
		}
		if !r.IsOwner(key, owners[1], 2) || r.IsOwner(key, "nobody", 2) {
			t.Fatal("IsOwner misreports")
		}
	}
}

func TestRingOrderIndependent(t *testing.T) {
	a := BuildRing([]string{"a", "b", "c"}, 16)
	b := BuildRing([]string{"c", "a", "b", "a"}, 16)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		if !reflect.DeepEqual(a.Owners(key, 3), b.Owners(key, 3)) {
			t.Fatalf("ring depends on input order for %q", key)
		}
	}
}

func TestRingFewerPeersThanReplicas(t *testing.T) {
	r := BuildRing([]string{"only"}, 8)
	if got := r.Owners("x", 3); len(got) != 1 || got[0] != "only" {
		t.Fatalf("owners = %v", got)
	}
	var empty *Ring
	if empty.Owners("x", 2) != nil {
		t.Fatal("nil ring should return nil owners")
	}
	if BuildRing(nil, 8).Owner("x") != "" {
		t.Fatal("empty ring should have no owner")
	}
}

func TestRingBalance(t *testing.T) {
	peers := []string{"p1", "p2", "p3", "p4", "p5"}
	r := BuildRing(peers, 0)
	counts := map[string]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("service-%d", i))]++
	}
	for _, p := range peers {
		share := float64(counts[p]) / keys
		if share < 0.08 || share > 0.40 {
			t.Fatalf("peer %s owns %.1f%% of keys; ring badly unbalanced: %v",
				p, share*100, counts)
		}
	}
}

// TestRingPlanInvariant is the deterministic core of FuzzRingPlan:
// applying a move plan to the old owner set yields exactly the new one.
func TestRingPlanInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	all := []string{"a", "b", "c", "d", "e", "f"}
	for trial := 0; trial < 200; trial++ {
		oldN := 1 + rng.Intn(len(all))
		newN := 1 + rng.Intn(len(all))
		oldPeers := append([]string(nil), all[:oldN]...)
		newPeers := append([]string(nil), all[len(all)-newN:]...)
		oldRing := BuildRing(oldPeers, 16)
		newRing := BuildRing(newPeers, 16)
		key := fmt.Sprintf("svc-%d", trial)
		const replicas = 2
		pl := PlanMove(oldRing, newRing, key, replicas)
		got := map[string]bool{}
		for _, p := range oldRing.Owners(key, replicas) {
			got[p] = true
		}
		for _, p := range pl.Drops {
			delete(got, p)
		}
		for _, p := range pl.Adds {
			if got[p] {
				t.Fatalf("plan adds existing owner %s", p)
			}
			got[p] = true
		}
		want := map[string]bool{}
		for _, p := range newRing.Owners(key, replicas) {
			want[p] = true
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("plan %+v: applied=%v want=%v", pl, got, want)
		}
	}
}

func TestRingKey(t *testing.T) {
	cases := map[string]string{
		"WSTime::n1-7":  "WSTime",
		"WSTime":        "WSTime",
		"a::b::c":       "a",
		"::x":           "",
		"plain-key-123": "plain-key-123",
	}
	for in, want := range cases {
		if got := RingKey(in); got != want {
			t.Fatalf("RingKey(%q) = %q, want %q", in, got, want)
		}
	}
}
