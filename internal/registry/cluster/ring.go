// Package cluster turns N registry processes into one logical lookup
// plane (S31): entries are sharded across peers by a consistent-hash
// vnode ring keyed by the entry's service name, replicated with their
// lease deadline to R ring successors, and found again by routing each
// operation to the shard group that can own it. Peer liveness comes from
// a SWIM-flavoured gossip membership (suspect/dead states), and a ring
// change triggers deterministic entry handoff so no registration is lost
// or double-owned across joins and failures.
//
// The paper's registry/lookup framework is the front door to every
// HARNESS II service; this package removes its single-server bottleneck
// — the centralized-lookup wall JClarens reports killing grid
// web-service deployments — while keeping the client surface
// (registry.Lookup, registry.LeaseHolder) unchanged.
package cluster

import (
	"sort"
)

// DefaultVNodes is the per-peer virtual-node count. 64 points per peer
// keeps the expected ownership imbalance of a small cluster under ~15%
// while the ring stays a few KiB.
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring: a sorted circle of vnode
// points, each owned by one peer ID. Lookups walk clockwise from the
// key's hash collecting distinct peers, so every key has a stable owner
// list that changes only for keys whose arcs a membership change moved —
// the property that bounds rebalance cost to the data actually moving.
type Ring struct {
	points []ringPoint
	peers  []string // sorted distinct peer IDs
}

type ringPoint struct {
	hash uint64
	peer int // index into peers
}

// fnv64a hashes s with 64-bit FNV-1a; the ring needs speed and spread,
// not cryptographic strength.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the 64-bit murmur3 finalizer: a full-avalanche scramble that
// keeps similar inputs from clustering on the ring.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// vnodeHash spreads one peer's vnodes by striding the peer's hash with
// the golden ratio before a full finalizer mix, so neighbouring indices
// land far apart.
func vnodeHash(peer string, i int) uint64 {
	return mix64(fnv64a(peer) + uint64(i)*0x9e3779b97f4a7c15)
}

// BuildRing constructs a ring over the given peer IDs with vnodes points
// per peer. The input order is irrelevant (IDs are sorted and deduped),
// so every node that knows the same membership computes the same ring —
// the coordination-free agreement the replication scheme relies on.
// An empty peer set yields an empty ring whose lookups return nil.
func BuildRing(peerIDs []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	peers := append([]string(nil), peerIDs...)
	sort.Strings(peers)
	peers = dedupSorted(peers)
	r := &Ring{peers: peers}
	if len(peers) == 0 {
		return r
	}
	r.points = make([]ringPoint, 0, len(peers)*vnodes)
	for pi, p := range peers {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: vnodeHash(p, i), peer: pi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Tie-break identical hash points by peer index so the walk
		// order — and therefore ownership — is independent of input
		// order even under vnode hash collisions.
		return a.peer < b.peer
	})
	return r
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Peers returns the ring's member IDs (sorted).
func (r *Ring) Peers() []string { return r.peers }

// Len returns the number of member peers.
func (r *Ring) Len() int { return len(r.peers) }

// Owners returns the n distinct peers responsible for key, walking
// clockwise from the key's hash: the first is the primary owner, the
// rest its replication successors. Fewer than n peers in the ring means
// every peer is an owner. An empty ring returns nil.
func (r *Ring) Owners(key string, n int) []string {
	if r == nil || len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	h := fnv64a(key)
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(idx+i)%len(r.points)]
		if !seen[p.peer] {
			seen[p.peer] = true
			out = append(out, r.peers[p.peer])
		}
	}
	return out
}

// Owner returns the primary owner of key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	o := r.Owners(key, 1)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}

// IsOwner reports whether peer is among key's n owners.
func (r *Ring) IsOwner(key, peer string, n int) bool {
	for _, o := range r.Owners(key, n) {
		if o == peer {
			return true
		}
	}
	return false
}

// Plan describes the handoff one ring transition demands for a single
// key: which peers must newly receive the entry and which peers may drop
// their copy. Applying it — (oldOwners \ Drops) ∪ Adds — yields exactly
// the new owner set, the no-loss/no-double-ownership invariant the fuzz
// target proves for arbitrary peer-set deltas.
type Plan struct {
	Adds  []string // new owners that were not owners before
	Drops []string // old owners that no longer own the key
}

// PlanMove computes the handoff plan for key when the ring moves from
// old to next with the given replication factor.
func PlanMove(old, next *Ring, key string, replicas int) Plan {
	oldOwners := old.Owners(key, replicas)
	newOwners := next.Owners(key, replicas)
	oldSet := make(map[string]bool, len(oldOwners))
	for _, p := range oldOwners {
		oldSet[p] = true
	}
	newSet := make(map[string]bool, len(newOwners))
	for _, p := range newOwners {
		newSet[p] = true
	}
	var pl Plan
	for _, p := range newOwners {
		if !oldSet[p] {
			pl.Adds = append(pl.Adds, p)
		}
	}
	for _, p := range oldOwners {
		if !newSet[p] {
			pl.Drops = append(pl.Drops, p)
		}
	}
	return pl
}

// RingKey maps an entry key or service name to its ring key. Cluster-
// assigned entry keys embed the service name before the "::" separator,
// so an entry and its name always land on the same shard group and a
// keyed operation (get, renew, remove) is routable without a directory.
// Keys without the separator (e.g. seeded or caller-chosen keys) hash as
// themselves.
func RingKey(keyOrName string) string {
	for i := 0; i+1 < len(keyOrName); i++ {
		if keyOrName[i] == ':' && keyOrName[i+1] == ':' {
			return keyOrName[:i]
		}
	}
	return keyOrName
}
