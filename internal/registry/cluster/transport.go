package cluster

import (
	"context"
	"fmt"
	"sync"

	"harness2/internal/resilience"
	"harness2/internal/resilience/chaos"
	"harness2/internal/soap"
)

// PeerCaller carries one peer RPC to the peer listening on addr. The two
// implementations are MemNet (in-process, deterministic, used by the
// cluster tests and the E17 simnet runs) and HTTPCaller (SOAP over HTTP,
// used by real multi-process deployments). Both route through the chaos
// injector at site ("cluster", method, addr) so every peer RPC is fault-
// injectable, per the resilience plane's convention.
type PeerCaller interface {
	Call(ctx context.Context, addr, method string, params []soap.Param) ([]soap.Param, error)
}

// PeerHandler is the server half a transport dispatches into: a node's
// peer-op demultiplexer.
type PeerHandler func(ctx context.Context, method string, params []soap.Param) ([]soap.Param, error)

// MemNet is an in-memory peer transport: nodes register their handler
// under their address, and calls are plain (synchronous, reentrant)
// function calls. Kill severs a node — calls to it fail like a dead TCP
// endpoint — and Restore brings it back, which is what the churn tests
// and E17 use to fail peers deterministically.
type MemNet struct {
	// Chaos, when non-nil, is consulted before every delivery at site
	// ("cluster", method, addr).
	Chaos *chaos.Injector

	mu     sync.RWMutex
	nodes  map[string]PeerHandler
	killed map[string]bool
}

// NewMemNet returns an empty in-memory transport.
func NewMemNet() *MemNet {
	return &MemNet{nodes: make(map[string]PeerHandler), killed: make(map[string]bool)}
}

// Register attaches a node's handler at addr (replacing any previous
// registration, as a restarted process would).
func (m *MemNet) Register(addr string, h PeerHandler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nodes[addr] = h
	delete(m.killed, addr)
}

// Kill severs addr: subsequent calls to it fail with a transport error
// until Restore. The node's handler (and its store) stays intact, like a
// partitioned-but-running process.
func (m *MemNet) Kill(addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.killed[addr] = true
}

// Restore heals a killed addr.
func (m *MemNet) Restore(addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.killed, addr)
}

// Call implements PeerCaller.
func (m *MemNet) Call(ctx context.Context, addr, method string, params []soap.Param) ([]soap.Param, error) {
	if err := m.Chaos.Apply(ctx, "cluster", method, addr); err != nil {
		return nil, err
	}
	m.mu.RLock()
	h, ok := m.nodes[addr]
	dead := m.killed[addr]
	m.mu.RUnlock()
	if !ok || dead {
		return nil, fmt.Errorf("cluster: peer %s unreachable", addr)
	}
	return h(ctx, method, params)
}

// HTTPCaller carries peer RPCs as SOAP calls to each peer's HTTP
// endpoint (the same endpoint its public registry operations use).
type HTTPCaller struct {
	// Client is the SOAP transport; its zero value uses the shared HTTP
	// client.
	Client soap.Client
	// Policy, when non-nil, runs every peer RPC through the resilience
	// plane (retries, per-peer breakers, hedging per its options).
	Policy *resilience.Policy
	// Chaos, when non-nil, is consulted before every call at site
	// ("cluster", method, addr).
	Chaos *chaos.Injector
}

// Call implements PeerCaller.
func (c *HTTPCaller) Call(ctx context.Context, addr, method string, params []soap.Param) ([]soap.Param, error) {
	if err := c.Chaos.Apply(ctx, "cluster", method, addr); err != nil {
		return nil, err
	}
	call := &soap.Call{Method: method, Params: params}
	if c.Policy == nil {
		return c.Client.CallRemote(addr, call)
	}
	out, err := c.Policy.Do(ctx, addr, "cluster."+method, peerOpIdempotent(method),
		func(context.Context) (any, error) {
			return c.Client.CallRemote(addr, call)
		})
	if err != nil {
		return nil, err
	}
	params, _ = out.([]soap.Param)
	return params, nil
}

// peerOpIdempotent classifies peer ops for the retry policy: everything
// in the peer protocol is safe to repeat (replication and removal are
// keyed and idempotent, gossip merges are monotone) except nothing —
// but probes of a slow peer should not amplify load, so gossip is the
// one op left non-idempotent (a failed probe is itself the signal).
func peerOpIdempotent(method string) bool {
	return method != opGossip
}
