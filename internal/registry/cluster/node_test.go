package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"harness2/internal/registry"
	"harness2/internal/telemetry"
	"harness2/internal/wsdl"
)

func testWSDL(t testing.TB) string {
	t.Helper()
	d, err := wsdl.Generate(wsdl.WSTimeSpec(), wsdl.EndpointSet{
		SOAPAddress: "http://host:8080/time",
	})
	if err != nil {
		t.Fatal(err)
	}
	return d.String()
}

// testCluster builds n in-process nodes over a shared MemNet and a
// shared stepped clock: a deterministic simnet cluster.
func testCluster(t testing.TB, n, replicas int) (*MemNet, []*Node, *steppedClock) {
	t.Helper()
	clk := newClock()
	net := NewMemNet()
	var seed []PeerState
	for i := 1; i <= n; i++ {
		seed = append(seed, PeerState{ID: fmt.Sprintf("n%d", i), Addr: fmt.Sprintf("addr%d", i)})
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(Config{
			ID:        seed[i].ID,
			Addr:      seed[i].Addr,
			Seed:      seed,
			Replicas:  replicas,
			DeadAfter: 3 * time.Second,
			Clock:     clk.Now,
			Caller:    net,
			Telemetry: telemetry.Disabled(),
		})
		node := nodes[i]
		net.Register(seed[i].Addr, node.HandlePeer)
	}
	return net, nodes, clk
}

// copies counts which stores hold key.
func copies(nodes []*Node, key string) []string {
	var held []string
	for _, n := range nodes {
		if _, ok := n.Store().Get(key); ok {
			held = append(held, n.ID())
		}
	}
	return held
}

func TestClusterPublishGetFindAnyNode(t *testing.T) {
	_, nodes, _ := testCluster(t, 3, 2)
	xml := testWSDL(t)
	key, err := nodes[0].Publish(registry.Entry{Name: "WSTime", Business: "b", WSDL: xml})
	if err != nil {
		t.Fatal(err)
	}
	if RingKey(key) != "WSTime" {
		t.Fatalf("cluster key %q does not embed the name", key)
	}
	for _, n := range nodes {
		e, ok, err := n.GetErr(key)
		if err != nil || !ok || e.Name != "WSTime" {
			t.Fatalf("node %s: get = %+v ok=%v err=%v", n.ID(), e, ok, err)
		}
		es, err := n.FindByNameErr("WSTime")
		if err != nil || len(es) != 1 || es[0].Key != key {
			t.Fatalf("node %s: find = %v err=%v", n.ID(), es, err)
		}
	}
	if held := copies(nodes, key); len(held) != 2 {
		t.Fatalf("entry on %v, want exactly 2 stores", held)
	}
}

func TestClusterCallerKeyRewrittenToRoute(t *testing.T) {
	_, nodes, _ := testCluster(t, 3, 2)
	xml := testWSDL(t)
	key, err := nodes[1].Publish(registry.Entry{Name: "WSTime", Key: "mykey", WSDL: xml})
	if err != nil {
		t.Fatal(err)
	}
	if key != "WSTime::mykey" {
		t.Fatalf("key = %q, want WSTime::mykey", key)
	}
	// Re-publication under the same caller key must overwrite, not duplicate.
	key2, err := nodes[2].Publish(registry.Entry{Name: "WSTime", Key: "mykey", Business: "v2", WSDL: xml})
	if err != nil || key2 != key {
		t.Fatalf("re-publish: key=%q err=%v", key2, err)
	}
	for _, n := range nodes {
		if es, _ := n.FindByNameErr("WSTime"); len(es) != 1 || es[0].Business != "v2" {
			t.Fatalf("node %s sees %v", n.ID(), es)
		}
	}
}

func TestClusterFindByQueryScatterDedup(t *testing.T) {
	_, nodes, _ := testCluster(t, 3, 2)
	xml := testWSDL(t)
	keys := map[string]bool{}
	for i := 0; i < 12; i++ {
		k, err := nodes[i%3].Publish(registry.Entry{Name: fmt.Sprintf("Svc%d", i), WSDL: xml})
		if err != nil {
			t.Fatal(err)
		}
		keys[k] = true
	}
	for _, n := range nodes {
		es, err := n.FindByQuery("//service")
		if err != nil {
			t.Fatal(err)
		}
		if len(es) != len(keys) {
			t.Fatalf("node %s: scatter returned %d entries, want %d (replicas not deduped?)",
				n.ID(), len(es), len(keys))
		}
		seen := map[string]bool{}
		for _, e := range es {
			if seen[e.Key] {
				t.Fatalf("duplicate key %q in scatter result", e.Key)
			}
			seen[e.Key] = true
		}
	}
}

func TestClusterRemoveEverywhere(t *testing.T) {
	_, nodes, _ := testCluster(t, 3, 2)
	key, err := nodes[0].Publish(registry.Entry{Name: "WSTime", WSDL: testWSDL(t)})
	if err != nil {
		t.Fatal(err)
	}
	if err := nodes[2].Remove(key); err != nil {
		t.Fatal(err)
	}
	if held := copies(nodes, key); len(held) != 0 {
		t.Fatalf("entry still on %v after remove", held)
	}
}

func TestClusterLeaseExpiresOnReplicas(t *testing.T) {
	_, nodes, clk := testCluster(t, 3, 2)
	key, err := nodes[0].PublishLeased(registry.Entry{Name: "WSTime", WSDL: testWSDL(t)}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	clk.Step(6 * time.Second)
	for _, n := range nodes {
		if _, ok := n.Store().Get(key); ok {
			t.Fatalf("lease did not expire on %s", n.ID())
		}
	}
}

func TestClusterRenewRefreshesReplicas(t *testing.T) {
	_, nodes, clk := testCluster(t, 3, 2)
	key, err := nodes[0].PublishLeased(registry.Entry{Name: "WSTime", WSDL: testWSDL(t)}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		clk.Step(3 * time.Second)
		// Renew through a node that may not own the key: it forwards.
		if err := nodes[i%3].Renew(key); err != nil {
			t.Fatal(err)
		}
	}
	if held := copies(nodes, key); len(held) != 2 {
		t.Fatalf("after renewals, entry on %v, want 2 stores", held)
	}
}

// stepAll drives one gossip round on every node.
func stepAll(nodes []*Node, skip map[string]bool) {
	for _, n := range nodes {
		if skip[n.ID()] {
			continue
		}
		n.Step(context.Background())
	}
}

// TestClusterSurvivesPeerDeath is the churn acceptance test: a 3-peer
// R=2 cluster keeps every entry findable and every live lease alive
// through the death of any single peer.
func TestClusterSurvivesPeerDeath(t *testing.T) {
	for victim := 0; victim < 3; victim++ {
		victim := victim
		t.Run(fmt.Sprintf("kill-n%d", victim+1), func(t *testing.T) {
			net, nodes, clk := testCluster(t, 3, 2)
			xml := testWSDL(t)
			var keys []string
			for i := 0; i < 20; i++ {
				k, err := nodes[i%3].PublishLeased(
					registry.Entry{Name: fmt.Sprintf("Svc%d", i), WSDL: xml}, time.Hour)
				if err != nil {
					t.Fatal(err)
				}
				keys = append(keys, k)
			}
			dead := nodes[victim].ID()
			net.Kill(nodes[victim].Addr())
			skip := map[string]bool{dead: true}
			// Probes fail → suspect; age past DeadAfter → dead → rebalance.
			stepAll(nodes, skip)
			stepAll(nodes, skip)
			clk.Step(4 * time.Second)
			stepAll(nodes, skip)
			stepAll(nodes, skip)
			survivors := make([]*Node, 0, 2)
			for _, n := range nodes {
				if n.ID() != dead {
					survivors = append(survivors, n)
					if n.Ring().Len() != 2 {
						t.Fatalf("node %s ring has %d peers, want 2", n.ID(), n.Ring().Len())
					}
				}
			}
			// Zero failed finds and zero lost leases, from every survivor.
			for i, k := range keys {
				name := fmt.Sprintf("Svc%d", i)
				for _, n := range survivors {
					if e, ok, err := n.GetErr(k); err != nil || !ok {
						t.Fatalf("get %q via %s: ok=%v err=%v e=%+v", k, n.ID(), ok, err, e)
					}
					if es, err := n.FindByNameErr(name); err != nil || len(es) != 1 {
						t.Fatalf("find %q via %s: %v err=%v", name, n.ID(), es, err)
					}
					if err := n.Renew(k); err != nil {
						t.Fatalf("renew %q via %s: %v", k, n.ID(), err)
					}
				}
				// Handoff restored R=2 among survivors.
				held := 0
				for _, n := range survivors {
					if _, ok := n.Store().Get(k); ok {
						held++
					}
				}
				if held != 2 {
					t.Fatalf("key %q on %d survivor stores, want 2", k, held)
				}
			}
			// Scatter queries tolerate the dead peer too.
			for _, n := range survivors {
				es, err := n.FindByQuery("//service")
				if err != nil || len(es) != len(keys) {
					t.Fatalf("findByQuery via %s: %d entries err=%v", n.ID(), len(es), err)
				}
			}
		})
	}
}

// TestClusterJoinRebalances grows a 2-peer cluster to 3 and checks the
// new peer takes ownership of its arcs without losing any entry.
func TestClusterJoinRebalances(t *testing.T) {
	net, nodes, clk := testCluster(t, 2, 2)
	xml := testWSDL(t)
	var keys []string
	for i := 0; i < 30; i++ {
		k, err := nodes[i%2].Publish(registry.Entry{Name: fmt.Sprintf("Svc%d", i), WSDL: xml})
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	joined := NewNode(Config{
		ID: "n3", Addr: "addr3",
		Seed:      []PeerState{{ID: "n1", Addr: "addr1"}, {ID: "n2", Addr: "addr2"}},
		Replicas:  2,
		DeadAfter: 3 * time.Second,
		Clock:     clk.Now,
		Caller:    net,
		Telemetry: telemetry.Disabled(),
	})
	net.Register("addr3", joined.HandlePeer)
	all := append(append([]*Node(nil), nodes...), joined)
	for round := 0; round < 3; round++ {
		stepAll(all, nil)
	}
	for _, n := range all {
		if n.Ring().Len() != 3 {
			t.Fatalf("node %s ring has %d peers after join", n.ID(), n.Ring().Len())
		}
	}
	owns := 0
	for _, k := range keys {
		if held := copies(all, k); len(held) != 2 {
			t.Fatalf("key %q on stores %v after join, want exactly 2", k, held)
		}
		for _, n := range all {
			if _, ok, err := n.GetErr(k); err != nil || !ok {
				t.Fatalf("get %q via %s after join: ok=%v err=%v", k, n.ID(), ok, err)
			}
		}
		if joined.Ring().IsOwner(RingKey(k), "n3", 2) {
			owns++
		}
	}
	if owns == 0 {
		t.Fatal("joined peer owns no keys; ring did not rebalance")
	}
}

// TestClusterGetMissAuthoritative: a miss from a reachable owner is not
// an error, while an unreachable whole owner group is ErrUnavailable.
func TestClusterGetMissVsUnavailable(t *testing.T) {
	net, nodes, _ := testCluster(t, 3, 2)
	if _, ok, err := nodes[0].GetErr("Ghost::nope"); ok || err != nil {
		t.Fatalf("miss: ok=%v err=%v, want authoritative miss", ok, err)
	}
	// Find a key owned by neither replica on nodes[i]: kill both owners
	// before any gossip round, so the reader still routes to them.
	key := "Ghost::nope"
	var reader *Node
	for _, n := range nodes {
		if !n.IsLocalOwner(key) {
			reader = n
		}
	}
	if reader == nil {
		t.Skip("key owned everywhere at R=2 on 3 nodes")
	}
	for _, n := range nodes {
		if n != reader {
			net.Kill(n.Addr())
		}
	}
	if _, ok, err := reader.GetErr(key); ok || !errors.Is(err, registry.ErrUnavailable) {
		t.Fatalf("outage: ok=%v err=%v, want ErrUnavailable", ok, err)
	}
}
