package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"harness2/internal/registry"
	"harness2/internal/resilience"
	"harness2/internal/resilience/chaos"
	"harness2/internal/soap"
)

// Router is the cluster-aware client: a registry.Lookup / LeaseHolder /
// CheckedLookup over multiple bootstrap endpoints. Any cluster node can
// answer any operation (it forwards or redirects internally), so the
// router's job is availability, not placement: it remembers which
// endpoint answered last, fails over to the next on an unavailability
// error, and can refresh its endpoint list from the cluster's own
// membership — so a client bootstrapped with one seed address survives
// that seed's death once it has refreshed. registry.Cache and
// invoke.Binder compose over it unchanged.
type Router struct {
	// Policy and Chaos are handed to each per-endpoint Remote; see
	// registry.Remote.
	Policy *resilience.Policy
	Chaos  *chaos.Injector
	Client soap.Client

	mu        sync.Mutex
	endpoints []string
	cur       int
	remotes   map[string]*registry.Remote
}

var (
	_ registry.Lookup        = (*Router)(nil)
	_ registry.LeaseHolder   = (*Router)(nil)
	_ registry.CheckedLookup = (*Router)(nil)
)

// NewRouter returns a router bootstrapped with the given endpoints.
func NewRouter(endpoints ...string) *Router {
	return &Router{
		endpoints: append([]string(nil), endpoints...),
		remotes:   make(map[string]*registry.Remote),
	}
}

// Endpoints returns the router's current endpoint list.
func (r *Router) Endpoints() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.endpoints...)
}

// remote returns (building on demand) the Remote for one endpoint.
func (r *Router) remote(endpoint string) *registry.Remote {
	r.mu.Lock()
	defer r.mu.Unlock()
	rem, ok := r.remotes[endpoint]
	if !ok {
		rem = &registry.Remote{Endpoint: endpoint, Client: r.Client, Policy: r.Policy, Chaos: r.Chaos}
		r.remotes[endpoint] = rem
	}
	return rem
}

// failover reports whether err warrants trying the next endpoint: the
// registry was unreachable, as opposed to answering authoritatively.
func failover(err error) bool {
	if errors.Is(err, registry.ErrUnavailable) {
		return true
	}
	// Renew/Remove/Publish surface transport failures as plain errors;
	// an authoritative answer always arrives as a SOAP fault.
	var f *soap.Fault
	return !errors.As(err, &f)
}

// do runs fn against each endpoint starting from the last-good one,
// failing over on unavailability and sticking with the endpoint that
// answers. Authoritative errors (SOAP faults) return immediately.
func (r *Router) do(fn func(rem *registry.Remote) error) error {
	r.mu.Lock()
	eps := append([]string(nil), r.endpoints...)
	start := r.cur
	r.mu.Unlock()
	if len(eps) == 0 {
		return fmt.Errorf("%w: router has no endpoints", registry.ErrUnavailable)
	}
	var lastErr error
	for i := 0; i < len(eps); i++ {
		idx := (start + i) % len(eps)
		err := fn(r.remote(eps[idx]))
		if err == nil || !failover(err) {
			r.mu.Lock()
			r.cur = idx
			r.mu.Unlock()
			return err
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("%w: all endpoints failed", registry.ErrUnavailable)
	}
	return lastErr
}

// Refresh asks the cluster for its current membership and replaces the
// endpoint list with the live peers' addresses. Call it periodically (or
// after failures) so the bootstrap list tracks churn.
func (r *Router) Refresh(ctx context.Context) error {
	return r.do(func(rem *registry.Remote) error {
		out, err := r.Client.CallRemote(rem.Endpoint, &soap.Call{Method: opMembers})
		if err != nil {
			return fmt.Errorf("%w: members %s: %v", registry.ErrUnavailable, rem.Endpoint, err)
		}
		var addrs []string
		if v, ok := outParam(out, "addrs"); ok {
			addrs, _ = v.([]string)
		}
		addrs = dedupNonEmpty(addrs)
		if len(addrs) == 0 {
			return fmt.Errorf("%w: members %s: empty membership", registry.ErrUnavailable, rem.Endpoint)
		}
		r.mu.Lock()
		r.endpoints = addrs
		r.cur = 0
		r.mu.Unlock()
		return nil
	})
}

func dedupNonEmpty(in []string) []string {
	sort.Strings(in)
	out := in[:0]
	for i, v := range in {
		if v != "" && (i == 0 || v != in[i-1]) {
			out = append(out, v)
		}
	}
	return out
}

// Publish implements registry.Lookup.
func (r *Router) Publish(e registry.Entry) (string, error) {
	return r.PublishLeased(e, 0)
}

// PublishLeased implements registry.LeaseHolder.
func (r *Router) PublishLeased(e registry.Entry, lease time.Duration) (string, error) {
	var key string
	err := r.do(func(rem *registry.Remote) error {
		var err error
		if lease > 0 {
			key, err = rem.PublishLeased(e, lease)
		} else {
			key, err = rem.Publish(e)
		}
		return err
	})
	return key, err
}

// Renew implements registry.LeaseHolder.
func (r *Router) Renew(key string) error {
	return r.do(func(rem *registry.Remote) error { return rem.Renew(key) })
}

// Remove implements registry.Lookup.
func (r *Router) Remove(key string) error {
	return r.do(func(rem *registry.Remote) error { return rem.Remove(key) })
}

// Get implements registry.Lookup.
func (r *Router) Get(key string) (registry.Entry, bool) {
	e, ok, _ := r.GetErr(key)
	return e, ok
}

// GetErr implements registry.CheckedLookup.
func (r *Router) GetErr(key string) (registry.Entry, bool, error) {
	var e registry.Entry
	var found bool
	err := r.do(func(rem *registry.Remote) error {
		var err error
		e, found, err = rem.GetErr(key)
		return err
	})
	return e, found, err
}

// FindByName implements registry.Lookup.
func (r *Router) FindByName(name string) []registry.Entry {
	es, _ := r.FindByNameErr(name)
	return es
}

// FindByNameErr implements registry.CheckedLookup.
func (r *Router) FindByNameErr(name string) ([]registry.Entry, error) {
	var es []registry.Entry
	err := r.do(func(rem *registry.Remote) error {
		var err error
		es, err = rem.FindByNameErr(name)
		return err
	})
	return es, err
}

// FindByQuery implements registry.Lookup.
func (r *Router) FindByQuery(query string) ([]registry.Entry, error) {
	var es []registry.Entry
	err := r.do(func(rem *registry.Remote) error {
		var err error
		es, err = rem.FindByQuery(query)
		return err
	})
	return es, err
}
