package cluster

import (
	"reflect"
	"testing"
	"time"
)

// steppedClock is a manually-advanced time source.
type steppedClock struct{ t time.Time }

func newClock() *steppedClock                { return &steppedClock{t: time.Unix(1700000000, 0)} }
func (c *steppedClock) Now() time.Time       { return c.t }
func (c *steppedClock) Step(d time.Duration) { c.t = c.t.Add(d) }

func TestDigestRoundTrip(t *testing.T) {
	in := []PeerState{
		{ID: "n2", Addr: "host2:80", Incarnation: 7, State: StateSuspect},
		{ID: "n1", Addr: "host1:80", Incarnation: 0, State: StateAlive},
		{ID: "n3", Addr: "", Incarnation: 42, State: StateDead},
	}
	out, err := DecodeDigest(EncodeDigest(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []PeerState{in[1], in[0], in[2]} // sorted by ID
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("roundtrip = %+v, want %+v", out, want)
	}
}

func TestDigestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{'X', 1},
		{'G', 9},
		{'G', 1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, // huge count
		EncodeDigest([]PeerState{{ID: "a", State: StateAlive}})[:5],          // truncated
		append(EncodeDigest([]PeerState{{ID: "a"}}), 0),                      // trailing byte
		{'G', 1, 1, 3, 'b', 'a', 'd', 0, 0, 3},                               // unknown state 3
	}
	for i, c := range cases {
		if _, err := DecodeDigest(c); err == nil {
			t.Fatalf("case %d: garbage decoded without error", i)
		}
	}
}

func TestSupersedes(t *testing.T) {
	alive := PeerState{ID: "x", Incarnation: 1, State: StateAlive}
	suspect := PeerState{ID: "x", Incarnation: 1, State: StateSuspect}
	newerAlive := PeerState{ID: "x", Incarnation: 2, State: StateAlive}
	if !supersedes(suspect, alive) {
		t.Fatal("same incarnation: worse state must win")
	}
	if !supersedes(newerAlive, suspect) {
		t.Fatal("higher incarnation must win")
	}
	if supersedes(alive, suspect) {
		t.Fatal("alive must not beat suspect at same incarnation")
	}
}

func seedPeers() []PeerState {
	return []PeerState{
		{ID: "n1", Addr: "a1"},
		{ID: "n2", Addr: "a2"},
		{ID: "n3", Addr: "a3"},
	}
}

func TestMembershipSuspectToDead(t *testing.T) {
	clk := newClock()
	m := NewMembership("n1", seedPeers(), 3*time.Second, clk.Now)
	if !m.MarkFailed("n2") {
		t.Fatal("MarkFailed should change state")
	}
	if m.Tick() {
		t.Fatal("suspicion should not age instantly")
	}
	if got := len(m.Members()); got != 3 {
		t.Fatalf("suspect peer must stay ring-eligible, members=%d", got)
	}
	clk.Step(3 * time.Second)
	if !m.Tick() {
		t.Fatal("suspicion should age into death")
	}
	if got := len(m.Members()); got != 2 {
		t.Fatalf("dead peer must leave the ring, members=%d", got)
	}
	a, s, d := m.Counts()
	if a != 2 || s != 0 || d != 1 {
		t.Fatalf("counts = %d/%d/%d", a, s, d)
	}
}

func TestMembershipRefutesRumourAboutSelf(t *testing.T) {
	clk := newClock()
	m := NewMembership("n1", seedPeers(), time.Second, clk.Now)
	before := m.Self().Incarnation
	m.Merge([]PeerState{{ID: "n1", Addr: "a1", Incarnation: before, State: StateSuspect}})
	self := m.Self()
	if self.State != StateAlive || self.Incarnation <= before {
		t.Fatalf("self = %+v; rumour not refuted", self)
	}
}

func TestMembershipMergePrecedence(t *testing.T) {
	clk := newClock()
	m := NewMembership("n1", seedPeers(), time.Second, clk.Now)
	// A dead rumour at the same incarnation wins.
	if !m.Merge([]PeerState{{ID: "n2", Addr: "a2", State: StateDead}}) {
		t.Fatal("death rumour should change the ring")
	}
	// A stale alive rumour at the same incarnation does not resurrect.
	m.Merge([]PeerState{{ID: "n2", Addr: "a2", State: StateAlive}})
	if p, _ := m.Get("n2"); p.State != StateDead {
		t.Fatalf("stale rumour resurrected n2: %+v", p)
	}
	// A higher incarnation does: the peer rejoined.
	m.Merge([]PeerState{{ID: "n2", Addr: "a2", Incarnation: 1, State: StateAlive}})
	if p, _ := m.Get("n2"); p.State != StateAlive {
		t.Fatalf("rejoin not accepted: %+v", p)
	}
	// Unknown peers are learned.
	m.Merge([]PeerState{{ID: "n4", Addr: "a4", State: StateAlive}})
	if got := len(m.Members()); got != 4 {
		t.Fatalf("members after join = %d", got)
	}
}

func TestNextTargetSkipsDead(t *testing.T) {
	clk := newClock()
	m := NewMembership("n1", seedPeers(), time.Second, clk.Now)
	m.Merge([]PeerState{{ID: "n2", Addr: "a2", State: StateDead}})
	seen := map[string]int{}
	for i := 0; i < 6; i++ {
		p, ok := m.NextTarget()
		if !ok {
			t.Fatal("expected a live target")
		}
		seen[p.ID]++
	}
	if seen["n2"] != 0 {
		t.Fatal("dead peer probed")
	}
	if seen["n3"] != 6 {
		t.Fatalf("round-robin skewed: %v", seen)
	}
}

func TestMarkAliveRevivesDirectAck(t *testing.T) {
	clk := newClock()
	m := NewMembership("n1", seedPeers(), time.Second, clk.Now)
	m.MarkFailed("n3")
	if !m.MarkAlive("n3") {
		t.Fatal("ack should clear suspicion")
	}
	clk.Step(2 * time.Second)
	if m.Tick() {
		t.Fatal("cleared suspicion must not age into death")
	}
}
