package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"harness2/internal/registry"
	"harness2/internal/telemetry"
)

// ownerMovesToJoiner finds a service name whose primary owner is fromID
// in a {n1,n2} ring but toID once n3 joins — the deterministic setup for
// mid-lease ownership-change tests.
func ownerMovesToJoiner(t *testing.T, fromID, toID string) string {
	t.Helper()
	before := BuildRing([]string{"n1", "n2"}, 0)
	after := BuildRing([]string{"n1", "n2", "n3"}, 0)
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("MovingSvc%d", i)
		if before.Owner(name) == fromID && after.Owner(name) == toID {
			return name
		}
	}
	t.Fatal("no service name moves between the chosen owners")
	return ""
}

// TestRemoteRenewFollowsOwnershipRedirect pins a Remote to a peer that
// is not the key's primary owner and checks a renewal still lands: the
// non-owner answers with a Redirect fault and the Remote follows it.
func TestRemoteRenewFollowsOwnershipRedirect(t *testing.T) {
	nodes, _ := httpCluster(t, 3, 1) // R=1: exactly one owner per key
	xml := testWSDL(t)
	key, err := nodes[0].PublishLeased(registry.Entry{Name: "WSTime", WSDL: xml}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	var owner, nonOwner *Node
	for _, n := range nodes {
		if n.IsLocalOwner(key) {
			owner = n
		} else if nonOwner == nil {
			nonOwner = n
		}
	}
	if owner == nil || nonOwner == nil {
		t.Fatal("cluster has no owner/non-owner split")
	}
	if _, ok := nonOwner.Store().Get(key); ok {
		t.Fatal("non-owner unexpectedly holds the entry at R=1")
	}
	rem := registry.NewRemote(nonOwner.Addr())
	// The non-owner's local store cannot renew this key; success proves
	// the Redirect fault was followed to the owner.
	if err := rem.Renew(key); err != nil {
		t.Fatalf("renew via non-owner endpoint: %v", err)
	}
}

// TestLeaseKeeperSurvivesOwnerChange is the satellite regression: a
// LeaseKeeper renewing against one fixed endpoint must keep its entry
// alive when a cluster join moves the key's ownership mid-lease — the
// stale peer redirects each renewal to the new owner.
func TestLeaseKeeperSurvivesOwnerChange(t *testing.T) {
	name := ownerMovesToJoiner(t, "n1", "n3")
	nodes, _ := httpCluster(t, 2, 1)
	xml := testWSDL(t)

	rem := registry.NewRemote(nodes[0].Addr()) // pinned to n1 forever
	keeper, err := registry.KeepLease(rem,
		registry.Entry{Name: name, WSDL: xml}, 900*time.Millisecond, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer keeper.Stop()
	key := keeper.Key()
	if !nodes[0].IsLocalOwner(key) {
		t.Fatalf("precondition: n1 should own %q before the join", key)
	}

	// A third peer joins and takes over the key's arc.
	s3 := startJoiner(t, "n3", nodes)
	all := append(append([]*Node(nil), nodes...), s3)
	for round := 0; round < 3; round++ {
		for _, n := range all {
			n.Step(context.Background())
		}
	}
	if owner, _ := nodes[0].OwnerAddr(key); owner != s3.Addr() {
		t.Fatalf("ownership did not move to the joiner: owner=%s", owner)
	}

	// Let several renewal ticks cross the new topology.
	time.Sleep(1200 * time.Millisecond)
	renewals, _, republishes := keeper.Stats()
	if republishes != 0 {
		t.Fatalf("lease lapsed and was re-published %d times; redirect not followed", republishes)
	}
	if renewals < 3 {
		t.Fatalf("only %d renewals in 1.2s", renewals)
	}
	// The entry is alive on the new owner, with a running lease.
	e, ok := s3.Store().Get(key)
	if !ok || e.LeaseRemaining <= 0 {
		t.Fatalf("entry on new owner: ok=%v lease=%v", ok, e.LeaseRemaining)
	}
}

// startJoiner starts one more HTTP cluster node seeded with the
// existing peers, for join tests.
func startJoiner(t *testing.T, id string, peers []*Node) *Node {
	t.Helper()
	srv := httptest.NewUnstartedServer(nil)
	addr := "http://" + srv.Listener.Addr().String()
	var seed []PeerState
	for _, p := range peers {
		seed = append(seed, PeerState{ID: p.ID(), Addr: p.Addr()})
	}
	n := NewNode(Config{
		ID:        id,
		Addr:      addr,
		Seed:      seed,
		Replicas:  peers[0].cfg.Replicas,
		DeadAfter: 3 * time.Second,
		Caller:    &HTTPCaller{},
		Telemetry: telemetry.Disabled(),
	})
	srv.Config.Handler = NewServer(n)
	srv.Start()
	t.Cleanup(srv.Close)
	return n
}
