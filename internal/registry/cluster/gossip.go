package cluster

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"
)

// State is a peer's liveness state in the membership protocol.
type State uint8

const (
	// StateAlive: the peer acks (or gossip recently vouched for it).
	StateAlive State = iota
	// StateSuspect: a probe failed; the peer stays in the ring (its
	// shards are still addressed, tried after alive owners) until the
	// suspicion either ages into death or is refuted by a higher
	// incarnation.
	StateSuspect
	// StateDead: the suspicion timed out. The peer leaves the ring,
	// which triggers rebalance and entry handoff.
	StateDead
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// PeerState is one row of the gossip digest: a peer's identity, its
// client/peer-RPC endpoint, and the (incarnation, state) pair that
// orders rumours about it. Higher incarnations always win; within an
// incarnation a worse state wins (dead > suspect > alive), the standard
// SWIM merge rule that lets a live peer refute its own suspicion by
// bumping its incarnation.
type PeerState struct {
	ID          string
	Addr        string
	Incarnation uint64
	State       State
}

// supersedes reports whether a beats b under the SWIM ordering.
func supersedes(a, b PeerState) bool {
	if a.Incarnation != b.Incarnation {
		return a.Incarnation > b.Incarnation
	}
	return a.State > b.State
}

// Digest codec: a compact length-prefixed binary layout, fuzzed for
// decode robustness (FuzzGossipDigest). Layout:
//
//	'G' version(1) uvarint(count) then per peer:
//	uvarint(len) id-bytes, uvarint(len) addr-bytes,
//	uvarint(incarnation), state-byte
const (
	digestMagic   = 'G'
	digestVersion = 1
	// maxDigestPeers and maxDigestString bound decoding so a hostile or
	// corrupt digest cannot allocate unboundedly.
	maxDigestPeers  = 1 << 12
	maxDigestString = 1 << 10
)

// EncodeDigest renders peer states in the gossip wire layout, sorted by
// ID so equal memberships encode identically.
func EncodeDigest(peers []PeerState) []byte {
	ps := append([]PeerState(nil), peers...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].ID < ps[j].ID })
	buf := make([]byte, 0, 2+len(ps)*24)
	buf = append(buf, digestMagic, digestVersion)
	buf = binary.AppendUvarint(buf, uint64(len(ps)))
	for _, p := range ps {
		buf = binary.AppendUvarint(buf, uint64(len(p.ID)))
		buf = append(buf, p.ID...)
		buf = binary.AppendUvarint(buf, uint64(len(p.Addr)))
		buf = append(buf, p.Addr...)
		buf = binary.AppendUvarint(buf, p.Incarnation)
		buf = append(buf, byte(p.State))
	}
	return buf
}

// DecodeDigest parses a gossip digest, validating every bound; it never
// panics on arbitrary input.
func DecodeDigest(data []byte) ([]PeerState, error) {
	if len(data) < 2 || data[0] != digestMagic {
		return nil, fmt.Errorf("cluster: not a gossip digest")
	}
	if data[1] != digestVersion {
		return nil, fmt.Errorf("cluster: unsupported digest version %d", data[1])
	}
	rest := data[2:]
	count, n := binary.Uvarint(rest)
	if n <= 0 || count > maxDigestPeers {
		return nil, fmt.Errorf("cluster: bad digest count")
	}
	rest = rest[n:]
	readString := func() (string, error) {
		l, n := binary.Uvarint(rest)
		if n <= 0 || l > maxDigestString || uint64(len(rest)-n) < l {
			return "", fmt.Errorf("cluster: truncated digest string")
		}
		s := string(rest[n : n+int(l)])
		rest = rest[n+int(l):]
		return s, nil
	}
	out := make([]PeerState, 0, count)
	for i := uint64(0); i < count; i++ {
		var p PeerState
		var err error
		if p.ID, err = readString(); err != nil {
			return nil, err
		}
		if p.Addr, err = readString(); err != nil {
			return nil, err
		}
		inc, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("cluster: truncated incarnation")
		}
		rest = rest[n:]
		if len(rest) < 1 {
			return nil, fmt.Errorf("cluster: truncated state")
		}
		if rest[0] > byte(StateDead) {
			return nil, fmt.Errorf("cluster: unknown state %d", rest[0])
		}
		p.Incarnation = inc
		p.State = State(rest[0])
		rest = rest[1:]
		if p.ID == "" {
			return nil, fmt.Errorf("cluster: digest peer without ID")
		}
		// Enforce the encoder's canonical order: strictly increasing
		// IDs. This also rejects duplicate rows for one peer.
		if len(out) > 0 && out[len(out)-1].ID >= p.ID {
			return nil, fmt.Errorf("cluster: digest not in canonical order")
		}
		out = append(out, p)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("cluster: %d trailing digest bytes", len(rest))
	}
	return out, nil
}

// Membership is the SWIM-flavoured peer table: it merges gossip rumours
// under the incarnation order, turns failed probes into suspicions, ages
// suspicions into deaths, and refutes rumours about the local peer by
// bumping its incarnation. All methods are safe for concurrent use; time
// is injectable so churn tests run deterministically.
type Membership struct {
	self string
	now  func() time.Time
	// deadAfter ages a suspicion into death; a failed probe suspects
	// immediately (the probe's own timeout is the grace period).
	deadAfter time.Duration

	mu      sync.Mutex
	peers   map[string]*memberInfo
	rrOrder []string // round-robin probe order (sorted IDs)
	rrNext  int
}

type memberInfo struct {
	state       PeerState
	suspectedAt time.Time
}

// NewMembership builds a table seeded with the given peers (all alive),
// self among them. deadAfter is the suspicion timeout driving ring
// eviction.
func NewMembership(self string, seed []PeerState, deadAfter time.Duration, now func() time.Time) *Membership {
	if now == nil {
		now = time.Now
	}
	m := &Membership{
		self:      self,
		now:       now,
		deadAfter: deadAfter,
		peers:     make(map[string]*memberInfo),
	}
	for _, p := range seed {
		m.peers[p.ID] = &memberInfo{state: p}
	}
	if _, ok := m.peers[self]; !ok {
		m.peers[self] = &memberInfo{state: PeerState{ID: self}}
	}
	m.rebuildOrderLocked()
	return m
}

func (m *Membership) rebuildOrderLocked() {
	m.rrOrder = m.rrOrder[:0]
	for id := range m.peers {
		if id != m.self {
			m.rrOrder = append(m.rrOrder, id)
		}
	}
	sort.Strings(m.rrOrder)
}

// Digest snapshots every known peer state (including dead peers, so the
// rumour of a death spreads rather than resurrecting via stale rows).
func (m *Membership) Digest() []PeerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PeerState, 0, len(m.peers))
	for _, p := range m.peers {
		out = append(out, p.state)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Self returns the local peer's current state row.
func (m *Membership) Self() PeerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peers[m.self].state
}

// Get returns one peer's state.
func (m *Membership) Get(id string) (PeerState, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[id]
	if !ok {
		return PeerState{}, false
	}
	return p.state, true
}

// Members returns the ring-eligible peers (alive and suspect), sorted by
// ID. Suspects stay in the ring: eviction waits for the timeout so a
// slow peer is not rebalanced away on one dropped probe.
func (m *Membership) Members() []PeerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PeerState, 0, len(m.peers))
	for _, p := range m.peers {
		if p.state.State != StateDead {
			out = append(out, p.state)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Counts reports the peer-count per state for the ring gauges.
func (m *Membership) Counts() (alive, suspect, dead int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range m.peers {
		switch p.state.State {
		case StateAlive:
			alive++
		case StateSuspect:
			suspect++
		case StateDead:
			dead++
		}
	}
	return
}

// NextTarget returns the next probe/gossip target in round-robin order,
// skipping dead peers; ok=false when no live remote peer exists.
func (m *Membership) NextTarget() (PeerState, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := 0; i < len(m.rrOrder); i++ {
		id := m.rrOrder[m.rrNext%len(m.rrOrder)]
		m.rrNext++
		if p, ok := m.peers[id]; ok && p.state.State != StateDead {
			return p.state, true
		}
	}
	return PeerState{}, false
}

// MarkAlive records a successful exchange with id.
func (m *Membership) MarkAlive(id string) (changed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[id]
	if !ok || p.state.State == StateAlive {
		return false
	}
	// A direct ack outranks rumour: adopt the peer's liveness at its
	// current incarnation. (A dead peer must re-join with a higher
	// incarnation; a direct ack proves it is back, so accept it too.)
	p.state.State = StateAlive
	p.suspectedAt = time.Time{}
	return true
}

// MarkFailed records a failed probe of id, moving it to suspect (or
// keeping an existing suspicion aging).
func (m *Membership) MarkFailed(id string) (changed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[id]
	if !ok || id == m.self || p.state.State != StateAlive {
		return false
	}
	p.state.State = StateSuspect
	p.suspectedAt = m.now()
	return true
}

// Merge folds a received digest into the table under the SWIM order and
// returns whether ring-relevant state changed. Rumours about self that
// would demote it are refuted by bumping the local incarnation.
func (m *Membership) Merge(digest []PeerState) (changed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	added := false
	for _, in := range digest {
		if in.ID == m.self {
			self := m.peers[m.self]
			if in.State != StateAlive && in.Incarnation >= self.state.Incarnation {
				// Refute: out-rumour the rumour.
				self.state.Incarnation = in.Incarnation + 1
				self.state.State = StateAlive
				changed = true
			}
			continue
		}
		cur, ok := m.peers[in.ID]
		if !ok {
			m.peers[in.ID] = &memberInfo{state: in}
			if in.State == StateSuspect {
				m.peers[in.ID].suspectedAt = m.now()
			}
			added = true
			changed = changed || in.State != StateDead
			continue
		}
		if supersedes(in, cur.state) {
			ringRelevant := (cur.state.State == StateDead) != (in.State == StateDead)
			if in.State == StateSuspect && cur.state.State != StateSuspect {
				cur.suspectedAt = m.now()
			}
			if in.State == StateAlive {
				cur.suspectedAt = time.Time{}
			}
			cur.state = in
			changed = changed || ringRelevant
		}
	}
	if added {
		m.rebuildOrderLocked()
	}
	return changed
}

// Tick ages suspicions: any peer suspect for longer than deadAfter is
// declared dead. Returns whether ring membership changed.
func (m *Membership) Tick() (changed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	for _, p := range m.peers {
		if p.state.State == StateSuspect && now.Sub(p.suspectedAt) >= m.deadAfter {
			p.state.State = StateDead
			changed = true
		}
	}
	return changed
}
