package cluster

import (
	"context"
	"fmt"

	"harness2/internal/registry"
	"harness2/internal/soap"
)

// NewServer exposes a cluster node over SOAP: the full public registry
// surface (publish, get, find…, served by the node's routing layer so
// any peer can answer for any key), the peer-RPC operations, and a
// redirect-mode renew — a renewal sent to a non-owner answers with a
// Redirect fault naming the current owner, which registry.Remote
// follows, so LeaseKeeper renewals keep landing on the owning shard as
// the ring rebalances under them.
func NewServer(n *Node) *registry.Server {
	s := registry.NewBackendServer(n)
	for _, op := range []string{
		opPublish, opReplicate, opGet, opFindName, opFindQuery,
		opRenew, opRemove, opRemoveReplica, opGossip, opMembers,
	} {
		op := op
		s.HandleExtra(op, func(call *soap.Call) ([]soap.Param, error) {
			return n.HandlePeer(context.Background(), op, call.Params)
		})
	}
	s.HandleExtra("renew", func(call *soap.Call) ([]soap.Param, error) {
		v, ok := callParam(call, "key")
		key, _ := v.(string)
		if !ok || key == "" {
			return nil, &soap.Fault{Code: "Client", String: `missing parameter "key"`}
		}
		if !n.isLocalPrimary(RingKey(key)) {
			if addr, ok := n.OwnerAddr(key); ok && addr != n.cfg.Addr {
				return nil, &soap.Fault{
					Code:   registry.FaultCodeRedirect,
					String: fmt.Sprintf("renew %q: owner is %s", key, addr),
					Detail: addr,
				}
			}
		}
		if err := n.renewLocal(key); err != nil {
			return nil, clientFault(err)
		}
		return []soap.Param{{Name: "ok", Value: true}}, nil
	})
	return s
}

func callParam(call *soap.Call, name string) (any, bool) {
	return paramsValue(call.Params, name)
}
