package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"harness2/internal/registry"
	"harness2/internal/resilience/chaos"
	"harness2/internal/telemetry"
)

// httpCluster spins up n cluster nodes as real HTTP SOAP servers wired
// to each other over an HTTPCaller — the multi-process topology, in one
// test process.
func httpCluster(t *testing.T, n, replicas int) ([]*Node, []*httptest.Server) {
	t.Helper()
	caller := &HTTPCaller{}
	// Allocate listeners first so every node knows every address.
	servers := make([]*httptest.Server, n)
	for i := range servers {
		servers[i] = httptest.NewUnstartedServer(nil)
	}
	seed := make([]PeerState, n)
	for i := range seed {
		seed[i] = PeerState{
			ID:   fmt.Sprintf("n%d", i+1),
			Addr: "http://" + servers[i].Listener.Addr().String(),
		}
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(Config{
			ID:        seed[i].ID,
			Addr:      seed[i].Addr,
			Seed:      seed,
			Replicas:  replicas,
			DeadAfter: 3 * time.Second,
			Caller:    caller,
			Telemetry: telemetry.Disabled(),
		})
		servers[i].Config.Handler = NewServer(nodes[i])
		servers[i].Start()
		t.Cleanup(servers[i].Close)
	}
	return nodes, servers
}

func TestRouterFailsOverAcrossEndpoints(t *testing.T) {
	nodes, servers := httpCluster(t, 3, 2)
	xml := testWSDL(t)
	router := NewRouter(nodes[0].Addr(), nodes[1].Addr(), nodes[2].Addr())
	key, err := router.PublishLeased(registry.Entry{Name: "WSTime", Business: "b"}, 0)
	_ = key
	if err == nil {
		t.Fatal("publish without WSDL should fail (authoritative, no failover)")
	}
	key, err = router.Publish(registry.Entry{Name: "WSTime", WSDL: xml})
	if err != nil {
		t.Fatal(err)
	}
	if e, ok, err := router.GetErr(key); err != nil || !ok || e.Name != "WSTime" {
		t.Fatalf("get = %+v ok=%v err=%v", e, ok, err)
	}
	// Kill the first endpoint: the router must fail over silently.
	servers[0].Close()
	if es, err := router.FindByNameErr("WSTime"); err != nil || len(es) != 1 {
		t.Fatalf("find after endpoint death: %v err=%v", es, err)
	}
	// An authoritative miss via the surviving endpoints stays a miss.
	if _, ok, err := router.GetErr("Ghost::x"); ok || err != nil {
		t.Fatalf("miss: ok=%v err=%v", ok, err)
	}
	if err := router.Renew(key); err != nil {
		t.Fatalf("renew after failover: %v", err)
	}
	if err := router.Remove(key); err != nil {
		t.Fatalf("remove after failover: %v", err)
	}
	if es, err := router.FindByNameErr("WSTime"); err != nil || len(es) != 0 {
		t.Fatalf("find after remove: %v err=%v", es, err)
	}
}

func TestRouterRefreshLearnsMembership(t *testing.T) {
	nodes, _ := httpCluster(t, 3, 2)
	// Bootstrapped with one seed only.
	router := NewRouter(nodes[1].Addr())
	if err := router.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(router.Endpoints()); got != 3 {
		t.Fatalf("endpoints after refresh = %d (%v), want 3", got, router.Endpoints())
	}
}

func TestRouterAllEndpointsDown(t *testing.T) {
	router := NewRouter("http://127.0.0.1:1", "http://127.0.0.1:2")
	if _, _, err := router.GetErr("k"); err == nil {
		t.Fatal("expected unavailability error")
	}
	empty := NewRouter()
	if _, _, err := empty.GetErr("k"); err == nil {
		t.Fatal("expected error from endpoint-less router")
	}
}

// TestRouterThroughCacheNeverNegativeCachesOutage wires the full client
// stack — Cache over Router over a live cluster with a chaos-injected
// transient outage — and checks the one failed lookup never turns into
// a cached "not found": the SAME cache instance sees the entry on the
// very next call.
func TestRouterThroughCacheNeverNegativeCachesOutage(t *testing.T) {
	nodes, _ := httpCluster(t, 1, 1)
	key, err := nodes[0].Publish(registry.Entry{Name: "WSTime", WSDL: testWSDL(t)})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := chaos.NewFromSpec(1, "error:1@registry/get/*#1")
	if err != nil {
		t.Fatal(err)
	}
	router := NewRouter(nodes[0].Addr())
	router.Chaos = inj
	cache := registry.NewCache(router, time.Hour)
	// First call: the injected fault kills the only endpoint's attempt;
	// the cache must surface the outage, not store a miss.
	if _, ok, err := cache.GetErr(key); ok || err == nil {
		t.Fatalf("during outage: ok=%v err=%v, want error", ok, err)
	}
	// Second call, same cache: the chaos budget is spent, the lookup
	// succeeds — proving the outage was not negative-cached.
	if _, ok, err := cache.GetErr(key); !ok || err != nil {
		t.Fatalf("after recovery: ok=%v err=%v", ok, err)
	}
	// And plain Get reports the cached entry, not a stale miss.
	if _, ok := cache.Get(key); !ok {
		t.Fatal("entry invisible through cache after recovery")
	}
}
