package cluster

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// FuzzGossipDigest hardens the membership codec: DecodeDigest must never
// panic on arbitrary bytes, and every digest it accepts must re-encode
// canonically (decode∘encode∘decode is the identity).
func FuzzGossipDigest(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{'G', 1, 0})
	f.Add(EncodeDigest([]PeerState{
		{ID: "n1", Addr: "host1:80", Incarnation: 3, State: StateAlive},
		{ID: "n2", Addr: "host2:80", Incarnation: 9, State: StateDead},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		peers, err := DecodeDigest(data)
		if err != nil {
			return
		}
		re := EncodeDigest(peers)
		peers2, err := DecodeDigest(re)
		if err != nil {
			t.Fatalf("re-decode of accepted digest failed: %v", err)
		}
		if !reflect.DeepEqual(peers, peers2) {
			t.Fatalf("decode∘encode not identity: %+v vs %+v", peers, peers2)
		}
		if !bytes.Equal(re, EncodeDigest(peers2)) {
			t.Fatal("encoding not canonical")
		}
		// Merging any accepted digest must leave the table consistent.
		m := NewMembership("self", nil, 1, nil)
		m.Merge(peers)
		if _, ok := m.Get("self"); !ok {
			t.Fatal("merge evicted self")
		}
	})
}

// FuzzRingPlan proves the rebalance planner's no-loss/no-double-ownership
// invariant for arbitrary peer-set deltas: for any old and new peer sets
// and any key, (oldOwners \ Drops) ∪ Adds equals exactly the new owner
// set, owners stay distinct, and the plan never adds an existing owner.
func FuzzRingPlan(f *testing.F) {
	f.Add(uint8(3), uint8(2), uint8(1), "WSTime", uint8(2))
	f.Add(uint8(1), uint8(0), uint8(5), "a::b", uint8(3))
	f.Fuzz(func(t *testing.T, oldMask, addMask, dropMask uint8, key string, replicas uint8) {
		r := int(replicas%4) + 1
		var oldPeers, newPeers []string
		for i := 0; i < 8; i++ {
			id := fmt.Sprintf("peer-%d", i)
			inOld := oldMask&(1<<i) != 0
			inNew := (inOld && dropMask&(1<<i) == 0) || (!inOld && addMask&(1<<i) != 0)
			if inOld {
				oldPeers = append(oldPeers, id)
			}
			if inNew {
				newPeers = append(newPeers, id)
			}
		}
		oldRing := BuildRing(oldPeers, 8)
		newRing := BuildRing(newPeers, 8)
		oldOwners := oldRing.Owners(key, r)
		newOwners := newRing.Owners(key, r)
		if len(newOwners) > r || len(oldOwners) > r {
			t.Fatalf("owner list longer than replicas")
		}
		distinct(t, oldOwners)
		distinct(t, newOwners)
		if want := min(r, len(newPeers)); len(newOwners) != want {
			t.Fatalf("new owners = %v, want %d of %v", newOwners, want, newPeers)
		}
		pl := PlanMove(oldRing, newRing, key, r)
		got := map[string]bool{}
		for _, p := range oldOwners {
			got[p] = true
		}
		for _, p := range pl.Drops {
			if !got[p] {
				t.Fatalf("plan drops non-owner %s", p)
			}
			delete(got, p)
		}
		for _, p := range pl.Adds {
			if got[p] {
				t.Fatalf("plan adds existing owner %s (double ownership)", p)
			}
			got[p] = true
		}
		want := map[string]bool{}
		for _, p := range newOwners {
			want[p] = true
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("entry lost or misplaced: plan %+v turns %v into %v, want %v",
				pl, oldOwners, got, want)
		}
	})
}

func distinct(t *testing.T, owners []string) {
	t.Helper()
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("duplicate owner %s in %v", o, owners)
		}
		seen[o] = true
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
