package registry

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"harness2/internal/wsdl"
	"harness2/internal/xmlq"
)

func TestWSILDocumentRoundTrip(t *testing.T) {
	refs := []ServiceRef{
		{Name: "MatMul", Location: "http://h/wsdl/mm"},
		{Name: "WSTime", Location: "http://h/wsdl/clock"},
	}
	doc := WSILDocument(refs)
	if doc.Local != "inspection" {
		t.Fatalf("root = %q", doc.Local)
	}
	again, err := xmlq.ParseString(doc.String())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseWSIL(again)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != refs[0] || got[1] != refs[1] {
		t.Fatalf("got %v", got)
	}
}

func TestParseWSILErrors(t *testing.T) {
	if _, err := ParseWSIL(xmlq.NewNode("notinspection")); err == nil {
		t.Fatal("wrong root should fail")
	}
	bad := xmlq.NewNode("inspection")
	bad.AddNew("service").AddNew("abstract").SetText("x") // no description
	if _, err := ParseWSIL(bad); err == nil {
		t.Fatal("missing location should fail")
	}
}

// fakeSource serves two synthetic WSDL documents.
type fakeSource struct{ fail bool }

func (f *fakeSource) InspectableServices() []ServiceRef {
	return []ServiceRef{{Name: "MatMul", Location: "mm"}, {Name: "WSTime", Location: "clock"}}
}

func (f *fakeSource) WSDLDocument(id string) (string, error) {
	if f.fail {
		return "", fmt.Errorf("no document %q", id)
	}
	spec := wsdl.MatMulSpec()
	if id == "clock" {
		spec = wsdl.WSTimeSpec()
	}
	defs, err := wsdl.Generate(spec, wsdl.EndpointSet{SOAPAddress: "http://h/" + id})
	if err != nil {
		return "", err
	}
	return defs.String(), nil
}

func TestWSILHandlerAndDiscovery(t *testing.T) {
	src := &fakeSource{}
	var ts *httptest.Server
	handler := http.NewServeMux()
	ts = httptest.NewServer(handler)
	defer ts.Close()
	wsil := &WSILHandler{Source: src, Base: ts.URL}
	handler.Handle("/inspection.wsil", wsil)
	handler.Handle("/wsdl/", wsil)

	refs, err := FetchWSIL(ts.URL + "/inspection.wsil")
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 2 || !strings.HasPrefix(refs[0].Location, ts.URL+"/wsdl/") {
		t.Fatalf("refs = %v", refs)
	}
	defsList, err := DiscoverViaWSIL(ts.URL + "/inspection.wsil")
	if err != nil {
		t.Fatal(err)
	}
	if len(defsList) != 2 || defsList[0].Name != "MatMul" || defsList[1].Name != "WSTime" {
		t.Fatalf("defs = %v", defsList)
	}
}

func TestWSILHandlerErrors(t *testing.T) {
	src := &fakeSource{fail: true}
	wsil := &WSILHandler{Source: src, Base: "http://x"}
	ts := httptest.NewServer(wsil)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/wsdl/mm")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/inspection.wsil", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/bogus/path")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestDiscoverViaWSILErrors(t *testing.T) {
	if _, err := DiscoverViaWSIL("http://127.0.0.1:1/inspection.wsil"); err == nil {
		t.Fatal("unreachable host should fail")
	}
	// Inspection doc referencing a dead WSDL location.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		doc := WSILDocument([]ServiceRef{{Name: "x", Location: "http://127.0.0.1:1/wsdl/x"}})
		_, _ = w.Write([]byte(doc.String()))
	}))
	defer ts.Close()
	if _, err := DiscoverViaWSIL(ts.URL); err == nil {
		t.Fatal("dead reference should fail")
	}
}
