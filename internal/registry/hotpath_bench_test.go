package registry

import (
	"fmt"
	"testing"
	"time"
)

// The hot-path contention benchmarks back the E15 before/after table:
// aggregate throughput of the two reads a metacity-scale client crowd
// actually hammers — the discovery-cache hit and the owner-shard
// registry read — at 32 concurrent callers. Before the S34 rework both
// paths serialized on a process-wide mutex (the cache took a plain
// Mutex per HIT); after it both are lock-free atomic-snapshot reads.

const hotCallers = 32

// hotRegistry builds a populated registry sized like a busy shard.
func hotRegistry(b *testing.B, n int) (*Registry, []string) {
	b.Helper()
	r := New()
	xml, _ := matmulWSDL(b)
	keys := make([]string, n)
	for i := range keys {
		k, err := r.Publish(Entry{Name: fmt.Sprintf("Hot%d", i), WSDL: xml})
		if err != nil {
			b.Fatal(err)
		}
		keys[i] = k
	}
	return r, keys
}

// BenchmarkHotRegistryGet32 is the owner-shard read under 32-way
// concurrency: every caller loops over the key population.
func BenchmarkHotRegistryGet32(b *testing.B) {
	r, keys := hotRegistry(b, 1024)
	b.ReportAllocs()
	b.SetParallelism(hotCallers)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, ok := r.Get(keys[i&1023]); !ok {
				b.Fail()
			}
			i++
		}
	})
}

// BenchmarkHotRegistryFindByName32 is the indexed name lookup under
// 32-way concurrency.
func BenchmarkHotRegistryFindByName32(b *testing.B) {
	r, _ := hotRegistry(b, 1024)
	names := make([]string, 1024)
	for i := range names {
		names[i] = fmt.Sprintf("Hot%d", i)
	}
	b.ReportAllocs()
	b.SetParallelism(hotCallers)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if es := r.FindByName(names[i&1023]); len(es) != 1 {
				b.Fail()
			}
			i++
		}
	})
}

// BenchmarkHotCacheHit32 is the Zipf-hot discovery-cache hit under
// 32-way concurrency: every caller resolves the same popular name —
// the exact access pattern E15's Zipf client population produces.
func BenchmarkHotCacheHit32(b *testing.B) {
	src := &countingLookup{byName: map[string][]Entry{
		"svc": {{Key: "k", Name: "svc"}},
	}}
	c := NewCache(src, time.Hour)
	c.FindByName("svc") // warm
	b.ReportAllocs()
	b.SetParallelism(hotCallers)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if es := c.FindByName("svc"); len(es) != 1 {
				b.Fail()
			}
		}
	})
}

// BenchmarkHotCacheGetHit32 is the keyed cache hit under 32-way
// concurrency.
func BenchmarkHotCacheGetHit32(b *testing.B) {
	src := &countingLookup{entries: map[string]Entry{"k": {Key: "k", Name: "svc"}}}
	c := NewCache(src, time.Hour)
	c.Get("k") // warm
	b.ReportAllocs()
	b.SetParallelism(hotCallers)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, ok := c.Get("k"); !ok {
				b.Fail()
			}
		}
	})
}
