package registry

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"harness2/internal/wsdl"
	"harness2/internal/xmlq"
)

// WS-Inspection (WSIL) support. The paper lists WSIL beside UDDI as a
// lookup-system type ("the type of lookup service used (e.g. UDDI, WSIL,
// etc.)"): instead of a central registry, each provider serves an
// inspection document enumerating its services and pointing at their WSDL
// documents. This file implements the document model, an HTTP publisher
// for containers, and the client-side fetch.

// WSILNamespace is the WS-Inspection 1.0 namespace.
const WSILNamespace = "http://schemas.xmlsoap.org/ws/2001/10/inspection/"

// ServiceRef is one entry of an inspection document.
type ServiceRef struct {
	// Name is the human-readable service abstract.
	Name string
	// Location is the URL of the service's WSDL document.
	Location string
}

// WSILDocument renders service references as an inspection document.
func WSILDocument(refs []ServiceRef) *xmlq.Node {
	root := xmlq.NewNode("inspection")
	root.Attrs = append(root.Attrs, xmlq.Attr{Local: "xmlns", Value: WSILNamespace})
	for _, r := range refs {
		svc := root.AddNew("service")
		svc.AddNew("abstract").SetText(r.Name)
		desc := svc.AddNew("description")
		desc.SetAttr("referencedNamespace", wsdl.NSWSDL)
		desc.SetAttr("location", r.Location)
	}
	return root
}

// ParseWSIL extracts service references from an inspection document.
func ParseWSIL(root *xmlq.Node) ([]ServiceRef, error) {
	if root.Local != "inspection" {
		return nil, fmt.Errorf("registry: wsil root is %q, want inspection", root.Local)
	}
	var out []ServiceRef
	for _, svc := range root.ChildrenNamed("service") {
		ref := ServiceRef{}
		if a := svc.Child("abstract"); a != nil {
			ref.Name = a.Text
		}
		if d := svc.Child("description"); d != nil {
			ref.Location = d.AttrOr("location", "")
		}
		if ref.Location == "" {
			return nil, fmt.Errorf("registry: wsil service %q has no description location", ref.Name)
		}
		out = append(out, ref)
	}
	return out, nil
}

// WSDLSource enumerates locally hosted services for WSIL publication; the
// component container implements it.
type WSDLSource interface {
	// InspectableServices returns (service name, instance id) pairs the
	// provider chooses to advertise.
	InspectableServices() []ServiceRef
	// WSDLDocument returns the WSDL text for one advertised instance id.
	WSDLDocument(id string) (string, error)
}

// WSILHandler serves /inspection.wsil and /wsdl/<instance> for a source,
// giving every node a registry-free discovery surface.
type WSILHandler struct {
	Source WSDLSource
	// Base is the externally visible base URL used in document locations
	// (e.g. http://host:8080).
	Base string
}

// ServeHTTP implements http.Handler.
func (h *WSILHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "inspection requires GET", http.StatusMethodNotAllowed)
		return
	}
	path := strings.Trim(r.URL.Path, "/")
	switch {
	case path == "inspection.wsil" || path == "":
		refs := h.Source.InspectableServices()
		for i := range refs {
			refs[i].Location = strings.TrimSuffix(h.Base, "/") + "/wsdl/" + refs[i].Location
		}
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		_, _ = io.WriteString(w, WSILDocument(refs).String())
	case strings.HasPrefix(path, "wsdl/"):
		id := strings.TrimPrefix(path, "wsdl/")
		doc, err := h.Source.WSDLDocument(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		_, _ = io.WriteString(w, doc)
	default:
		http.NotFound(w, r)
	}
}

var wsilHTTP = &http.Client{Timeout: 30 * time.Second}

// FetchWSIL retrieves and parses an inspection document.
func FetchWSIL(url string) ([]ServiceRef, error) {
	body, err := httpGet(url)
	if err != nil {
		return nil, err
	}
	root, err := xmlq.ParseString(body)
	if err != nil {
		return nil, fmt.Errorf("registry: wsil at %s: %w", url, err)
	}
	return ParseWSIL(root)
}

// DiscoverViaWSIL fetches an inspection document and every WSDL document
// it references, returning the parsed definitions — decentralized
// discovery without any registry.
func DiscoverViaWSIL(url string) ([]*wsdl.Definitions, error) {
	refs, err := FetchWSIL(url)
	if err != nil {
		return nil, err
	}
	out := make([]*wsdl.Definitions, 0, len(refs))
	for _, ref := range refs {
		body, err := httpGet(ref.Location)
		if err != nil {
			return nil, fmt.Errorf("registry: wsil reference %q: %w", ref.Name, err)
		}
		defs, err := wsdl.ParseString(body)
		if err != nil {
			return nil, fmt.Errorf("registry: wsil reference %q: %w", ref.Name, err)
		}
		out = append(out, defs)
	}
	return out, nil
}

func httpGet(url string) (string, error) {
	resp, err := wsilHTTP.Get(url)
	if err != nil {
		return "", fmt.Errorf("registry: get %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("registry: read %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("registry: get %s: %s", url, resp.Status)
	}
	return string(body), nil
}
