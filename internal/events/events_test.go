package events

import (
	"context"
	"sync"
	"testing"

	"harness2/internal/container"
	"harness2/internal/kernel"
	"harness2/internal/wire"
)

func TestPublishSubscribe(t *testing.T) {
	s := New()
	sub := s.Subscribe("task.exit", 4)
	n := s.Publish(Event{Topic: "task.exit", Source: "n1", Payload: wire.Args("tid", int32(7))})
	if n != 1 {
		t.Fatalf("delivered = %d", n)
	}
	ev := <-sub.C
	if ev.Topic != "task.exit" || ev.Source != "n1" {
		t.Fatalf("ev = %+v", ev)
	}
	tid, _ := wire.GetArg(ev.Payload, "tid")
	if tid.(int32) != 7 {
		t.Fatalf("tid = %v", tid)
	}
}

func TestMultipleSubscribers(t *testing.T) {
	s := New()
	a := s.Subscribe("t", 1)
	b := s.Subscribe("t", 1)
	if n := s.Publish(Event{Topic: "t"}); n != 2 {
		t.Fatalf("delivered = %d", n)
	}
	<-a.C
	<-b.C
	// Unrelated topic is not delivered.
	if n := s.Publish(Event{Topic: "other"}); n != 0 {
		t.Fatalf("delivered = %d", n)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	sub := s.Subscribe("t", 1)
	sub.Cancel()
	if _, ok := <-sub.C; ok {
		t.Fatal("channel should be closed")
	}
	if n := s.Publish(Event{Topic: "t"}); n != 0 {
		t.Fatalf("delivered after cancel = %d", n)
	}
	// Double cancel must not panic.
	sub.Cancel()
	if got := s.Topics(); len(got) != 0 {
		t.Fatalf("topics = %v", got)
	}
}

func TestDropOldestWhenFull(t *testing.T) {
	s := New()
	sub := s.Subscribe("t", 2)
	for i := 0; i < 5; i++ {
		s.Publish(Event{Topic: "t", Payload: wire.Args("i", int32(i))})
	}
	// Publisher never blocked; the two newest events remain.
	first := <-sub.C
	second := <-sub.C
	i1, _ := wire.GetArg(first.Payload, "i")
	i2, _ := wire.GetArg(second.Payload, "i")
	if i1.(int32) != 3 || i2.(int32) != 4 {
		t.Fatalf("kept %v,%v; want 3,4", i1, i2)
	}
	select {
	case <-sub.C:
		t.Fatal("no more events expected")
	default:
	}
}

func TestPublishedCountAndTopics(t *testing.T) {
	s := New()
	_ = s.Subscribe("a", 1)
	_ = s.Subscribe("b", 1)
	s.Publish(Event{Topic: "a"})
	s.Publish(Event{Topic: "a"})
	if s.Published("a") != 2 || s.Published("b") != 0 {
		t.Fatal("counts wrong")
	}
	topics := s.Topics()
	if len(topics) != 2 || topics[0] != "a" || topics[1] != "b" {
		t.Fatalf("topics = %v", topics)
	}
}

func TestComponentInvoke(t *testing.T) {
	s := New()
	sub := s.Subscribe("remote", 1)
	ctx := context.Background()
	out, err := s.Invoke(ctx, "publish", wire.Args("topic", "remote", "source", "client", "x", int32(1)))
	if err != nil {
		t.Fatal(err)
	}
	d, _ := wire.GetArg(out, "delivered")
	if d.(int32) != 1 {
		t.Fatalf("delivered = %v", d)
	}
	ev := <-sub.C
	if ev.Source != "client" {
		t.Fatalf("source = %q", ev.Source)
	}
	if x, ok := wire.GetArg(ev.Payload, "x"); !ok || x.(int32) != 1 {
		t.Fatalf("payload = %v", ev.Payload)
	}
	out, err = s.Invoke(ctx, "published", wire.Args("topic", "remote"))
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := wire.GetArg(out, "count"); c.(int64) != 1 {
		t.Fatalf("count = %v", c)
	}
	out, err = s.Invoke(ctx, "topics", nil)
	if err != nil {
		t.Fatal(err)
	}
	if ts, _ := wire.GetArg(out, "topics"); len(ts.([]string)) != 1 {
		t.Fatalf("topics = %v", ts)
	}
	if _, err := s.Invoke(ctx, "publish", nil); err == nil {
		t.Fatal("publish without topic should fail")
	}
	if _, err := s.Invoke(ctx, "bogus", nil); err == nil {
		t.Fatal("unknown op should fail")
	}
}

func TestLoadsAsKernelPlugin(t *testing.T) {
	k := kernel.New("n1", container.Config{})
	k.RegisterPlugin(PluginClass, Factory())
	if err := k.Load(PluginClass); err != nil {
		t.Fatal(err)
	}
	comp, ok := k.Plugin(PluginClass)
	if !ok {
		t.Fatal("plugin missing")
	}
	svc, ok := comp.(*Service)
	if !ok {
		t.Fatalf("component type %T", comp)
	}
	sub := svc.Subscribe("x", 1)
	svc.Publish(Event{Topic: "x"})
	<-sub.C
}

func TestConcurrentPublishers(t *testing.T) {
	s := New()
	sub := s.Subscribe("t", 1024)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Publish(Event{Topic: "t"})
			}
		}()
	}
	wg.Wait()
	if s.Published("t") != 800 {
		t.Fatalf("published = %d", s.Published("t"))
	}
	got := 0
	for {
		select {
		case <-sub.C:
			got++
			continue
		default:
		}
		break
	}
	if got != 800 {
		t.Fatalf("received = %d", got)
	}
}
