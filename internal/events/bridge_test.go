package events

import (
	"testing"

	"harness2/internal/container"
	"harness2/internal/kernel"
	"harness2/internal/registry"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

func noopFactory() container.Factory {
	return container.FuncFactory(func() *container.FuncComponent {
		return &container.FuncComponent{
			Spec: wsdl.ServiceSpec{Name: "Noop", Operations: []wsdl.OpSpec{{Name: "noop"}}},
		}
	})
}

func TestBridgeContainerLifecycle(t *testing.T) {
	// The kernel's own container lifecycle is observable through the
	// events plugin loaded into it.
	k := kernel.New("bridge-node", container.Config{})
	k.RegisterPlugin(PluginClass, Factory())
	if err := k.Load(PluginClass); err != nil {
		t.Fatal(err)
	}
	comp, _ := k.Plugin(PluginClass)
	svc := comp.(*Service)
	BridgeContainer(svc, k.Container())

	deploys := svc.Subscribe("container.deploy", 8)
	stops := svc.Subscribe("container.stop", 8)
	undeploys := svc.Subscribe("container.undeploy", 8)

	k.Container().RegisterFactory("Noop", noopFactory())
	if _, _, err := k.Container().Deploy("Noop", "n1"); err != nil {
		t.Fatal(err)
	}
	ev := <-deploys.C
	if ev.Source != "bridge-node" {
		t.Fatalf("source = %q", ev.Source)
	}
	if id, _ := wire.GetArg(ev.Payload, "id"); id.(string) != "n1" {
		t.Fatalf("id = %v", id)
	}
	if class, _ := wire.GetArg(ev.Payload, "class"); class.(string) != "Noop" {
		t.Fatalf("class = %v", class)
	}

	if err := k.Container().Stop("n1"); err != nil {
		t.Fatal(err)
	}
	<-stops.C

	if err := k.Container().Undeploy("n1"); err != nil {
		t.Fatal(err)
	}
	ev = <-undeploys.C
	if id, _ := wire.GetArg(ev.Payload, "id"); id.(string) != "n1" {
		t.Fatalf("undeploy id = %v", id)
	}
	select {
	case extra := <-deploys.C:
		t.Fatalf("unexpected extra deploy event %+v", extra)
	default:
	}
}

func TestBridgeExposeEvents(t *testing.T) {
	c := container.New(container.Config{Name: "exp"})
	svc := New()
	BridgeContainer(svc, c)
	exposes := svc.Subscribe("container.expose", 4)
	unexposes := svc.Subscribe("container.unexpose", 4)

	c.RegisterFactory("Noop", noopFactory())
	if _, _, err := c.Deploy("Noop", "x"); err != nil {
		t.Fatal(err)
	}
	reg := newTestRegistry(t)
	if _, err := c.Expose("x", reg); err != nil {
		t.Fatal(err)
	}
	<-exposes.C
	if err := c.Unexpose("x", reg); err != nil {
		t.Fatal(err)
	}
	<-unexposes.C
}

// newTestRegistry avoids an events→registry test import cycle concern by
// constructing the registry through its public constructor.
func newTestRegistry(t *testing.T) *registry.Registry {
	t.Helper()
	return registry.New()
}
