// Package events implements the Harness event-management plugin that
// Figure 2 shows the PVM emulation leveraging: a topic-based
// publish/subscribe service loaded into a kernel and shared by co-located
// plugins through the local binding.
//
// Subscribers receive events on buffered channels; a slow subscriber
// drops its oldest undelivered event rather than blocking publishers,
// matching the best-effort notification semantics of the original
// Harness event manager.
package events

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"harness2/internal/container"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// PluginClass is the class name under which the plugin registers.
const PluginClass = "harness.events"

// Event is one published notification.
type Event struct {
	Topic   string
	Source  string
	Payload []wire.Arg
}

// Subscription receives events for one topic pattern.
type Subscription struct {
	ID    int
	Topic string
	C     <-chan Event

	svc *Service
	ch  chan Event
}

// Cancel removes the subscription; its channel is closed.
func (s *Subscription) Cancel() { s.svc.cancel(s) }

// Service is the event manager. It implements container.Component so it
// loads as a kernel plugin, and exposes a direct Go API for co-located
// plugins (the local leveraging path).
type Service struct {
	mu     sync.Mutex
	seq    int
	subs   map[string]map[int]*Subscription // topic -> id -> sub
	counts map[string]int64                 // published events per topic
}

var _ container.Component = (*Service)(nil)

// New returns an empty event service.
func New() *Service {
	return &Service{
		subs:   make(map[string]map[int]*Subscription),
		counts: make(map[string]int64),
	}
}

// Factory returns the plugin factory.
func Factory() container.Factory {
	return func() (container.Component, error) { return New(), nil }
}

// Subscribe registers interest in a topic. The buffer bounds undelivered
// events; at least 1 is enforced.
func (s *Service) Subscribe(topic string, buffer int) *Subscription {
	if buffer < 1 {
		buffer = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	sub := &Subscription{ID: s.seq, Topic: topic, svc: s, ch: make(chan Event, buffer)}
	sub.C = sub.ch
	if s.subs[topic] == nil {
		s.subs[topic] = make(map[int]*Subscription)
	}
	s.subs[topic][sub.ID] = sub
	return sub
}

func (s *Service) cancel(sub *Subscription) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.subs[sub.Topic]; ok {
		if _, live := m[sub.ID]; live {
			delete(m, sub.ID)
			close(sub.ch)
			if len(m) == 0 {
				delete(s.subs, sub.Topic)
			}
		}
	}
}

// Publish delivers ev to every subscriber of its topic. Full subscriber
// buffers drop the oldest event (best-effort delivery). It returns the
// number of subscribers notified.
func (s *Service) Publish(ev Event) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counts[ev.Topic]++
	n := 0
	for _, sub := range s.subs[ev.Topic] {
		for {
			select {
			case sub.ch <- ev:
				n++
			default:
				// Buffer full: drop the oldest and retry once.
				select {
				case <-sub.ch:
					continue
				default:
				}
			}
			break
		}
	}
	return n
}

// Topics returns the currently subscribed topics, sorted.
func (s *Service) Topics() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.subs))
	for t := range s.subs {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Published returns how many events were published on topic.
func (s *Service) Published(topic string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[topic]
}

// Describe implements container.Component.
func (s *Service) Describe() wsdl.ServiceSpec {
	return wsdl.ServiceSpec{
		Name: "EventService",
		Operations: []wsdl.OpSpec{
			{
				Name: "publish",
				Input: []wsdl.ParamSpec{
					{Name: "topic", Type: wire.KindString},
					{Name: "source", Type: wire.KindString},
				},
				Output: []wsdl.ParamSpec{{Name: "delivered", Type: wire.KindInt32}},
			},
			{
				Name:   "published",
				Input:  []wsdl.ParamSpec{{Name: "topic", Type: wire.KindString}},
				Output: []wsdl.ParamSpec{{Name: "count", Type: wire.KindInt64}},
			},
			{
				Name:   "topics",
				Output: []wsdl.ParamSpec{{Name: "topics", Type: wire.KindStringArray}},
			},
		},
	}
}

// Invoke implements container.Component: the remotely-invocable subset
// (publish/introspection; subscription is local-only, as channels cannot
// cross a binding).
func (s *Service) Invoke(ctx context.Context, op string, args []wire.Arg) ([]wire.Arg, error) {
	switch op {
	case "publish":
		topicV, _ := wire.GetArg(args, "topic")
		topic, _ := topicV.(string)
		if topic == "" {
			return nil, fmt.Errorf("events: publish requires a topic")
		}
		sourceV, _ := wire.GetArg(args, "source")
		source, _ := sourceV.(string)
		var payload []wire.Arg
		for _, a := range args {
			if a.Name != "topic" && a.Name != "source" {
				payload = append(payload, a)
			}
		}
		n := s.Publish(Event{Topic: topic, Source: source, Payload: payload})
		return wire.Args("delivered", int32(n)), nil
	case "published":
		topicV, _ := wire.GetArg(args, "topic")
		topic, _ := topicV.(string)
		return wire.Args("count", s.Published(topic)), nil
	case "topics":
		return wire.Args("topics", s.Topics()), nil
	}
	return nil, fmt.Errorf("events: no such operation %q", op)
}

// BridgeContainer wires a container's lifecycle into the event service:
// every deploy/undeploy/start/stop/expose/unexpose publishes on the
// "container.<kind>" topic with id and class in the payload. This is the
// "general event management" leverage of Figure 2 applied to the
// container itself.
func BridgeContainer(s *Service, c *container.Container) {
	c.AddLifecycleListener(func(ev container.LifecycleEvent) {
		s.Publish(Event{
			Topic:   "container." + ev.Kind,
			Source:  c.Name(),
			Payload: wire.Args("id", ev.ID, "class", ev.Class),
		})
	})
}
