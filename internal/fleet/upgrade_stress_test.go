package fleet

import (
	"strings"
	"testing"
	"time"

	"harness2/internal/registry"
)

// TestUpgradeCycleNoStaleServing is the regression stress for two races
// in the cycle-stop path that only a scheduler wedge exposed:
//
//  1. stopUnit(cycle) used to return as soon as the old job exited,
//     while the unit's state still read Serving from the STOPPED
//     attempt — Upgrade's wait-for-serving sampled that stale state and
//     declared victory before the relaunch even started, so the
//     registry was momentarily missing the new components.
//  2. A concurrent full stop (Close during an in-flight cycle) returned
//     early on the stopping flag without converting the pending
//     relaunch, orphaning the relaunched job and deadlocking Close.
//
// Each iteration performs a full deploy → rolling upgrade → verify →
// close cycle; the registry must hold exactly the new generation's
// registrations the moment Upgrade returns.
func TestUpgradeCycleNoStaleServing(t *testing.T) {
	for i := 0; i < 15; i++ {
		func() {
			reg := registry.New()
			sup := newTestSup(t, Config{Launcher: NewSimLauncher(&SimLauncherConfig{Registry: reg})},
				testBox("a", nil), testBox("b", nil))
			d, _ := ParseDescriptor("deploy web\nreplicas 2\ncomponent MatMul\nversion v1\n")
			ids, err := sup.Deploy(d)
			if err != nil {
				t.Fatal(err)
			}
			if err := sup.WaitServing(ctxT(t, 5*time.Second), "web", 2); err != nil {
				t.Fatal(err)
			}
			d2, _ := ParseDescriptor("deploy web\nreplicas 2\ncomponent MatMul,WSTime\nversion v2\n")
			if err := sup.Upgrade(ctxT(t, 10*time.Second), d2); err != nil {
				t.Fatal(err)
			}
			for _, id := range ids {
				st, _, _ := sup.Attach(id, 0)
				if st.State != "serving" || st.Generation != 1 {
					t.Fatalf("iter %d: unit %s after upgrade: state=%s gen=%d", i, id, st.State, st.Generation)
				}
			}
			if reg.Len() != 4 {
				var log strings.Builder
				evs, _ := sup.log.Since(0)
				for _, ev := range evs {
					log.WriteString("\n  " + ev.Kind + " " + ev.Unit + " " + ev.Detail)
				}
				t.Fatalf("iter %d: registry = %d entries after upgrade, want 4; events:%s",
					i, reg.Len(), log.String())
			}
			// Close must terminate even when called right after a cycle —
			// newTestSup's Cleanup does it, but do it eagerly so a hang
			// fails THIS iteration's clock, not the test deadline.
			sup.Close()
		}()
	}
}
