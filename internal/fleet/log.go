package fleet

import (
	"sync"
	"time"

	"harness2/internal/events"
	"harness2/internal/wire"
)

// Event kinds recorded in the fleet log — the canonical history of the
// control plane.
const (
	EvEnroll  = "enroll"  // runner box enrolled
	EvDeploy  = "deploy"  // deployment accepted
	EvSpawn   = "spawn"   // unit job submitted to a box
	EvServing = "serving" // unit up: components deployed, registrations live
	EvCrash   = "crash"   // unit exited without being asked to
	EvRestart = "restart" // supervisor respawning after backoff
	EvStop    = "stop"    // unit stopped gracefully (deregistered)
	EvFail    = "fail"    // restart limit hit; unit left down
	EvDrain   = "drain"   // box drain initiated
	EvMigrate = "migrate" // component live-migrated between units
	EvUpgrade = "upgrade" // rolling upgrade step
)

// Event is one fleet state change. The log is append-only and totally
// ordered by Seq; clients reattach by replaying Since(lastSeen).
type Event struct {
	Seq        int64         `json:"seq"`
	Time       time.Time     `json:"time"`
	Kind       string        `json:"kind"`
	Deployment string        `json:"deployment,omitempty"`
	Unit       string        `json:"unit,omitempty"`
	Box        string        `json:"box,omitempty"`
	Detail     string        `json:"detail,omitempty"`
	Err        string        `json:"err,omitempty"`
	Elapsed    time.Duration `json:"elapsed_ns,omitempty"`
}

// Log is the supervisor's canonical append-only event log. A bounded
// ring keeps memory flat under years of churn; Since reports truncation
// so a reattaching client knows it missed history.
type Log struct {
	mu    sync.Mutex
	seq   int64
	ring  []Event
	cap   int
	first int64 // seq of the oldest retained event
	// bridge, when set, republishes every event on the Harness event
	// manager under "fleet.<kind>" — Figure 2's general event management
	// leveraged by the control plane itself.
	bridge *events.Service
	source string
}

// DefaultLogCap bounds retained events.
const DefaultLogCap = 4096

// NewLog returns an empty log retaining up to cap events (<=0 means
// DefaultLogCap).
func NewLog(cap int) *Log {
	if cap <= 0 {
		cap = DefaultLogCap
	}
	return &Log{cap: cap, first: 1}
}

// Bridge republishes every appended event into svc on topic
// "fleet.<kind>" with unit/box/deployment in the payload. Call before
// traffic flows.
func (l *Log) Bridge(svc *events.Service, source string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.bridge = svc
	l.source = source
}

// Append stamps and stores ev, returning its sequence number.
func (l *Log) Append(ev Event) int64 {
	l.mu.Lock()
	l.seq++
	ev.Seq = l.seq
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	if len(l.ring) >= l.cap {
		// Drop the oldest half in one slide; amortised O(1) per append.
		n := l.cap / 2
		l.ring = append(l.ring[:0], l.ring[n:]...)
		l.first += int64(n)
	}
	l.ring = append(l.ring, ev)
	bridge, source := l.bridge, l.source
	l.mu.Unlock()
	if bridge != nil {
		bridge.Publish(events.Event{
			Topic:  "fleet." + ev.Kind,
			Source: source,
			Payload: wire.Args(
				"deployment", ev.Deployment,
				"unit", ev.Unit,
				"box", ev.Box,
				"detail", ev.Detail,
			),
		})
	}
	return ev.Seq
}

// Since returns events with Seq > after, in order, and whether the log
// still retains event after+1 (false means the client missed history to
// truncation).
func (l *Log) Since(after int64) ([]Event, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	contiguous := after+1 >= l.first
	start := after + 1
	if start < l.first {
		start = l.first
	}
	idx := int(start - l.first)
	if idx >= len(l.ring) {
		return nil, contiguous
	}
	out := append([]Event(nil), l.ring[idx:]...)
	return out, contiguous
}

// Seq returns the latest assigned sequence number.
func (l *Log) Seq() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}
