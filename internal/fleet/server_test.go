package fleet

import (
	"strings"
	"testing"
	"time"

	"harness2/internal/registry"
	"harness2/internal/telemetry"
)

// TestControlProtocolEndToEnd drives the full client → HTTP → supervisor
// loop: deploy with wait, state, attach, kill + automatic restart,
// reattach with the event tail, log reads, graceful stop.
func TestControlProtocolEndToEnd(t *testing.T) {
	reg := registry.New()
	tel := telemetry.New()
	sup := newTestSup(t, Config{
		Launcher:  NewSimLauncher(&SimLauncherConfig{Registry: reg}),
		Telemetry: tel,
	}, testBox("a", nil), testBox("b", nil))
	srv, err := NewServer(sup, "", tel)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	cl := NewClient(srv.Addr())
	ctx := ctxT(t, 20*time.Second)

	// Deploy and block until both replicas serve.
	dep, units, err := cl.Deploy(ctx, "deploy web\nreplicas 2\ncomponent MatMul\n"+fastRestart, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dep != "web" || len(units) != 2 {
		t.Fatalf("deploy reply %q %v", dep, units)
	}
	st, err := cl.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Boxes) != 2 || len(st.Deployments) != 1 {
		t.Fatalf("state: %d boxes %d deployments", len(st.Boxes), len(st.Deployments))
	}

	// Attach: endpoints plus this unit's history.
	ust, evs, err := cl.Attach(ctx, units[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if ust.State != "serving" || ust.Endpoints["local"] == "" {
		t.Fatalf("attach: %+v", ust)
	}
	if len(evs) == 0 {
		t.Fatal("attach returned no events")
	}
	seen := ust // remember for reattach
	lastSeq := evs[len(evs)-1].Seq

	// Kill → the daemon restarts it; reattach picks up the crash story.
	if err := cl.Kill(ctx, units[0]); err != nil {
		t.Fatal(err)
	}
	pollUnit(t, sup, units[0], "restart", func(u UnitStatus) bool {
		return u.State == "serving" && u.Restarts >= 1
	})
	ust, evs, err = cl.Attach(ctx, units[0], lastSeq)
	if err != nil {
		t.Fatal(err)
	}
	if ust.ID != seen.ID {
		t.Fatalf("reattached to %s, want %s", ust.ID, seen.ID)
	}
	var kinds []string
	for _, ev := range evs {
		kinds = append(kinds, ev.Kind)
	}
	joined := strings.Join(kinds, ",")
	for _, want := range []string{EvCrash, EvRestart, EvServing} {
		if !strings.Contains(joined, want) {
			t.Fatalf("reattach tail %s missing %q", joined, want)
		}
	}

	// Full log read is contiguous from zero (nothing truncated yet).
	all, contiguous, err := cl.Log(ctx, 0)
	if err != nil || !contiguous || len(all) == 0 {
		t.Fatalf("log: %d events contiguous=%v err=%v", len(all), contiguous, err)
	}

	// Rolling upgrade over the control channel.
	if err := cl.Upgrade(ctx, "web", "deploy web\nreplicas 2\ncomponent MatMul\nversion v2\n"+fastRestart); err != nil {
		t.Fatal(err)
	}
	st, _ = cl.State(ctx)
	if st.Deployments[0].Version != "v2" {
		t.Fatalf("version after upgrade %q", st.Deployments[0].Version)
	}

	// Drain one box over the control channel.
	if err := cl.Drain(ctx, "a"); err != nil {
		t.Fatal(err)
	}

	// Graceful stop of the whole deployment.
	if err := cl.StopDeployment(ctx, "web"); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 0 {
		t.Fatalf("registry = %d entries after stop, want 0", reg.Len())
	}

	// Error mapping: unknown names are 404-backed errors.
	if err := cl.Kill(ctx, "ghost"); err == nil || !strings.Contains(err.Error(), "no unit") {
		t.Fatalf("kill ghost: %v", err)
	}
	if err := cl.Drain(ctx, "ghost"); err == nil || !strings.Contains(err.Error(), "no box") {
		t.Fatalf("drain ghost: %v", err)
	}
	if _, _, err := cl.Deploy(ctx, "deploy !\nbogus\n", 0); err == nil {
		t.Fatal("bogus descriptor accepted")
	}
}
