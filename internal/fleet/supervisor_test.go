package fleet

import (
	"context"
	"strings"
	"testing"
	"time"

	"harness2/internal/dvm"
	"harness2/internal/events"
	"harness2/internal/registry"
	"harness2/internal/runnerbox"
	"harness2/internal/simnet"
	"harness2/internal/telemetry"
	"harness2/internal/wire"
)

// fastRestart keeps crash-recovery tests quick and bounded.
var fastRestart = "restart backoff=2ms max=10ms limit=8\n"

func testBox(name string, labels map[string]string) BoxInfo {
	return BoxInfo{
		Name:   name,
		Box:    runnerbox.New(runnerbox.NewLocalBackend()),
		Labels: labels,
	}
}

func newTestSup(t *testing.T, cfg Config, boxes ...BoxInfo) *Supervisor {
	t.Helper()
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.New()
	}
	if cfg.SpawnTimeout == 0 {
		cfg.SpawnTimeout = 5 * time.Second
	}
	sup, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sup.Close() })
	for _, b := range boxes {
		if err := sup.Enroll(b); err != nil {
			t.Fatal(err)
		}
	}
	return sup
}

func ctxT(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// pollUnit waits until pred holds for the unit's status.
func pollUnit(t *testing.T, sup *Supervisor, id string, what string, pred func(UnitStatus) bool) UnitStatus {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var last UnitStatus
	for time.Now().Before(deadline) {
		st, _, err := sup.Attach(id, 0)
		if err == nil {
			last = st
			if pred(st) {
				return st
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("unit %s never reached %s; last %+v", id, what, last)
	return last
}

func TestDeployPlacesByConstraintAndServes(t *testing.T) {
	reg := registry.New()
	sup := newTestSup(t, Config{Launcher: NewSimLauncher(&SimLauncherConfig{Registry: reg})},
		testBox("eu-1", map[string]string{"zone": "eu"}),
		testBox("us-1", map[string]string{"zone": "us"}),
	)
	d, err := ParseDescriptor("deploy web\nreplicas 2\ncomponent MatMul,FleetCounter\nrequire label.zone=eu\n")
	if err != nil {
		t.Fatal(err)
	}
	ids, err := sup.Deploy(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("got %d units, want 2", len(ids))
	}
	if err := sup.WaitServing(ctxT(t, 5*time.Second), "web", 2); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		st, _, err := sup.Attach(id, 0)
		if err != nil {
			t.Fatal(err)
		}
		if st.Box != "eu-1" {
			t.Fatalf("unit %s placed on %s, want eu-1 (constraint)", id, st.Box)
		}
		if st.State != "serving" {
			t.Fatalf("unit %s state %s", id, st.State)
		}
	}
	// Each unit lease-published both components under deterministic keys.
	if reg.Len() != 4 {
		t.Fatalf("registry holds %d entries, want 4", reg.Len())
	}
	if _, ok := reg.Get(ids[0] + "::matmul"); !ok {
		t.Fatalf("missing deterministic key %s::matmul", ids[0])
	}

	// Duplicate deployment names are refused; impossible constraints too.
	if _, err := sup.Deploy(d); err == nil {
		t.Fatal("duplicate deployment accepted")
	}
	d2, _ := ParseDescriptor("deploy mars\ncomponent MatMul\nrequire label.zone=mars\n")
	if _, err := sup.Deploy(d2); err == nil || !strings.Contains(err.Error(), "no enrolled box") {
		t.Fatalf("impossible constraint: %v", err)
	}
}

func TestLeastLoadedSpread(t *testing.T) {
	reg := registry.New()
	sup := newTestSup(t, Config{Launcher: NewSimLauncher(&SimLauncherConfig{Registry: reg})},
		testBox("a", nil), testBox("b", nil),
	)
	d, _ := ParseDescriptor("deploy web\nreplicas 4\ncomponent MatMul\n")
	ids, err := sup.Deploy(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.WaitServing(ctxT(t, 5*time.Second), "web", 4); err != nil {
		t.Fatal(err)
	}
	perBox := map[string]int{}
	for _, id := range ids {
		st, _, _ := sup.Attach(id, 0)
		perBox[st.Box]++
	}
	if perBox["a"] != 2 || perBox["b"] != 2 {
		t.Fatalf("placement %v, want 2+2", perBox)
	}
}

// TestCrashRestartRecoversLease is the heart of the subsystem: an abrupt
// kill leaves the registration dangling, the supervisor detects the
// crash, restarts with backoff, and the restarted unit republishes under
// the same key — the registry never returns a failed find and never
// accumulates duplicates.
func TestCrashRestartRecoversLease(t *testing.T) {
	reg := registry.New()
	sup := newTestSup(t, Config{Launcher: NewSimLauncher(&SimLauncherConfig{Registry: reg})},
		testBox("a", nil),
	)
	d, err := ParseDescriptor("deploy web\ncomponent FleetCounter\nlease 30s\n" + fastRestart)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := sup.Deploy(d)
	if err != nil {
		t.Fatal(err)
	}
	unit := ids[0]
	if err := sup.WaitServing(ctxT(t, 5*time.Second), "web", 1); err != nil {
		t.Fatal(err)
	}
	key := unit + "::fleetcounter"
	if _, ok := reg.Get(key); !ok {
		t.Fatalf("no registration at %s", key)
	}

	if err := sup.Kill(unit); err != nil {
		t.Fatal(err)
	}
	// While the supervisor recovers, the find must keep succeeding: the
	// crashed unit's lease dangles until the restart replaces it.
	deadline := time.Now().Add(5 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		if _, ok := reg.Get(key); !ok {
			t.Fatal("find failed during recovery: registration vanished")
		}
		if st, _, _ := sup.Attach(unit, 0); st.State == "serving" && st.Restarts >= 1 {
			recovered = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !recovered {
		t.Fatal("unit never recovered from the kill")
	}
	if reg.Len() != 1 {
		t.Fatalf("registry holds %d entries after recovery, want 1 (replaced, not duplicated)", reg.Len())
	}
	// The canonical log recorded the whole arc.
	evs, _ := sup.Log().Since(0)
	var kinds []string
	for _, ev := range evs {
		if ev.Unit == unit {
			kinds = append(kinds, ev.Kind)
		}
	}
	joined := strings.Join(kinds, ",")
	for _, want := range []string{EvSpawn, EvServing, EvCrash, EvRestart} {
		if !strings.Contains(joined, want) {
			t.Fatalf("log %s missing %q", joined, want)
		}
	}
}

func TestSpawnFailuresExhaustRestartBudget(t *testing.T) {
	reg := registry.New()
	sup := newTestSup(t, Config{
		Launcher: NewSimLauncher(&SimLauncherConfig{Registry: reg, FailFirst: 1 << 30}),
	}, testBox("a", nil))
	d, _ := ParseDescriptor("deploy doomed\ncomponent MatMul\nrestart backoff=1ms max=2ms limit=3\n")
	ids, err := sup.Deploy(d)
	if err != nil {
		t.Fatal(err)
	}
	err = sup.WaitServing(ctxT(t, 5*time.Second), "doomed", 1)
	if err == nil || !strings.Contains(err.Error(), "no restartable units") {
		t.Fatalf("WaitServing = %v, want terminal-units error", err)
	}
	st := pollUnit(t, sup, ids[0], "failed", func(st UnitStatus) bool { return st.State == "failed" })
	if st.Consecutive != 3 {
		t.Fatalf("consecutive crashes = %d, want 3 (the limit)", st.Consecutive)
	}
	evs, _ := sup.Log().Since(0)
	var failed bool
	for _, ev := range evs {
		failed = failed || ev.Kind == EvFail
	}
	if !failed {
		t.Fatal("no fail event logged")
	}
}

func TestSpawnFailureThenRecovery(t *testing.T) {
	reg := registry.New()
	sup := newTestSup(t, Config{
		Launcher: NewSimLauncher(&SimLauncherConfig{Registry: reg, FailFirst: 2}),
	}, testBox("a", nil))
	d, _ := ParseDescriptor("deploy web\ncomponent MatMul\n" + fastRestart)
	ids, err := sup.Deploy(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.WaitServing(ctxT(t, 5*time.Second), "web", 1); err != nil {
		t.Fatal(err)
	}
	st, _, _ := sup.Attach(ids[0], 0)
	if st.Restarts < 2 {
		t.Fatalf("restarts = %d, want >= 2 (two failed launches)", st.Restarts)
	}
	if st.Consecutive != 0 {
		t.Fatalf("consecutive = %d after a healthy serve, want 0", st.Consecutive)
	}
}

func TestGracefulStopReleasesLeases(t *testing.T) {
	reg := registry.New()
	sup := newTestSup(t, Config{Launcher: NewSimLauncher(&SimLauncherConfig{Registry: reg})},
		testBox("a", nil))
	d, _ := ParseDescriptor("deploy web\nreplicas 2\ncomponent MatMul,WSTime\nlease 30s\n")
	ids, err := sup.Deploy(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.WaitServing(ctxT(t, 5*time.Second), "web", 2); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 4 {
		t.Fatalf("registry = %d entries, want 4", reg.Len())
	}
	// Stop one unit: its two registrations are released immediately (not
	// left to lease expiry — these leases run 30s), and it stays stopped.
	if err := sup.StopUnit(ctxT(t, 5*time.Second), ids[0]); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 2 {
		t.Fatalf("registry = %d entries after stop, want 2", reg.Len())
	}
	time.Sleep(20 * time.Millisecond)
	if st, _, _ := sup.Attach(ids[0], 0); st.State != "stopped" {
		t.Fatalf("stopped unit restarted into %s", st.State)
	}
	// Stop the whole deployment: registry fully drained.
	if err := sup.StopDeployment(ctxT(t, 5*time.Second), "web"); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 0 {
		t.Fatalf("registry = %d entries after deployment stop, want 0", reg.Len())
	}
}

func TestRollingUpgrade(t *testing.T) {
	reg := registry.New()
	sup := newTestSup(t, Config{Launcher: NewSimLauncher(&SimLauncherConfig{Registry: reg})},
		testBox("a", nil), testBox("b", nil))
	d, _ := ParseDescriptor("deploy web\nreplicas 2\ncomponent MatMul\nversion v1\n")
	ids, err := sup.Deploy(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.WaitServing(ctxT(t, 5*time.Second), "web", 2); err != nil {
		t.Fatal(err)
	}
	d2, _ := ParseDescriptor("deploy web\nreplicas 2\ncomponent MatMul,WSTime\nversion v2\n")
	if err := sup.Upgrade(ctxT(t, 10*time.Second), d2); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		st, _, _ := sup.Attach(id, 0)
		if st.State != "serving" || st.Generation != 1 {
			t.Fatalf("unit %s after upgrade: state=%s gen=%d", id, st.State, st.Generation)
		}
	}
	// New descriptor took effect: each unit now publishes two components.
	if reg.Len() != 4 {
		t.Fatalf("registry = %d entries after upgrade, want 4", reg.Len())
	}
	var version string
	for _, dep := range sup.State().Deployments {
		if dep.Name == "web" {
			version = dep.Version
		}
	}
	if version != "v2" {
		t.Fatalf("deployment version %q, want v2", version)
	}
}

// TestUpgradeReconcilesReplicas: the upgrade descriptor's replica count
// is authoritative — rolling to a smaller count stops the surplus
// units, rolling back up spawns fresh ones under the new descriptor.
func TestUpgradeReconcilesReplicas(t *testing.T) {
	reg := registry.New()
	sup := newTestSup(t, Config{Launcher: NewSimLauncher(&SimLauncherConfig{Registry: reg})},
		testBox("a", nil), testBox("b", nil))
	d, _ := ParseDescriptor("deploy web\nreplicas 3\ncomponent MatMul\nversion v1\n")
	if _, err := sup.Deploy(d); err != nil {
		t.Fatal(err)
	}
	if err := sup.WaitServing(ctxT(t, 5*time.Second), "web", 3); err != nil {
		t.Fatal(err)
	}
	serving := func() int {
		n := 0
		for _, dep := range sup.State().Deployments {
			for _, u := range dep.Units {
				if u.State == "serving" {
					n++
				}
			}
		}
		return n
	}
	down, _ := ParseDescriptor("deploy web\nreplicas 1\ncomponent MatMul\nversion v2\n")
	if err := sup.Upgrade(ctxT(t, 10*time.Second), down); err != nil {
		t.Fatal(err)
	}
	if got := serving(); got != 1 {
		t.Fatalf("serving units after scale-down upgrade = %d, want 1", got)
	}
	if reg.Len() != 1 {
		t.Fatalf("registry = %d entries after scale-down, want 1", reg.Len())
	}
	up, _ := ParseDescriptor("deploy web\nreplicas 2\ncomponent MatMul,WSTime\nversion v3\n")
	if err := sup.Upgrade(ctxT(t, 10*time.Second), up); err != nil {
		t.Fatal(err)
	}
	if got := serving(); got != 2 {
		t.Fatalf("serving units after scale-up upgrade = %d, want 2", got)
	}
	// Both live units run the v3 component set: two components each.
	if reg.Len() != 4 {
		t.Fatalf("registry = %d entries after scale-up, want 4", reg.Len())
	}
}

// TestDrainLiveMigratesState: draining a box spawns a replacement unit
// elsewhere, live-migrates stateful components that do not collide (the
// dynamically deployed counter keeps its total), skips baseline
// components that exist on every replica (ErrMigrateCollision), and
// stops the old unit gracefully.
func TestDrainLiveMigratesState(t *testing.T) {
	reg := registry.New()
	sup := newTestSup(t, Config{Launcher: NewSimLauncher(&SimLauncherConfig{Registry: reg})},
		testBox("a", nil), testBox("b", nil))
	d, _ := ParseDescriptor("deploy web\ncomponent MatMul,FleetCounter\n")
	ids, err := sup.Deploy(d)
	if err != nil {
		t.Fatal(err)
	}
	old := ids[0]
	if err := sup.WaitServing(ctxT(t, 5*time.Second), "web", 1); err != nil {
		t.Fatal(err)
	}
	st, _, _ := sup.Attach(old, 0)
	if st.Box != "a" {
		t.Fatalf("unit on %s, want a (name-ordered tie break)", st.Box)
	}

	// Accumulate state: bump the baseline counter and deploy a second,
	// uniquely named counter (the one that must migrate).
	sup.mu.Lock()
	u := sup.units[old]
	sup.mu.Unlock()
	u.mu.Lock()
	c := u.node.Container()
	u.mu.Unlock()
	ctx := ctxT(t, 5*time.Second)
	if _, err := c.Invoke(ctx, "fleetcounter", "inc", wire.Args("by", int64(3))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Deploy(CounterClass, "counter-7"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(ctx, "counter-7", "inc", wire.Args("by", int64(7))); err != nil {
		t.Fatal(err)
	}

	if err := sup.Drain(ctxT(t, 10*time.Second), "a"); err != nil {
		t.Fatal(err)
	}
	// The old unit is stopped; a replacement serves on box b.
	if st, _, _ := sup.Attach(old, 0); st.State != "stopped" {
		t.Fatalf("drained unit state %s, want stopped", st.State)
	}
	var repl UnitStatus
	for _, dep := range sup.State().Deployments {
		for _, ust := range dep.Units {
			if ust.ID != old && ust.State == "serving" {
				repl = ust
			}
		}
	}
	if repl.ID == "" || repl.Box != "b" {
		t.Fatalf("no serving replacement on b: %+v", repl)
	}
	sup.mu.Lock()
	ru := sup.units[repl.ID]
	sup.mu.Unlock()
	ru.mu.Lock()
	rc := ru.node.Container()
	ru.mu.Unlock()
	// The unique counter migrated with its state.
	out, err := rc.Invoke(ctx, "counter-7", "total", nil)
	if err != nil {
		t.Fatalf("migrated counter gone: %v", err)
	}
	if total, _ := wire.GetArg(out, "total"); total.(int64) != 7 {
		t.Fatalf("migrated total = %v, want 7", total)
	}
	// The baseline counter collided and was skipped: the replacement's
	// own fresh instance remains untouched.
	out, err = rc.Invoke(ctx, "fleetcounter", "total", nil)
	if err != nil {
		t.Fatal(err)
	}
	if total, _ := wire.GetArg(out, "total"); total.(int64) != 0 {
		t.Fatalf("baseline total = %v, want 0 (collision skip)", total)
	}
	evs, _ := sup.Log().Since(0)
	var migrated, skipped bool
	for _, ev := range evs {
		if ev.Kind == EvMigrate {
			migrated = migrated || strings.Contains(ev.Detail, "counter-7 ->")
			skipped = skipped || strings.Contains(ev.Detail, "skipped")
		}
	}
	if !migrated || !skipped {
		t.Fatalf("migrate events incomplete: migrated=%v skipped=%v", migrated, skipped)
	}
	// The drained box accepts no further placements.
	d2, _ := ParseDescriptor("deploy web2\ncomponent MatMul\n")
	ids2, err := sup.Deploy(d2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.WaitServing(ctxT(t, 5*time.Second), "web2", 1); err != nil {
		t.Fatal(err)
	}
	if st, _, _ := sup.Attach(ids2[0], 0); st.Box != "b" {
		t.Fatalf("post-drain placement on %s, want b", st.Box)
	}
}

// TestDVMAutoEnroll: serving units join the DVM, crashes re-enroll after
// recovery, graceful stops withdraw.
func TestDVMAutoEnroll(t *testing.T) {
	reg := registry.New()
	vm := dvm.New("fleet-dvm", dvm.NewFullSync(simnet.New(simnet.LAN)))
	svc := events.New()
	sub := svc.Subscribe("fleet.crash", 16)
	sup := newTestSup(t, Config{
		Launcher: NewSimLauncher(&SimLauncherConfig{Registry: reg}),
		DVM:      vm,
		Events:   svc,
	}, testBox("a", nil))
	d, _ := ParseDescriptor("deploy web\ncomponent MatMul\n" + fastRestart)
	ids, err := sup.Deploy(d)
	if err != nil {
		t.Fatal(err)
	}
	unit := ids[0]
	if err := sup.WaitServing(ctxT(t, 5*time.Second), "web", 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := vm.Node(unit); !ok {
		t.Fatalf("unit %s not enrolled in DVM; members %v", unit, vm.Nodes())
	}
	if err := sup.Kill(unit); err != nil {
		t.Fatal(err)
	}
	pollUnit(t, sup, unit, "recovery", func(st UnitStatus) bool {
		return st.State == "serving" && st.Restarts >= 1
	})
	if _, ok := vm.Node(unit); !ok {
		t.Fatal("recovered unit not re-enrolled in DVM")
	}
	// The crash was bridged onto the general event manager.
	select {
	case ev := <-sub.C:
		if ev.Topic != "fleet.crash" {
			t.Fatalf("bridged topic %s", ev.Topic)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no fleet.crash event bridged")
	}
	if err := sup.StopUnit(ctxT(t, 5*time.Second), unit); err != nil {
		t.Fatal(err)
	}
	if _, ok := vm.Node(unit); ok {
		t.Fatal("stopped unit still enrolled in DVM")
	}
}
