package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"harness2/internal/container"
	"harness2/internal/dvm"
	"harness2/internal/events"
	"harness2/internal/runnerbox"
	"harness2/internal/telemetry"
)

// UnitState is the supervisor's view of one node's lifecycle.
type UnitState int

// Unit lifecycle: Starting (spawn in flight) → Serving; crashes move
// through Crashed → Restarting → Starting; graceful paths end in Stopped
// and exhausted restart budgets in Failed.
const (
	Starting UnitState = iota
	Serving
	Crashed
	Restarting
	Stopped
	Failed
)

// String names the state.
func (s UnitState) String() string {
	switch s {
	case Starting:
		return "starting"
	case Serving:
		return "serving"
	case Crashed:
		return "crashed"
	case Restarting:
		return "restarting"
	case Stopped:
		return "stopped"
	case Failed:
		return "failed"
	}
	return "unknown"
}

// BoxInfo describes one enrolled runner box: the resource abstraction
// layer enriched with the inventory attributes target descriptors match
// against (Dearle et al.'s resource descriptions).
type BoxInfo struct {
	Name    string
	Backend string
	Slots   int
	Labels  map[string]string
	// Box is the live runner box jobs are submitted to.
	Box *runnerbox.Box
}

// registrar is the command-installation surface every shipped runnerbox
// backend provides (they all embed LocalBackend).
type registrar interface {
	Register(name string, cmd runnerbox.Command)
}

// UnitRef hands a launcher the identity and registration parameters of
// the unit it is instantiating.
type UnitRef struct {
	ID         string
	Deployment string
	Box        string
	Generation int
}

// UnitNode is a launched unit as the supervisor sees it: advertised
// access points, the hosted container (for drain/live-migrate; may be
// nil for virtual launchers), and a shutdown switch. Shutdown(true) is
// the graceful path — deregister from every registry, release leases —
// while Shutdown(false) models a crash cleanup: listeners close but
// registrations are abandoned to dangle until their leases expire.
type UnitNode interface {
	Endpoints() map[string]string
	Container() *container.Container
	Shutdown(graceful bool) error
}

// Launcher instantiates the node a unit supervises. It runs inside the
// unit's runner-box job: ctx is the job context and is cancelled when
// the job is killed. Launch returns once the node is serving (components
// deployed, registrations published).
type Launcher func(ctx context.Context, u UnitRef, d Descriptor) (UnitNode, error)

// Config parameterises a Supervisor.
type Config struct {
	// Name identifies the daemon (event source, telemetry labels).
	Name string
	// Launcher instantiates units; required.
	Launcher Launcher
	// DVM, when non-nil, auto-enrolls every serving unit's container as a
	// DVM member and withdraws it on crash or stop.
	DVM *dvm.DVM
	// Events, when non-nil, receives every log event on "fleet.<kind>".
	Events *events.Service
	// Telemetry selects the metrics registry; nil falls back to the
	// process default.
	Telemetry *telemetry.Registry
	// SpawnTimeout bounds one launch attempt (default 30s).
	SpawnTimeout time.Duration
	// LogCap bounds the event log (default DefaultLogCap).
	LogCap int
	// Seed fixes the restart-jitter RNG for deterministic tests.
	Seed int64
}

// Supervisor is the per-box deployment daemon: it owns the runner-box
// inventory, places target descriptors, supervises the spawned units,
// and writes the canonical event log.
type Supervisor struct {
	cfg Config
	log *Log

	met struct {
		boxes      *telemetry.Gauge
		units      *telemetry.GaugeVec
		deploys    *telemetry.Counter
		spawns     *telemetry.Counter
		crashes    *telemetry.Counter
		restarts   *telemetry.Counter
		migrations *telemetry.Counter
		spawnNs    *telemetry.Histogram
		recoveryNs *telemetry.Histogram
	}

	mu          sync.Mutex
	rng         *rand.Rand
	boxes       map[string]*boxState
	deployments map[string]*deployment
	units       map[string]*unit
	seq         int
	closed      bool
	closeCh     chan struct{}
	wg          sync.WaitGroup
	serveCond   *sync.Cond
}

type boxState struct {
	info     BoxInfo
	draining bool
	units    map[string]*unit
}

type deployment struct {
	name string
	desc Descriptor
	// units in placement order; stopped units are retained for history.
	units []*unit
}

// unit is one supervised node.
type unit struct {
	id         string
	deployment string

	mu          sync.Mutex
	box         *boxState
	state       UnitState
	gen         int
	jobID       string
	node        UnitNode
	endpoints   map[string]string
	restarts    int
	consecutive int
	lastErr     string
	since       time.Time
	// stopCh signals the in-flight job to shut down gracefully; a fresh
	// channel per attempt.
	stopCh   chan struct{}
	stopping bool
	cycle    bool
}

// New creates a Supervisor. The Launcher is required.
func New(cfg Config) (*Supervisor, error) {
	if cfg.Launcher == nil {
		return nil, fmt.Errorf("fleet: Config.Launcher is required")
	}
	if cfg.Name == "" {
		cfg.Name = "hfleet"
	}
	if cfg.SpawnTimeout <= 0 {
		cfg.SpawnTimeout = 30 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	s := &Supervisor{
		cfg:         cfg,
		log:         NewLog(cfg.LogCap),
		rng:         rand.New(rand.NewSource(seed)),
		boxes:       make(map[string]*boxState),
		deployments: make(map[string]*deployment),
		units:       make(map[string]*unit),
		closeCh:     make(chan struct{}),
	}
	s.serveCond = sync.NewCond(&s.mu)
	if cfg.Events != nil {
		s.log.Bridge(cfg.Events, cfg.Name)
	}
	tel := telemetry.Or(cfg.Telemetry)
	tel.Help("harness_fleet_boxes", "enrolled runner boxes")
	tel.Help("harness_fleet_units", "supervised units by state")
	tel.Help("harness_fleet_deploys_total", "accepted deploy descriptors")
	tel.Help("harness_fleet_spawns_total", "unit spawn attempts")
	tel.Help("harness_fleet_crashes_total", "unit crashes detected")
	tel.Help("harness_fleet_restarts_total", "automatic restarts")
	tel.Help("harness_fleet_migrations_total", "components live-migrated by drains")
	tel.Help("harness_fleet_spawn_ns", "spawn-to-serving latency")
	tel.Help("harness_fleet_recovery_ns", "crash-to-serving recovery latency")
	fixed := []string{"daemon", cfg.Name}
	s.met.boxes = tel.Gauge("harness_fleet_boxes", fixed...)
	s.met.units = tel.GaugeVec("harness_fleet_units", "state", fixed...)
	s.met.deploys = tel.Counter("harness_fleet_deploys_total", fixed...)
	s.met.spawns = tel.Counter("harness_fleet_spawns_total", fixed...)
	s.met.crashes = tel.Counter("harness_fleet_crashes_total", fixed...)
	s.met.restarts = tel.Counter("harness_fleet_restarts_total", fixed...)
	s.met.migrations = tel.Counter("harness_fleet_migrations_total", fixed...)
	s.met.spawnNs = tel.Histogram("harness_fleet_spawn_ns", fixed...)
	s.met.recoveryNs = tel.Histogram("harness_fleet_recovery_ns", fixed...)
	return s, nil
}

// Log returns the supervisor's event log.
func (s *Supervisor) Log() *Log { return s.log }

// Enroll adds a runner box to the inventory. The box's backend must
// support command registration (every shipped backend does).
func (s *Supervisor) Enroll(info BoxInfo) error {
	if info.Name == "" || info.Box == nil {
		return fmt.Errorf("fleet: enrollment needs a name and a live box")
	}
	if _, ok := info.Box.Backend().(registrar); !ok {
		return fmt.Errorf("fleet: backend %q cannot register commands", info.Box.Backend().Name())
	}
	if info.Backend == "" {
		info.Backend = info.Box.Backend().Name()
	}
	if info.Slots == 0 {
		info.Slots = info.Box.Backend().Slots()
	}
	s.mu.Lock()
	if _, dup := s.boxes[info.Name]; dup {
		s.mu.Unlock()
		return fmt.Errorf("fleet: box %q already enrolled", info.Name)
	}
	s.boxes[info.Name] = &boxState{info: info, units: make(map[string]*unit)}
	n := len(s.boxes)
	s.mu.Unlock()
	s.met.boxes.Set(int64(n))
	s.log.Append(Event{Kind: EvEnroll, Box: info.Name,
		Detail: fmt.Sprintf("backend=%s slots=%d", info.Backend, info.Slots)})
	return nil
}

// matchBoxes returns non-draining boxes satisfying every constraint,
// least-loaded first (ties by name for determinism).
func (s *Supervisor) matchBoxesLocked(cs []Constraint) []*boxState {
	var out []*boxState
	for _, b := range s.boxes {
		if b.draining {
			continue
		}
		ok := true
		for _, c := range cs {
			if !c.Matches(b.info) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].units) != len(out[j].units) {
			return len(out[i].units) < len(out[j].units)
		}
		return out[i].info.Name < out[j].info.Name
	})
	return out
}

// Deploy accepts a target descriptor: constraints are matched against
// the box inventory, replicas placed least-loaded-first, and one
// supervised unit spawned per replica. It returns the assigned unit IDs
// without waiting for them to serve (see WaitServing).
func (s *Supervisor) Deploy(d Descriptor) ([]string, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	d = d.normalized()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("fleet: supervisor closed")
	}
	if _, dup := s.deployments[d.Name]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("fleet: deployment %q already exists", d.Name)
	}
	eligible := s.matchBoxesLocked(d.Constraints)
	if len(eligible) == 0 {
		s.mu.Unlock()
		return nil, fmt.Errorf("fleet: no enrolled box satisfies %v", d.Constraints)
	}
	dep := &deployment{name: d.Name, desc: d}
	s.deployments[d.Name] = dep
	ids := make([]string, 0, d.Replicas)
	var spawned []*unit
	for i := 0; i < d.Replicas; i++ {
		// Re-rank each placement so replicas spread by live load.
		boxes := s.matchBoxesLocked(d.Constraints)
		box := boxes[0]
		s.seq++
		u := &unit{
			id:         fmt.Sprintf("%s-%d", d.Name, s.seq),
			deployment: d.Name,
			box:        box,
			state:      Starting,
			since:      time.Now(),
		}
		box.units[u.id] = u
		s.units[u.id] = u
		dep.units = append(dep.units, u)
		ids = append(ids, u.id)
		spawned = append(spawned, u)
	}
	s.mu.Unlock()

	s.met.deploys.Inc()
	s.log.Append(Event{Kind: EvDeploy, Deployment: d.Name,
		Detail: fmt.Sprintf("replicas=%d components=%v constraints=%v", d.Replicas, d.Components, d.Constraints)})
	for _, u := range spawned {
		s.met.units.With(Starting.String()).Inc()
		s.wg.Add(1)
		go s.runUnit(u)
	}
	return ids, nil
}

// deploymentDesc snapshots the current descriptor of a deployment.
func (s *Supervisor) deploymentDesc(name string) (Descriptor, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dep, ok := s.deployments[name]
	if !ok {
		return Descriptor{}, false
	}
	return dep.desc, true
}

// setState moves a unit between states, maintaining the per-state gauge
// and waking WaitServing waiters.
func (s *Supervisor) setState(u *unit, to UnitState) {
	u.mu.Lock()
	from := u.state
	u.state = to
	u.since = time.Now()
	u.mu.Unlock()
	if from != to {
		s.met.units.With(from.String()).Dec()
		s.met.units.With(to.String()).Inc()
	}
	s.mu.Lock()
	s.serveCond.Broadcast()
	s.mu.Unlock()
}

type launchResult struct {
	node UnitNode
	err  error
}

// spawn submits the unit's job to its box and waits until the launcher
// reports serving (or failure/timeout). The job keeps running until it
// is killed (crash semantics) or stopCh closes (graceful shutdown).
func (s *Supervisor) spawn(u *unit, d Descriptor) (UnitNode, error) {
	u.mu.Lock()
	if u.stopping && !u.cycle {
		// A full stop arrived in the window between attempts, when there
		// was no stopCh to signal; abort before launching a job nobody
		// would ever stop. The flag stays set for the caller to consume.
		u.mu.Unlock()
		return nil, errStopRequested
	}
	box := u.box
	stopCh := make(chan struct{})
	u.stopCh = stopCh
	gen := u.gen
	ref := UnitRef{ID: u.id, Deployment: u.deployment, Box: box.info.Name, Generation: gen}
	u.mu.Unlock()

	ready := make(chan launchResult, 1)
	cmd := func(ctx context.Context, args []string) error {
		node, err := s.cfg.Launcher(ctx, ref, d)
		if err != nil {
			ready <- launchResult{err: err}
			return err
		}
		ready <- launchResult{node: node}
		select {
		case <-ctx.Done():
			// Killed: crash semantics. Listeners die with the process
			// model; registrations are abandoned to dangle until their
			// leases expire (the restart recovers them).
			_ = node.Shutdown(false)
			return ctx.Err()
		case <-stopCh:
			// Graceful: deregister everywhere, release leases.
			return node.Shutdown(true)
		}
	}
	box.info.Box.Backend().(registrar).Register(u.id, cmd)
	jobID, cost, err := box.info.Box.Run(u.id, nil)
	if err != nil {
		return nil, err
	}
	u.mu.Lock()
	u.jobID = jobID
	u.mu.Unlock()
	s.met.spawns.Inc()
	s.log.Append(Event{Kind: EvSpawn, Deployment: u.deployment, Unit: u.id,
		Box: box.info.Name, Detail: fmt.Sprintf("job=%s gen=%d spawn-cost=%s", jobID, gen, cost)})

	select {
	case r := <-ready:
		return r.node, r.err
	case <-time.After(s.cfg.SpawnTimeout):
		_ = box.info.Box.Kill(jobID)
		return nil, fmt.Errorf("fleet: unit %s spawn timed out after %s", u.id, s.cfg.SpawnTimeout)
	}
}

// runUnit is the supervision loop: spawn, watch, classify the exit, and
// restart with backoff until stopped, failed, or the supervisor closes.
func (s *Supervisor) runUnit(u *unit) {
	defer s.wg.Done()
	var crashedAt time.Time
	for {
		// A full stop requested between attempts (e.g. during a restart
		// backoff, when no job is live to signal) lands here.
		u.mu.Lock()
		stopped := u.stopping && !u.cycle
		if stopped {
			u.stopping, u.cycle = false, false
		}
		u.mu.Unlock()
		if stopped {
			s.setState(u, Stopped)
			s.log.Append(Event{Kind: EvStop, Deployment: u.deployment, Unit: u.id, Box: u.boxName()})
			s.detachUnit(u)
			return
		}
		d, ok := s.deploymentDesc(u.deployment)
		if !ok {
			return
		}
		d = d.normalized()
		spawnStart := time.Now()
		node, err := s.spawn(u, d)
		if err == nil {
			u.mu.Lock()
			u.node = node
			u.endpoints = node.Endpoints()
			u.consecutive = 0
			u.lastErr = ""
			u.mu.Unlock()
			s.setState(u, Serving)
			s.met.spawnNs.ObserveDuration(time.Since(spawnStart))
			if !crashedAt.IsZero() {
				s.met.recoveryNs.ObserveDuration(time.Since(crashedAt))
				crashedAt = time.Time{}
			}
			s.enrollDVM(node)
			s.log.Append(Event{Kind: EvServing, Deployment: u.deployment, Unit: u.id,
				Box: u.boxName(), Detail: endpointsDetail(node.Endpoints()),
				Elapsed: time.Since(spawnStart)})

			// Watch until the job exits, whatever the reason.
			waitErr := u.box.info.Box.Wait(u.jobID)
			s.withdrawDVM(u.id)
			u.mu.Lock()
			u.node = nil
			u.stopCh = nil
			stopping, cycle := u.stopping, u.cycle
			u.mu.Unlock()
			if stopping {
				if cycle {
					// Upgrade/relocate: relaunch without passing through a
					// terminal state. The state moves to Starting BEFORE the
					// stop flags are consumed, so a cycle-stop caller never
					// observes the old attempt's stale Serving; the flags are
					// re-read at consumption because a concurrent full stop
					// (Close) may have converted the cycle into a terminal
					// stop in the meantime.
					s.setState(u, Starting)
					u.mu.Lock()
					cycle = u.cycle
					u.stopping, u.cycle = false, false
					u.mu.Unlock()
					s.mu.Lock()
					s.serveCond.Broadcast()
					s.mu.Unlock()
					if cycle {
						s.log.Append(Event{Kind: EvStop, Deployment: u.deployment, Unit: u.id,
							Box: u.boxName(), Detail: "cycling"})
						continue
					}
					s.setState(u, Stopped)
					s.log.Append(Event{Kind: EvStop, Deployment: u.deployment, Unit: u.id, Box: u.boxName()})
					s.detachUnit(u)
					return
				}
				u.mu.Lock()
				u.stopping, u.cycle = false, false
				u.mu.Unlock()
				s.setState(u, Stopped)
				s.log.Append(Event{Kind: EvStop, Deployment: u.deployment, Unit: u.id, Box: u.boxName()})
				s.detachUnit(u)
				return
			}
			// Crash: the unit exited without being asked to.
			crashedAt = time.Now()
			s.met.crashes.Inc()
			s.setState(u, Crashed)
			s.log.Append(Event{Kind: EvCrash, Deployment: u.deployment, Unit: u.id,
				Box: u.boxName(), Err: errString(waitErr)})
			u.mu.Lock()
			u.consecutive++
			u.lastErr = errString(waitErr)
			u.mu.Unlock()
		} else {
			// The spawn itself failed.
			u.mu.Lock()
			u.stopCh = nil
			stopping := u.stopping && !u.cycle
			u.stopping, u.cycle = false, false
			if !stopping {
				u.consecutive++
				u.lastErr = errString(err)
			}
			u.mu.Unlock()
			if stopping {
				s.setState(u, Stopped)
				s.log.Append(Event{Kind: EvStop, Deployment: u.deployment, Unit: u.id, Box: u.boxName()})
				s.detachUnit(u)
				return
			}
			crashedAt = time.Now()
			s.met.crashes.Inc()
			s.setState(u, Crashed)
			s.log.Append(Event{Kind: EvCrash, Deployment: u.deployment, Unit: u.id,
				Box: u.boxName(), Err: errString(err), Detail: "spawn failed"})
		}

		u.mu.Lock()
		consecutive := u.consecutive
		u.mu.Unlock()
		if consecutive >= d.Restart.Limit {
			s.setState(u, Failed)
			s.log.Append(Event{Kind: EvFail, Deployment: u.deployment, Unit: u.id,
				Box: u.boxName(), Detail: fmt.Sprintf("restart limit %d hit", d.Restart.Limit)})
			s.detachUnit(u)
			return
		}
		delay := s.backoff(d.Restart, consecutive)
		s.setState(u, Restarting)
		select {
		case <-time.After(delay):
		case <-s.closeCh:
			s.setState(u, Stopped)
			s.detachUnit(u)
			return
		}
		u.mu.Lock()
		u.restarts++
		u.mu.Unlock()
		s.met.restarts.Inc()
		s.log.Append(Event{Kind: EvRestart, Deployment: u.deployment, Unit: u.id,
			Box: u.boxName(), Detail: fmt.Sprintf("attempt %d after %s", consecutive, delay)})
	}
}

// backoff draws the full-jitter sleep for the n-th consecutive crash.
func (s *Supervisor) backoff(p RestartPolicy, n int) time.Duration {
	ceil := p.Backoff << uint(minInt(n-1, 20))
	if ceil > p.Max || ceil <= 0 {
		ceil = p.Max
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Duration(s.rng.Int63n(int64(ceil) + 1))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func endpointsDetail(eps map[string]string) string {
	if len(eps) == 0 {
		return ""
	}
	keys := make([]string, 0, len(eps))
	for k := range eps {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b []byte
	for i, k := range keys {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, (k + "=" + eps[k])...)
	}
	return string(b)
}

// detachUnit removes a terminal unit from its box's live set (it stays
// in the deployment history and the unit index for attach/status).
func (s *Supervisor) detachUnit(u *unit) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if u.box != nil {
		delete(u.box.units, u.id)
	}
	s.serveCond.Broadcast()
}

// enrollDVM adds a serving unit's container to the DVM.
func (s *Supervisor) enrollDVM(node UnitNode) {
	if s.cfg.DVM == nil || node.Container() == nil {
		return
	}
	c := node.Container()
	_ = s.cfg.DVM.RemoveNode(c.Name()) // a restart replaces its old enrollment
	_ = s.cfg.DVM.AddNode(c)
}

// withdrawDVM removes a unit's container from the DVM by unit name.
func (s *Supervisor) withdrawDVM(name string) {
	if s.cfg.DVM == nil {
		return
	}
	_ = s.cfg.DVM.RemoveNode(name)
}

// WaitServing blocks until n units of the deployment are Serving, the
// context expires, or no progress is possible (every unit terminal).
func (s *Supervisor) WaitServing(ctx context.Context, deployment string, n int) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		s.mu.Lock()
		s.serveCond.Broadcast()
		s.mu.Unlock()
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		dep, ok := s.deployments[deployment]
		if !ok {
			return fmt.Errorf("fleet: no deployment %q", deployment)
		}
		serving, terminal := 0, 0
		for _, u := range dep.units {
			switch u.snapshotState() {
			case Serving:
				serving++
			case Stopped, Failed:
				terminal++
			}
		}
		if serving >= n {
			return nil
		}
		if terminal == len(dep.units) && len(dep.units) > 0 {
			return fmt.Errorf("fleet: deployment %q has no restartable units (%d terminal)", deployment, terminal)
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("fleet: waiting for %d/%s serving: %w", n, deployment, err)
		}
		s.serveCond.Wait()
	}
}

func (u *unit) snapshotState() UnitState {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.state
}

func (u *unit) boxName() string {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.box == nil {
		return ""
	}
	return u.box.info.Name
}

// Kill terminates a unit's job abruptly — crash semantics: no
// deregistration, leases dangle, and the supervisor's crash detection
// restarts the unit with backoff. This is the chaos/operator kill switch
// E18 drives.
func (s *Supervisor) Kill(unitID string) error {
	s.mu.Lock()
	u, ok := s.units[unitID]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("fleet: no unit %q", unitID)
	}
	u.mu.Lock()
	jobID := u.jobID
	box := u.box
	u.mu.Unlock()
	if jobID == "" || box == nil {
		return fmt.Errorf("fleet: unit %q has no live job", unitID)
	}
	return box.info.Box.Kill(jobID)
}

// StopUnit shuts a unit down gracefully: the node deregisters from every
// registry (releasing its leases) and the supervisor marks it Stopped
// without restarting it.
func (s *Supervisor) StopUnit(ctx context.Context, unitID string) error {
	s.mu.Lock()
	u, ok := s.units[unitID]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("fleet: no unit %q", unitID)
	}
	return s.stopUnit(ctx, u, false)
}

// errStopRequested aborts a spawn whose unit was full-stopped in the
// window between attempts (no live job, no stopCh to signal).
var errStopRequested = errors.New("fleet: stop requested")

func (s *Supervisor) stopUnit(ctx context.Context, u *unit, cycle bool) error {
	u.mu.Lock()
	switch u.state {
	case Stopped, Failed:
		u.mu.Unlock()
		return nil
	}
	if u.stopping {
		// A stop is already in flight. A full stop converts a pending
		// cycle (upgrade/relocate relaunch) into a terminal stop — the
		// supervision loop re-reads the flags at consumption — and then
		// waits for the in-flight stop like any other.
		if !cycle {
			u.cycle = false
		}
		u.mu.Unlock()
	} else {
		u.stopping = true
		u.cycle = cycle
		stopCh := u.stopCh
		u.stopCh = nil
		u.mu.Unlock()
		if stopCh != nil {
			close(stopCh)
		}
	}
	// Wait for the supervision loop to process the stop: past the stale
	// Serving of the stopped attempt for a cycle (the caller then waits
	// for the relaunch to serve), or all the way to a terminal state plus
	// bookkeeping (DVM withdrawal) for a full stop.
	var err error
	if cycle {
		err = s.waitCycleHandled(ctx, u)
	} else {
		err = s.waitUnitTerminal(ctx, u)
	}
	if err != nil {
		// Give up waiting; escalate to a kill so the job cannot linger.
		u.mu.Lock()
		jobID, box := u.jobID, u.box
		u.mu.Unlock()
		if box != nil && jobID != "" {
			_ = box.info.Box.Kill(jobID)
		}
	}
	return err
}

// waitCycleHandled blocks until the supervision loop has consumed a
// cycle stop — the relaunch is under way (state already Starting) or the
// unit went terminal — so a cycle-stop caller can never observe the
// stopped attempt's stale Serving state.
func (s *Supervisor) waitCycleHandled(ctx context.Context, u *unit) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		s.mu.Lock()
		s.serveCond.Broadcast()
		s.mu.Unlock()
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		u.mu.Lock()
		stopping := u.stopping
		state := u.state
		u.mu.Unlock()
		if !stopping {
			return nil
		}
		switch state {
		case Stopped, Failed:
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		s.serveCond.Wait()
	}
}

func (s *Supervisor) waitUnitTerminal(ctx context.Context, u *unit) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		s.mu.Lock()
		s.serveCond.Broadcast()
		s.mu.Unlock()
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		switch u.snapshotState() {
		case Stopped, Failed:
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		s.serveCond.Wait()
	}
}

// StopDeployment gracefully stops every unit of a deployment.
func (s *Supervisor) StopDeployment(ctx context.Context, name string) error {
	s.mu.Lock()
	dep, ok := s.deployments[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("fleet: no deployment %q", name)
	}
	units := append([]*unit(nil), dep.units...)
	s.mu.Unlock()
	var errs []error
	for _, u := range units {
		if err := s.stopUnit(ctx, u, false); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", u.id, err))
		}
	}
	return errors.Join(errs...)
}

// Upgrade performs a rolling upgrade of a deployment to the new
// descriptor: one unit at a time is stopped gracefully, relaunched with
// the new descriptor and a bumped generation, and confirmed Serving
// before the next unit cycles — at most one replica is down at any
// moment. The new descriptor's replica count is authoritative: after
// the roll, surplus units are stopped newest-first and a shortfall is
// filled by spawning fresh units under the new descriptor's placement.
func (s *Supervisor) Upgrade(ctx context.Context, d Descriptor) error {
	if err := d.Validate(); err != nil {
		return err
	}
	d = d.normalized()
	s.mu.Lock()
	dep, ok := s.deployments[d.Name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("fleet: no deployment %q", d.Name)
	}
	dep.desc = d
	units := append([]*unit(nil), dep.units...)
	s.mu.Unlock()
	s.log.Append(Event{Kind: EvUpgrade, Deployment: d.Name,
		Detail: fmt.Sprintf("to version=%q components=%v", d.Version, d.Components)})
	for _, u := range units {
		if u.snapshotState() != Serving {
			continue
		}
		u.mu.Lock()
		u.gen++
		gen := u.gen
		u.mu.Unlock()
		if err := s.stopUnit(ctx, u, true); err != nil {
			return fmt.Errorf("fleet: upgrade %s: %w", u.id, err)
		}
		if err := s.waitUnitServing(ctx, u); err != nil {
			return fmt.Errorf("fleet: upgrade %s: %w", u.id, err)
		}
		s.log.Append(Event{Kind: EvUpgrade, Deployment: d.Name, Unit: u.id,
			Detail: fmt.Sprintf("gen=%d serving", gen)})
	}
	return s.reconcileReplicas(ctx, dep, d)
}

// reconcileReplicas brings a deployment's live-unit count in line with
// its descriptor after a roll. Drain replacements can leave a
// deployment above its replica target, and an upgrade descriptor may
// raise or lower it; either way the descriptor wins.
func (s *Supervisor) reconcileReplicas(ctx context.Context, dep *deployment, d Descriptor) error {
	s.mu.Lock()
	live := make([]*unit, 0, len(dep.units))
	for _, u := range dep.units {
		switch u.snapshotState() {
		case Stopped, Failed:
		default:
			live = append(live, u)
		}
	}
	var surplus, added []*unit
	if n := len(live) - d.Replicas; n > 0 {
		surplus = live[len(live)-n:]
	} else if n < 0 {
		if len(s.matchBoxesLocked(d.Constraints)) == 0 {
			s.mu.Unlock()
			return fmt.Errorf("fleet: upgrade %s: no enrolled box satisfies %v", d.Name, d.Constraints)
		}
		for i := n; i < 0; i++ {
			boxes := s.matchBoxesLocked(d.Constraints)
			box := boxes[0]
			s.seq++
			u := &unit{
				id:         fmt.Sprintf("%s-%d", d.Name, s.seq),
				deployment: d.Name,
				box:        box,
				state:      Starting,
				since:      time.Now(),
			}
			box.units[u.id] = u
			s.units[u.id] = u
			dep.units = append(dep.units, u)
			added = append(added, u)
		}
	}
	s.mu.Unlock()
	for _, u := range surplus {
		s.log.Append(Event{Kind: EvUpgrade, Deployment: d.Name, Unit: u.id,
			Box: u.boxName(), Detail: "scale-down"})
		if err := s.stopUnit(ctx, u, false); err != nil {
			return fmt.Errorf("fleet: upgrade scale-down %s: %w", u.id, err)
		}
	}
	for _, u := range added {
		s.log.Append(Event{Kind: EvUpgrade, Deployment: d.Name, Unit: u.id,
			Box: u.boxName(), Detail: "scale-up"})
		s.met.units.With(Starting.String()).Inc()
		s.wg.Add(1)
		go s.runUnit(u)
		if err := s.waitUnitServing(ctx, u); err != nil {
			return fmt.Errorf("fleet: upgrade scale-up %s: %w", u.id, err)
		}
	}
	return nil
}

func (s *Supervisor) waitUnitServing(ctx context.Context, u *unit) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		s.mu.Lock()
		s.serveCond.Broadcast()
		s.mu.Unlock()
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		switch u.snapshotState() {
		case Serving:
			return nil
		case Stopped, Failed:
			return fmt.Errorf("unit %s terminal (%s)", u.id, u.snapshotState())
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		s.serveCond.Wait()
	}
}

// Drain evacuates a box: it stops accepting placements, then relocates
// every serving unit — a replacement unit is spawned on another eligible
// box, confirmed Serving, stateful components are live-migrated from the
// old node's container to the replacement's (collisions are skipped with
// a logged ErrMigrateCollision — baseline components already exist on
// every replica), and only then is the old unit stopped gracefully.
func (s *Supervisor) Drain(ctx context.Context, boxName string) error {
	s.mu.Lock()
	box, ok := s.boxes[boxName]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("fleet: no box %q", boxName)
	}
	box.draining = true
	victims := make([]*unit, 0, len(box.units))
	for _, u := range box.units {
		victims = append(victims, u)
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	s.mu.Unlock()
	s.log.Append(Event{Kind: EvDrain, Box: boxName, Detail: fmt.Sprintf("%d units to relocate", len(victims))})

	var errs []error
	for _, u := range victims {
		if u.snapshotState() != Serving {
			continue
		}
		if err := s.relocate(ctx, u); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", u.id, err))
		}
	}
	return errors.Join(errs...)
}

// relocate moves one unit off its (draining) box.
func (s *Supervisor) relocate(ctx context.Context, old *unit) error {
	d, ok := s.deploymentDesc(old.deployment)
	if !ok {
		return fmt.Errorf("deployment %q gone", old.deployment)
	}
	d = d.normalized()
	s.mu.Lock()
	dep := s.deployments[old.deployment]
	boxes := s.matchBoxesLocked(d.Constraints)
	if len(boxes) == 0 {
		s.mu.Unlock()
		return fmt.Errorf("no eligible box to relocate to")
	}
	box := boxes[0]
	s.seq++
	repl := &unit{
		id:         fmt.Sprintf("%s-%d", d.Name, s.seq),
		deployment: d.Name,
		box:        box,
		state:      Starting,
		since:      time.Now(),
	}
	box.units[repl.id] = repl
	s.units[repl.id] = repl
	dep.units = append(dep.units, repl)
	s.mu.Unlock()
	s.met.units.With(Starting.String()).Inc()
	s.wg.Add(1)
	go s.runUnit(repl)
	if err := s.waitUnitServing(ctx, repl); err != nil {
		return fmt.Errorf("replacement %s: %w", repl.id, err)
	}

	// Live-migrate stateful components old → replacement.
	old.mu.Lock()
	oldNode := old.node
	old.mu.Unlock()
	repl.mu.Lock()
	newNode := repl.node
	repl.mu.Unlock()
	if oldNode != nil && newNode != nil && oldNode.Container() != nil && newNode.Container() != nil {
		src, dst := oldNode.Container(), newNode.Container()
		for _, inst := range src.Instances() {
			if _, stateful := inst.Component().(container.Stateful); !stateful {
				continue
			}
			err := container.Migrate(src, inst.ID, dst)
			switch {
			case err == nil:
				s.met.migrations.Inc()
				s.log.Append(Event{Kind: EvMigrate, Deployment: old.deployment,
					Unit: old.id, Box: old.boxName(),
					Detail: fmt.Sprintf("%s -> %s", inst.ID, repl.id)})
			case errors.Is(err, container.ErrMigrateCollision):
				// Baseline components exist on every replica; skip.
				s.log.Append(Event{Kind: EvMigrate, Deployment: old.deployment,
					Unit: old.id, Box: old.boxName(),
					Detail: fmt.Sprintf("%s skipped (exists at %s)", inst.ID, repl.id)})
			default:
				return fmt.Errorf("migrate %s: %w", inst.ID, err)
			}
		}
	}
	return s.stopUnit(ctx, old, false)
}

// UnitStatus is the control-plane view of one unit.
type UnitStatus struct {
	ID          string            `json:"id"`
	Deployment  string            `json:"deployment"`
	Box         string            `json:"box"`
	State       string            `json:"state"`
	Generation  int               `json:"generation"`
	Restarts    int               `json:"restarts"`
	Consecutive int               `json:"consecutive_crashes"`
	LastErr     string            `json:"last_err,omitempty"`
	Since       time.Time         `json:"since"`
	Endpoints   map[string]string `json:"endpoints,omitempty"`
}

// BoxStatus is the control-plane view of one enrolled box.
type BoxStatus struct {
	Name     string            `json:"name"`
	Backend  string            `json:"backend"`
	Slots    int               `json:"slots"`
	Labels   map[string]string `json:"labels,omitempty"`
	Draining bool              `json:"draining,omitempty"`
	Units    []string          `json:"units,omitempty"`
}

// DeploymentStatus is the control-plane view of one deployment.
type DeploymentStatus struct {
	Name       string       `json:"name"`
	Version    string       `json:"version,omitempty"`
	Replicas   int          `json:"replicas"`
	Components []string     `json:"components"`
	Units      []UnitStatus `json:"units"`
}

// FleetState is the full control-plane snapshot.
type FleetState struct {
	Daemon      string             `json:"daemon"`
	Boxes       []BoxStatus        `json:"boxes"`
	Deployments []DeploymentStatus `json:"deployments"`
	LogSeq      int64              `json:"log_seq"`
}

func (u *unit) status() UnitStatus {
	u.mu.Lock()
	defer u.mu.Unlock()
	st := UnitStatus{
		ID:          u.id,
		Deployment:  u.deployment,
		State:       u.state.String(),
		Generation:  u.gen,
		Restarts:    u.restarts,
		Consecutive: u.consecutive,
		LastErr:     u.lastErr,
		Since:       u.since,
	}
	if u.box != nil {
		st.Box = u.box.info.Name
	}
	if len(u.endpoints) > 0 && u.state == Serving {
		st.Endpoints = make(map[string]string, len(u.endpoints))
		for k, v := range u.endpoints {
			st.Endpoints[k] = v
		}
	}
	return st
}

// State snapshots the fleet.
func (s *Supervisor) State() FleetState {
	s.mu.Lock()
	st := FleetState{Daemon: s.cfg.Name, LogSeq: s.log.Seq()}
	boxNames := make([]string, 0, len(s.boxes))
	for n := range s.boxes {
		boxNames = append(boxNames, n)
	}
	sort.Strings(boxNames)
	for _, n := range boxNames {
		b := s.boxes[n]
		bs := BoxStatus{
			Name:     b.info.Name,
			Backend:  b.info.Backend,
			Slots:    b.info.Slots,
			Labels:   b.info.Labels,
			Draining: b.draining,
		}
		for id := range b.units {
			bs.Units = append(bs.Units, id)
		}
		sort.Strings(bs.Units)
		st.Boxes = append(st.Boxes, bs)
	}
	depNames := make([]string, 0, len(s.deployments))
	for n := range s.deployments {
		depNames = append(depNames, n)
	}
	sort.Strings(depNames)
	deps := make([]*deployment, 0, len(depNames))
	for _, n := range depNames {
		deps = append(deps, s.deployments[n])
	}
	s.mu.Unlock()
	for _, dep := range deps {
		ds := DeploymentStatus{
			Name:       dep.name,
			Version:    dep.desc.Version,
			Replicas:   dep.desc.Replicas,
			Components: dep.desc.Components,
		}
		for _, u := range dep.units {
			ds.Units = append(ds.Units, u.status())
		}
		st.Deployments = append(st.Deployments, ds)
	}
	return st
}

// Attach returns a unit's live status plus the event log tail for it —
// everything a client needs to (re)connect to a running node: current
// endpoints to dial and the history since its last-seen sequence number.
func (s *Supervisor) Attach(unitID string, since int64) (UnitStatus, []Event, error) {
	s.mu.Lock()
	u, ok := s.units[unitID]
	s.mu.Unlock()
	if !ok {
		return UnitStatus{}, nil, fmt.Errorf("fleet: no unit %q", unitID)
	}
	all, _ := s.log.Since(since)
	var evs []Event
	for _, ev := range all {
		if ev.Unit == unitID {
			evs = append(evs, ev)
		}
	}
	return u.status(), evs, nil
}

// Close stops every unit gracefully and waits for the supervision loops
// to exit.
func (s *Supervisor) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.closeCh)
	units := make([]*unit, 0, len(s.units))
	for _, u := range s.units {
		units = append(units, u)
	}
	s.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for _, u := range units {
		wg.Add(1)
		go func(u *unit) {
			defer wg.Done()
			_ = s.stopUnit(ctx, u, false)
		}(u)
	}
	wg.Wait()
	s.wg.Wait()
	return nil
}
