package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client speaks the hfleet control protocol to a daemon.
type Client struct {
	base string
	http *http.Client
}

// NewClient targets the control endpoint at base (scheme optional).
func NewClient(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{Timeout: 2 * time.Minute},
	}
}

func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			return fmt.Errorf("fleet: %s", eb.Error)
		}
		return fmt.Errorf("fleet: %s %s: %s", method, path, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Deploy submits a target descriptor. waitN > 0 blocks until that many
// units serve; waitN == 0 returns as soon as the deployment is accepted.
func (c *Client) Deploy(ctx context.Context, descriptor string, waitN int) (string, []string, error) {
	path := "/v1/deploy"
	if waitN > 0 {
		path += "?wait=" + strconv.Itoa(waitN)
	}
	var reply deployReply
	if err := c.do(ctx, http.MethodPost, path, bytes.NewReader([]byte(descriptor)), &reply); err != nil {
		return "", nil, err
	}
	return reply.Deployment, reply.Units, nil
}

// State fetches the full fleet snapshot.
func (c *Client) State(ctx context.Context) (FleetState, error) {
	var st FleetState
	err := c.do(ctx, http.MethodGet, "/v1/state", nil, &st)
	return st, err
}

// Attach fetches a unit's status and its event tail after seq `since` —
// enough to dial its endpoints and catch up on missed history.
func (c *Client) Attach(ctx context.Context, unitID string, since int64) (UnitStatus, []Event, error) {
	var reply attachReply
	err := c.do(ctx, http.MethodGet,
		"/v1/units/"+url.PathEscape(unitID)+"?since="+strconv.FormatInt(since, 10), nil, &reply)
	return reply.Unit, reply.Events, err
}

// Kill terminates a unit abruptly (crash semantics; the daemon restarts it).
func (c *Client) Kill(ctx context.Context, unitID string) error {
	return c.do(ctx, http.MethodPost, "/v1/units/"+url.PathEscape(unitID)+"/kill", nil, nil)
}

// StopUnit stops a unit gracefully (deregistration; no restart).
func (c *Client) StopUnit(ctx context.Context, unitID string) error {
	return c.do(ctx, http.MethodPost, "/v1/units/"+url.PathEscape(unitID)+"/stop", nil, nil)
}

// StopDeployment stops every unit of a deployment gracefully.
func (c *Client) StopDeployment(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodPost, "/v1/deployments/"+url.PathEscape(name)+"/stop", nil, nil)
}

// Upgrade rolls a deployment to the new descriptor, one unit at a time.
func (c *Client) Upgrade(ctx context.Context, name, descriptor string) error {
	return c.do(ctx, http.MethodPost, "/v1/deployments/"+url.PathEscape(name)+"/upgrade",
		bytes.NewReader([]byte(descriptor)), nil)
}

// Drain evacuates a box, live-migrating stateful components.
func (c *Client) Drain(ctx context.Context, boxName string) error {
	return c.do(ctx, http.MethodPost, "/v1/boxes/"+url.PathEscape(boxName)+"/drain", nil, nil)
}

// Log fetches events after seq `since` plus whether the tail is
// contiguous with it.
func (c *Client) Log(ctx context.Context, since int64) ([]Event, bool, error) {
	var reply logReply
	err := c.do(ctx, http.MethodGet, "/v1/log?since="+strconv.FormatInt(since, 10), nil, &reply)
	return reply.Events, reply.Contiguous, err
}
