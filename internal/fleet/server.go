package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"harness2/internal/telemetry"
)

// Server exposes a Supervisor over the hfleet control protocol:
// line-oriented target descriptors in, JSON state and event streams out.
//
//	POST /v1/deploy            body = descriptor text; ?wait=N blocks for N serving
//	GET  /v1/state             full fleet snapshot
//	GET  /v1/units/{id}        attach: unit status + its event tail (?since=SEQ)
//	POST /v1/units/{id}/kill   abrupt kill (crash semantics; supervisor restarts)
//	POST /v1/units/{id}/stop   graceful stop (deregisters; no restart)
//	POST /v1/deployments/{name}/stop     graceful stop of every unit
//	POST /v1/deployments/{name}/upgrade  body = new descriptor; rolling
//	POST /v1/boxes/{name}/drain          relocate units, live-migrating state
//	GET  /v1/log?since=SEQ     event log tail
//	GET  /metrics              S27 telemetry exposition
type Server struct {
	sup *Supervisor
	srv *http.Server
	ln  net.Listener
	tel *telemetry.Registry
}

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// NewServer starts the control listener on addr (empty = 127.0.0.1:0).
func NewServer(sup *Supervisor, addr string, tel *telemetry.Registry) (*Server, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fleet: control listen: %w", err)
	}
	s := &Server{sup: sup, ln: ln, tel: telemetry.Or(tel)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/deploy", s.handleDeploy)
	mux.HandleFunc("GET /v1/state", s.handleState)
	mux.HandleFunc("GET /v1/units/{id}", s.handleAttach)
	mux.HandleFunc("POST /v1/units/{id}/kill", s.handleKill)
	mux.HandleFunc("POST /v1/units/{id}/stop", s.handleStopUnit)
	mux.HandleFunc("POST /v1/deployments/{name}/stop", s.handleStopDeployment)
	mux.HandleFunc("POST /v1/deployments/{name}/upgrade", s.handleUpgrade)
	mux.HandleFunc("POST /v1/boxes/{name}/drain", s.handleDrain)
	mux.HandleFunc("GET /v1/log", s.handleLog)
	mux.Handle("GET /metrics", telemetry.Handler(s.tel))
	s.srv = &http.Server{Handler: mux}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the control endpoint's host:port.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the control endpoint's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the control listener (the supervisor keeps running; close
// it separately).
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// deployReply answers POST /v1/deploy.
type deployReply struct {
	Deployment string   `json:"deployment"`
	Units      []string `json:"units"`
	Waited     int      `json:"waited_serving,omitempty"`
}

func (s *Server) handleDeploy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxDescriptorBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	d, err := ParseDescriptor(string(body))
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	ids, err := s.sup.Deploy(d)
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	reply := deployReply{Deployment: d.Name, Units: ids}
	if q := r.URL.Query().Get("wait"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("fleet: bad wait=%q", q))
			return
		}
		if n == 0 {
			n = len(ids)
		}
		ctx, cancel := waitContext(r)
		defer cancel()
		if err := s.sup.WaitServing(ctx, d.Name, n); err != nil {
			writeErr(w, http.StatusGatewayTimeout, err)
			return
		}
		reply.Waited = n
	}
	writeJSON(w, http.StatusOK, reply)
}

// waitContext bounds blocking handlers: ?timeout=DUR, default 60s.
func waitContext(r *http.Request) (context.Context, context.CancelFunc) {
	timeout := 60 * time.Second
	if q := r.URL.Query().Get("timeout"); q != "" {
		if d, err := time.ParseDuration(q); err == nil && d > 0 {
			timeout = d
		}
	}
	return context.WithTimeout(r.Context(), timeout)
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sup.State())
}

// attachReply answers GET /v1/units/{id}.
type attachReply struct {
	Unit   UnitStatus `json:"unit"`
	Events []Event    `json:"events,omitempty"`
	LogSeq int64      `json:"log_seq"`
}

func (s *Server) handleAttach(w http.ResponseWriter, r *http.Request) {
	since, err := sinceParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	st, evs, err := s.sup.Attach(r.PathValue("id"), since)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, attachReply{Unit: st, Events: evs, LogSeq: s.sup.Log().Seq()})
}

func sinceParam(r *http.Request) (int64, error) {
	q := r.URL.Query().Get("since")
	if q == "" {
		return 0, nil
	}
	n, err := strconv.ParseInt(q, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("fleet: bad since=%q", q)
	}
	return n, nil
}

func (s *Server) handleKill(w http.ResponseWriter, r *http.Request) {
	if err := s.sup.Kill(r.PathValue("id")); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"killed": r.PathValue("id")})
}

func (s *Server) handleStopUnit(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := waitContext(r)
	defer cancel()
	if err := s.sup.StopUnit(ctx, r.PathValue("id")); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"stopped": r.PathValue("id")})
}

func (s *Server) handleStopDeployment(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := waitContext(r)
	defer cancel()
	if err := s.sup.StopDeployment(ctx, r.PathValue("name")); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"stopped": r.PathValue("name")})
}

func (s *Server) handleUpgrade(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxDescriptorBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	d, err := ParseDescriptor(string(body))
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	if d.Name != r.PathValue("name") {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("fleet: descriptor deploys %q, path says %q", d.Name, r.PathValue("name")))
		return
	}
	ctx, cancel := waitContext(r)
	defer cancel()
	if err := s.sup.Upgrade(ctx, d); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"upgraded": d.Name, "version": d.Version})
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := waitContext(r)
	defer cancel()
	if err := s.sup.Drain(ctx, r.PathValue("name")); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"drained": r.PathValue("name")})
}

// logReply answers GET /v1/log.
type logReply struct {
	Events     []Event `json:"events"`
	Contiguous bool    `json:"contiguous"`
	LogSeq     int64   `json:"log_seq"`
}

func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	since, err := sinceParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	evs, contiguous := s.sup.Log().Since(since)
	writeJSON(w, http.StatusOK, logReply{Events: evs, Contiguous: contiguous, LogSeq: s.sup.Log().Seq()})
}

// statusFor maps supervisor errors to HTTP codes: unknown names are 404,
// timeouts 504, the rest 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case strings.Contains(err.Error(), "no unit"),
		strings.Contains(err.Error(), "no deployment"),
		strings.Contains(err.Error(), "no box"):
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}
