package fleet

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"harness2/internal/container"
	"harness2/internal/core"
	"harness2/internal/registry"
	"harness2/internal/telemetry"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// Default lease parameters when neither the descriptor nor the launcher
// config pins them.
const (
	DefaultLease = 2 * time.Second
	DefaultRenew = 500 * time.Millisecond
)

// CounterClass is a stateful component class both launchers install in
// addition to the core builtins: a running total that survives
// live-migration (Snapshot/Restore), so drains have state to carry.
const CounterClass = "FleetCounter"

// CounterFactory builds the migratable counter component.
func CounterFactory() container.Factory {
	return container.FuncFactory(func() *container.FuncComponent {
		var mu sync.Mutex
		var n int64
		f := &container.FuncComponent{
			Spec: wsdl.ServiceSpec{Name: CounterClass, Operations: []wsdl.OpSpec{
				{Name: "inc", Input: []wsdl.ParamSpec{{Name: "by", Type: wire.KindInt64}},
					Output: []wsdl.ParamSpec{{Name: "total", Type: wire.KindInt64}}},
				{Name: "total",
					Output: []wsdl.ParamSpec{{Name: "total", Type: wire.KindInt64}}},
			}},
		}
		f.Handlers = map[string]container.OpFunc{
			"inc": func(ctx context.Context, args []wire.Arg) ([]wire.Arg, error) {
				by, ok := wire.GetArg(args, "by")
				mu.Lock()
				defer mu.Unlock()
				if ok {
					n += by.(int64)
				} else {
					n++
				}
				return wire.Args("total", n), nil
			},
			"total": func(ctx context.Context, args []wire.Arg) ([]wire.Arg, error) {
				mu.Lock()
				defer mu.Unlock()
				return wire.Args("total", n), nil
			},
		}
		f.OnSnapshot = func() ([]container.Field, error) {
			mu.Lock()
			defer mu.Unlock()
			return []container.Field{{Name: "n", Value: n}}, nil
		}
		f.OnRestore = func(state []container.Field) error {
			mu.Lock()
			defer mu.Unlock()
			for _, s := range state {
				if s.Name == "n" {
					n = s.Value.(int64)
					return nil
				}
			}
			return fmt.Errorf("fleet: counter state missing n")
		}
		return f
	})
}

// deployAndExpose installs builtins + the fleet counter, deploys the
// descriptor's component classes under stable instance IDs (the
// lower-cased class name — identical on every replica, which is what
// makes a re-spawned unit republish under the same registry key and a
// drain's baseline migrations collide harmlessly), and leases each
// registration.
func deployAndExpose(c *container.Container, d Descriptor, reg container.LeasedRegistry, lease, renew time.Duration) error {
	core.RegisterBuiltins(c)
	c.RegisterFactory(CounterClass, CounterFactory())
	for _, class := range d.Components {
		id := strings.ToLower(class)
		if _, _, err := c.Deploy(class, id); err != nil {
			return fmt.Errorf("fleet: deploy %s: %w", class, err)
		}
		if reg == nil {
			continue
		}
		if _, err := c.ExposeLeased(id, reg, lease, renew); err != nil {
			return fmt.Errorf("fleet: publish %s: %w", id, err)
		}
	}
	return nil
}

func leaseParams(d Descriptor, lease, renew time.Duration) (time.Duration, time.Duration) {
	if d.Lease > 0 {
		lease = d.Lease
	}
	if d.Renew > 0 {
		renew = d.Renew
	}
	if lease <= 0 {
		lease = DefaultLease
	}
	if renew <= 0 || renew >= lease {
		renew = lease / 4
	}
	return lease, renew
}

// NodeLauncherConfig parameterises NewNodeLauncher.
type NodeLauncherConfig struct {
	// Registry overrides descriptor registry endpoints: every unit
	// publishes here. When nil, each descriptor's Registry URL is dialed
	// as a SOAP remote; descriptors without one stay private.
	Registry container.LeasedRegistry
	// Lease/Renew default the leased-registration parameters for
	// descriptors that leave them unset.
	Lease, Renew time.Duration
	// Telemetry selects each node's metrics registry.
	Telemetry *telemetry.Registry
	// DisableShm suppresses the shared-memory binding on spawned nodes.
	DisableShm bool
}

// NewNodeLauncher returns a Launcher that instantiates full HARNESS II
// hosts: a core.Node with live SOAP/XDR (and shm) listeners per unit, the
// descriptor's components deployed and lease-published. This is what the
// hfleet daemon runs.
func NewNodeLauncher(cfg NodeLauncherConfig) Launcher {
	return func(ctx context.Context, u UnitRef, d Descriptor) (UnitNode, error) {
		node, err := core.NewNode(u.ID, core.NodeOptions{
			Telemetry:  cfg.Telemetry,
			DisableShm: cfg.DisableShm,
		})
		if err != nil {
			return nil, err
		}
		reg := cfg.Registry
		if reg == nil && d.Registry != "" {
			reg = registry.NewRemote(d.Registry)
		}
		lease, renew := leaseParams(d, cfg.Lease, cfg.Renew)
		if err := deployAndExpose(node.Container(), d, reg, lease, renew); err != nil {
			_ = node.Close()
			return nil, err
		}
		return &nodeUnit{node: node}, nil
	}
}

type nodeUnit struct {
	node *core.Node
}

func (n *nodeUnit) Endpoints() map[string]string {
	eps := map[string]string{"soap": n.node.SOAPBase(), "rest": n.node.RESTBase()}
	if a := n.node.XDRAddr(); a != "" {
		eps["xdr"] = a
	}
	if a := n.node.ShmAddr(); a != "" {
		eps["shm"] = a
	}
	return eps
}

func (n *nodeUnit) Container() *container.Container { return n.node.Container() }

// Shutdown closes the node. Graceful shutdown first withdraws every
// registration (releasing leases); a crash shutdown abandons them — the
// renewal loops die with the process model, so the registry entries
// dangle until their leases expire or a restarted unit republishes over
// them.
func (n *nodeUnit) Shutdown(graceful bool) error {
	c := n.node.Container()
	if graceful {
		for _, inst := range c.Instances() {
			_, _ = c.UnexposeEverywhere(inst.ID)
		}
	} else {
		c.AbandonRegistrations()
	}
	return n.node.Close()
}

// SimLauncherConfig parameterises NewSimLauncher.
type SimLauncherConfig struct {
	// Registry receives every unit's leased publications; required.
	Registry container.LeasedRegistry
	// SpawnDelay models instantiation cost (network fetch + container
	// start); the launcher sleeps this long before reporting serving.
	SpawnDelay time.Duration
	// Lease/Renew default the lease parameters.
	Lease, Renew time.Duration
	// FailFirst aborts each unit's first N launch attempts — exercises
	// the supervisor's spawn-retry path deterministically.
	FailFirst int

	mu       sync.Mutex
	attempts map[string]int
}

// NewSimLauncher returns a listener-free Launcher for deterministic
// experiments: each unit is a bare container (no sockets) whose
// components lease-publish into cfg.Registry. E18's time-to-N curves run
// on this.
func NewSimLauncher(cfg *SimLauncherConfig) Launcher {
	cfg.attempts = make(map[string]int)
	return func(ctx context.Context, u UnitRef, d Descriptor) (UnitNode, error) {
		if cfg.FailFirst > 0 {
			cfg.mu.Lock()
			cfg.attempts[u.ID]++
			n := cfg.attempts[u.ID]
			cfg.mu.Unlock()
			if n <= cfg.FailFirst {
				return nil, fmt.Errorf("fleet: simulated launch failure %d/%d for %s", n, cfg.FailFirst, u.ID)
			}
		}
		if cfg.SpawnDelay > 0 {
			select {
			case <-time.After(cfg.SpawnDelay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		c := container.New(container.Config{Name: u.ID, Telemetry: telemetry.Disabled()})
		lease, renew := leaseParams(d, cfg.Lease, cfg.Renew)
		if err := deployAndExpose(c, d, cfg.Registry, lease, renew); err != nil {
			return nil, err
		}
		return &simUnit{c: c}, nil
	}
}

type simUnit struct {
	c *container.Container
}

func (s *simUnit) Endpoints() map[string]string {
	return map[string]string{"local": "mem://" + s.c.Name()}
}

func (s *simUnit) Container() *container.Container { return s.c }

func (s *simUnit) Shutdown(graceful bool) error {
	if !graceful {
		// Crash: renewals stop with the "process", registrations dangle
		// until their leases expire or a restart republishes over them.
		s.c.AbandonRegistrations()
		return nil
	}
	for _, inst := range s.c.Instances() {
		_, _ = s.c.UnexposeEverywhere(inst.ID)
	}
	return nil
}
