// Package fleet is the HARNESS II deployment daemon and fleet control
// plane (S32). The paper's first complaint about stock Web-Services
// containers is the deployment issue — they "assume static, long-lived,
// manually deployed services" — while metacomputing needs automated
// instantiation of volatile components into lightweight containers.
// fleet closes that gap: a per-box Supervisor instantiates container
// nodes on enrolled runner boxes, auto-enrolls them into the registry
// (leased registrations kept alive and released on graceful stop) and
// optionally a DVM, detects crashes and restarts with full-jitter
// backoff, drains boxes by live-migrating stateful components, performs
// rolling upgrades, and keeps a canonical append-only event log exposed
// over an HTTP control protocol alongside S27 telemetry.
//
// Deploy requests are target descriptors in the vocabulary of Dearle et
// al.'s deployment framework: a deployable unit (the component list), a
// cardinality, and resource constraints matched against the enrolled
// runner-box inventory.
package fleet

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// RestartPolicy bounds crash recovery: consecutive crashes back off with
// full jitter drawn from [0, min(Max, Backoff<<n)]; after Limit
// consecutive crashes without an intervening healthy serve the unit is
// marked failed and left down for the operator.
type RestartPolicy struct {
	Backoff time.Duration
	Max     time.Duration
	Limit   int
}

// DefaultRestart is the policy applied when a descriptor does not name
// one.
var DefaultRestart = RestartPolicy{Backoff: 25 * time.Millisecond, Max: time.Second, Limit: 8}

// Bound returns the worst-case sleep before any single restart attempt —
// the "configured restart-backoff bound" E18's recovery assertion is
// measured against.
func (p RestartPolicy) Bound() time.Duration {
	if p.Max > 0 {
		return p.Max
	}
	return DefaultRestart.Max
}

// Constraint is one resource requirement of a target descriptor, matched
// against runner-box inventories. Fields: "backend" (the resource-manager
// kind), "slots" (execution slots; 0 on a box means unlimited), or
// "label.<key>" (free-form box attributes). Ops: = != for strings,
// additionally >= <= for slots.
type Constraint struct {
	Field string
	Op    string
	Value string
}

// String renders the constraint in descriptor syntax.
func (c Constraint) String() string { return c.Field + c.Op + c.Value }

// Matches reports whether box satisfies the constraint.
func (c Constraint) Matches(box BoxInfo) bool {
	switch {
	case c.Field == "backend":
		if c.Op == "!=" {
			return box.Backend != c.Value
		}
		return box.Backend == c.Value
	case c.Field == "slots":
		want, err := strconv.Atoi(c.Value)
		if err != nil {
			return false
		}
		// Slots 0 means unlimited and satisfies any floor.
		switch c.Op {
		case ">=":
			return box.Slots == 0 || box.Slots >= want
		case "<=":
			return box.Slots != 0 && box.Slots <= want
		case "!=":
			return box.Slots != want
		default:
			return box.Slots == want
		}
	case strings.HasPrefix(c.Field, "label."):
		got, ok := box.Labels[strings.TrimPrefix(c.Field, "label.")]
		if c.Op == "!=" {
			return !ok || got != c.Value
		}
		return ok && got == c.Value
	}
	return false
}

// Descriptor is a deploy request: the deployable unit (component
// classes), its cardinality, the constraints selecting eligible runner
// boxes, and the registration/recovery parameters of the spawned nodes.
type Descriptor struct {
	// Name identifies the deployment; unit IDs derive from it.
	Name string
	// Replicas is the number of nodes to keep serving.
	Replicas int
	// Components are the component classes each node deploys.
	Components []string
	// Constraints select eligible runner boxes; empty matches every box.
	Constraints []Constraint
	// Registry optionally overrides the supervisor's registry endpoint
	// for this deployment's registrations (a URL for real launchers).
	Registry string
	// Lease and Renew parameterise the nodes' leased registrations; zero
	// values use the supervisor defaults.
	Lease time.Duration
	Renew time.Duration
	// Restart is the crash-recovery policy; the zero value means
	// DefaultRestart.
	Restart RestartPolicy
	// Version labels the deployment revision; rolling upgrades bump it.
	Version string
}

// normalized fills defaults.
func (d Descriptor) normalized() Descriptor {
	if d.Replicas <= 0 {
		d.Replicas = 1
	}
	if d.Restart == (RestartPolicy{}) {
		d.Restart = DefaultRestart
	}
	if d.Restart.Limit <= 0 {
		d.Restart.Limit = DefaultRestart.Limit
	}
	if d.Restart.Backoff <= 0 {
		d.Restart.Backoff = DefaultRestart.Backoff
	}
	if d.Restart.Max < d.Restart.Backoff {
		d.Restart.Max = d.Restart.Backoff
	}
	return d
}

// Validate checks the descriptor is deployable.
func (d Descriptor) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("fleet: descriptor needs a deploy name")
	}
	if strings.ContainsAny(d.Name, " \t/") {
		return fmt.Errorf("fleet: deploy name %q contains separators", d.Name)
	}
	if len(d.Components) == 0 {
		return fmt.Errorf("fleet: descriptor %q lists no components", d.Name)
	}
	if d.Replicas < 0 || d.Replicas > 4096 {
		return fmt.Errorf("fleet: replicas %d out of range [0,4096]", d.Replicas)
	}
	for _, c := range d.Constraints {
		if err := validConstraint(c); err != nil {
			return err
		}
	}
	if d.Lease < 0 || d.Renew < 0 || d.Restart.Backoff < 0 || d.Restart.Max < 0 || d.Restart.Limit < 0 {
		return fmt.Errorf("fleet: descriptor %q has negative durations", d.Name)
	}
	return nil
}

func validConstraint(c Constraint) error {
	switch c.Op {
	case "=", "!=":
	case ">=", "<=":
		if c.Field != "slots" {
			return fmt.Errorf("fleet: constraint %s: ordering only applies to slots", c)
		}
	default:
		return fmt.Errorf("fleet: constraint %s: unknown op %q", c, c.Op)
	}
	switch {
	case c.Field == "backend":
	case c.Field == "slots":
		if _, err := strconv.Atoi(c.Value); err != nil {
			return fmt.Errorf("fleet: constraint %s: slots wants an integer", c)
		}
	case strings.HasPrefix(c.Field, "label.") && len(c.Field) > len("label."):
	default:
		return fmt.Errorf("fleet: constraint %s: unknown field %q", c, c.Field)
	}
	return nil
}

// String renders the descriptor in the canonical parseable form.
func (d Descriptor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "deploy %s\n", d.Name)
	fmt.Fprintf(&b, "replicas %d\n", d.Replicas)
	for _, c := range d.Components {
		fmt.Fprintf(&b, "component %s\n", c)
	}
	for _, c := range d.Constraints {
		fmt.Fprintf(&b, "require %s\n", c)
	}
	if d.Registry != "" {
		fmt.Fprintf(&b, "registry %s\n", d.Registry)
	}
	if d.Lease > 0 {
		fmt.Fprintf(&b, "lease %s\n", d.Lease)
	}
	if d.Renew > 0 {
		fmt.Fprintf(&b, "renew %s\n", d.Renew)
	}
	if d.Restart != (RestartPolicy{}) {
		fmt.Fprintf(&b, "restart backoff=%s max=%s limit=%d\n",
			d.Restart.Backoff, d.Restart.Max, d.Restart.Limit)
	}
	if d.Version != "" {
		fmt.Fprintf(&b, "version %s\n", d.Version)
	}
	return b.String()
}

// maxDescriptorBytes bounds parser input; control-channel payloads are
// tiny, so anything larger is rejected before parsing.
const maxDescriptorBytes = 1 << 16

// ParseDescriptor parses the line-oriented target-descriptor grammar:
//
//	deploy web                  # deployment name (required, first)
//	replicas 3                  # cardinality (default 1)
//	component MatMul            # deployable unit: one line per class
//	require backend=local       # constraints over the box inventory
//	require slots>=2            #   ops: = != and >= <= for slots
//	require label.zone=eu       #   free-form box labels
//	registry http://host:8900/  # registration endpoint override
//	lease 2s                    # leased-registration parameters
//	renew 500ms
//	restart backoff=20ms max=500ms limit=6
//	version v2                  # revision label (rolling upgrades)
//
// Blank lines and #-comments are ignored. The result is validated.
func ParseDescriptor(text string) (Descriptor, error) {
	if len(text) > maxDescriptorBytes {
		return Descriptor{}, fmt.Errorf("fleet: descriptor exceeds %d bytes", maxDescriptorBytes)
	}
	var d Descriptor
	seen := map[string]bool{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		word, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		if rest == "" {
			return Descriptor{}, fmt.Errorf("fleet: line %d: %q needs a value", ln+1, word)
		}
		switch word {
		case "deploy":
			if seen["deploy"] {
				return Descriptor{}, fmt.Errorf("fleet: line %d: duplicate deploy", ln+1)
			}
			d.Name = rest
		case "replicas":
			n, err := strconv.Atoi(rest)
			if err != nil {
				return Descriptor{}, fmt.Errorf("fleet: line %d: replicas %q: %v", ln+1, rest, err)
			}
			d.Replicas = n
		case "component":
			for _, c := range strings.Split(rest, ",") {
				if c = strings.TrimSpace(c); c != "" {
					d.Components = append(d.Components, c)
				}
			}
		case "require":
			c, err := parseConstraint(rest)
			if err != nil {
				return Descriptor{}, fmt.Errorf("fleet: line %d: %v", ln+1, err)
			}
			d.Constraints = append(d.Constraints, c)
		case "registry":
			d.Registry = rest
		case "lease", "renew":
			dur, err := time.ParseDuration(rest)
			if err != nil {
				return Descriptor{}, fmt.Errorf("fleet: line %d: %s %q: %v", ln+1, word, rest, err)
			}
			if word == "lease" {
				d.Lease = dur
			} else {
				d.Renew = dur
			}
		case "restart":
			p, err := parseRestart(rest)
			if err != nil {
				return Descriptor{}, fmt.Errorf("fleet: line %d: %v", ln+1, err)
			}
			d.Restart = p
		case "version":
			d.Version = rest
		default:
			return Descriptor{}, fmt.Errorf("fleet: line %d: unknown directive %q", ln+1, word)
		}
		seen[word] = true
	}
	if err := d.Validate(); err != nil {
		return Descriptor{}, err
	}
	return d, nil
}

// constraint ops, longest first so ">=" is not cut at "=".
var constraintOps = []string{">=", "<=", "!=", "="}

func parseConstraint(s string) (Constraint, error) {
	for _, op := range constraintOps {
		if i := strings.Index(s, op); i > 0 {
			c := Constraint{
				Field: strings.TrimSpace(s[:i]),
				Op:    op,
				Value: strings.TrimSpace(s[i+len(op):]),
			}
			if c.Value == "" {
				return Constraint{}, fmt.Errorf("constraint %q has no value", s)
			}
			return c, validConstraint(c)
		}
	}
	return Constraint{}, fmt.Errorf("constraint %q has no operator", s)
}

func parseRestart(s string) (RestartPolicy, error) {
	p := RestartPolicy{}
	for _, kv := range strings.Fields(s) {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return p, fmt.Errorf("restart field %q wants key=value", kv)
		}
		switch k {
		case "backoff", "max":
			dur, err := time.ParseDuration(v)
			if err != nil {
				return p, fmt.Errorf("restart %s %q: %v", k, v, err)
			}
			if k == "backoff" {
				p.Backoff = dur
			} else {
				p.Max = dur
			}
		case "limit":
			n, err := strconv.Atoi(v)
			if err != nil {
				return p, fmt.Errorf("restart limit %q: %v", v, err)
			}
			p.Limit = n
		default:
			return p, fmt.Errorf("restart field %q unknown", k)
		}
	}
	if p.Backoff <= 0 || p.Max < p.Backoff || p.Limit < 1 {
		return p, fmt.Errorf("restart policy %+v invalid: need backoff>0, max>=backoff, limit>=1", p)
	}
	return p, nil
}

// sortedConstraints returns a canonical ordering for comparisons.
func sortedConstraints(cs []Constraint) []Constraint {
	out := append([]Constraint(nil), cs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Field != out[j].Field {
			return out[i].Field < out[j].Field
		}
		return out[i].Op+out[i].Value < out[j].Op+out[j].Value
	})
	return out
}
