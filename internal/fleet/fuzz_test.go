package fleet

import (
	"reflect"
	"testing"
)

// FuzzParseDescriptor checks the parser never panics and that accepted
// descriptors survive a render → reparse round trip unchanged — the
// canonical form is a fixed point.
func FuzzParseDescriptor(f *testing.F) {
	f.Add("deploy web\nreplicas 3\ncomponent MatMul,WSTime\nrequire backend=local\nrequire slots>=2\nregistry http://h:1/\nlease 2s\nrenew 500ms\nrestart backoff=20ms max=500ms limit=6\nversion v2\n")
	f.Add("deploy a\ncomponent B\n# comment\nrequire label.zone!=eu\n")
	f.Add("deploy x\ncomponent C\nrequire slots<=8\nreplicas 0\n")
	f.Add("deploy нode\ncomponent Ünïcode\n")
	f.Add("deploy w\ncomponent A\nrequire backend=a=b\n")
	f.Fuzz(func(t *testing.T, text string) {
		d, err := ParseDescriptor(text)
		if err != nil {
			return
		}
		rendered := d.String()
		d2, err := ParseDescriptor(rendered)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\ninput:\n%s\nrendered:\n%s", err, text, rendered)
		}
		d.Constraints = sortedConstraints(d.Constraints)
		d2.Constraints = sortedConstraints(d2.Constraints)
		if !reflect.DeepEqual(d, d2) {
			t.Fatalf("round trip changed descriptor\nfirst:  %+v\nsecond: %+v\nrendered:\n%s", d, d2, rendered)
		}
	})
}
