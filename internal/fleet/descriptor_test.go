package fleet

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseDescriptorFull(t *testing.T) {
	text := `
# staging web tier
deploy web
replicas 3
component MatMul, WSTime
component FleetCounter
require backend=local
require slots>=2
require label.zone=eu   # only EU boxes
registry http://127.0.0.1:8900/
lease 2s
renew 500ms
restart backoff=20ms max=500ms limit=6
version v2
`
	d, err := ParseDescriptor(text)
	if err != nil {
		t.Fatal(err)
	}
	want := Descriptor{
		Name:       "web",
		Replicas:   3,
		Components: []string{"MatMul", "WSTime", "FleetCounter"},
		Constraints: []Constraint{
			{Field: "backend", Op: "=", Value: "local"},
			{Field: "slots", Op: ">=", Value: "2"},
			{Field: "label.zone", Op: "=", Value: "eu"},
		},
		Registry: "http://127.0.0.1:8900/",
		Lease:    2 * time.Second,
		Renew:    500 * time.Millisecond,
		Restart:  RestartPolicy{Backoff: 20 * time.Millisecond, Max: 500 * time.Millisecond, Limit: 6},
		Version:  "v2",
	}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("parsed\n%+v\nwant\n%+v", d, want)
	}
	// Canonical render re-parses to the same descriptor.
	d2, err := ParseDescriptor(d.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !reflect.DeepEqual(d, d2) {
		t.Fatalf("round trip changed descriptor:\n%+v\nvs\n%+v", d, d2)
	}
}

func TestParseDescriptorErrors(t *testing.T) {
	cases := map[string]string{
		"no name":            "component MatMul",
		"no components":      "deploy web",
		"bad replicas":       "deploy web\nreplicas many\ncomponent A",
		"negative replicas":  "deploy web\nreplicas -1\ncomponent A",
		"huge replicas":      "deploy web\nreplicas 9999\ncomponent A",
		"duplicate deploy":   "deploy a\ndeploy b\ncomponent A",
		"unknown directive":  "deploy web\ncomponent A\nflavour vanilla",
		"bare directive":     "deploy web\ncomponent A\nreplicas",
		"no operator":        "deploy web\ncomponent A\nrequire backend local",
		"no value":           "deploy web\ncomponent A\nrequire backend=",
		"order on backend":   "deploy web\ncomponent A\nrequire backend>=2",
		"slots not integer":  "deploy web\ncomponent A\nrequire slots>=lots",
		"unknown field":      "deploy web\ncomponent A\nrequire cpus=4",
		"bad lease":          "deploy web\ncomponent A\nlease soon",
		"negative lease":     "deploy web\ncomponent A\nlease -2s",
		"restart no backoff": "deploy web\ncomponent A\nrestart limit=3",
		"restart max<min":    "deploy web\ncomponent A\nrestart backoff=1s max=10ms limit=3",
		"restart bad field":  "deploy web\ncomponent A\nrestart retries=3",
		"name with space":    "deploy web tier\ncomponent A",
		"oversized":          "deploy web\ncomponent A\n#" + strings.Repeat("x", maxDescriptorBytes),
	}
	for name, text := range cases {
		if _, err := ParseDescriptor(text); err == nil {
			t.Errorf("%s: descriptor accepted:\n%s", name, text)
		}
	}
}

func TestConstraintMatches(t *testing.T) {
	box := BoxInfo{Name: "b1", Backend: "local", Slots: 4,
		Labels: map[string]string{"zone": "eu", "gpu": "none"}}
	unlimited := BoxInfo{Name: "b2", Backend: "grid", Slots: 0}
	cases := []struct {
		c    Constraint
		box  BoxInfo
		want bool
	}{
		{Constraint{"backend", "=", "local"}, box, true},
		{Constraint{"backend", "=", "grid"}, box, false},
		{Constraint{"backend", "!=", "grid"}, box, true},
		{Constraint{"slots", ">=", "2"}, box, true},
		{Constraint{"slots", ">=", "8"}, box, false},
		{Constraint{"slots", ">=", "8"}, unlimited, true}, // 0 = unlimited
		{Constraint{"slots", "<=", "8"}, box, true},
		{Constraint{"slots", "<=", "8"}, unlimited, false},
		{Constraint{"slots", "=", "4"}, box, true},
		{Constraint{"slots", "!=", "4"}, box, false},
		{Constraint{"label.zone", "=", "eu"}, box, true},
		{Constraint{"label.zone", "=", "us"}, box, false},
		{Constraint{"label.zone", "!=", "us"}, box, true},
		{Constraint{"label.zone", "=", "eu"}, unlimited, false}, // label absent
		{Constraint{"label.zone", "!=", "eu"}, unlimited, true},
	}
	for _, tc := range cases {
		if got := tc.c.Matches(tc.box); got != tc.want {
			t.Errorf("%s vs %s: got %v, want %v", tc.c, tc.box.Name, got, tc.want)
		}
	}
}

func TestRestartPolicyBound(t *testing.T) {
	if got := (RestartPolicy{}).Bound(); got != DefaultRestart.Max {
		t.Fatalf("zero policy bound = %v, want default %v", got, DefaultRestart.Max)
	}
	if got := (RestartPolicy{Max: 3 * time.Second}).Bound(); got != 3*time.Second {
		t.Fatalf("bound = %v, want 3s", got)
	}
}

func TestLogSinceAndTruncation(t *testing.T) {
	l := NewLog(8)
	for i := 0; i < 6; i++ {
		l.Append(Event{Kind: EvSpawn})
	}
	evs, contiguous := l.Since(2)
	if !contiguous || len(evs) != 4 || evs[0].Seq != 3 {
		t.Fatalf("since(2) = %d events from %d contiguous=%v", len(evs), evs[0].Seq, contiguous)
	}
	// Overflow: the ring drops the oldest half.
	for i := 0; i < 10; i++ {
		l.Append(Event{Kind: EvCrash})
	}
	if _, contiguous := l.Since(0); contiguous {
		t.Fatal("truncated log claimed a contiguous replay from 0")
	}
	evs, contiguous = l.Since(l.Seq() - 1)
	if !contiguous || len(evs) != 1 {
		t.Fatalf("tail read: %d events contiguous=%v", len(evs), contiguous)
	}
}
