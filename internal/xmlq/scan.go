package xmlq

// scan.go is the streaming side of xmlq: a zero-allocation pull scanner
// over a restricted XML subset, built for the SOAP data-plane fast path.
// The full generality of XML — comments, CDATA sections, DOCTYPE
// declarations, non-ASCII names, carriage-return normalisation — is
// deliberately out of scope: the scanner reports ErrComplex for any of
// it and callers fall back to the DOM parser (Parse), which handles the
// long tail through encoding/xml. The contract is therefore not "parse
// all XML" but "parse the envelopes our own encoders emit, byte-exactly
// the way Parse would, or refuse".
//
// Tokens reference the input buffer directly; nothing is copied. A token
// is valid until the next call to Next (the attribute slice is reused),
// but the byte slices inside it point into the caller's buffer and stay
// valid as long as the buffer does.

import (
	"errors"
	"fmt"
	"unicode/utf8"
)

// ErrComplex reports markup outside the streaming subset. Callers are
// expected to fall back to Parse, which handles the full grammar.
var ErrComplex = errors.New("xmlq: markup outside the streaming subset")

// TokenKind enumerates scanner token types.
type TokenKind uint8

// Scanner token kinds.
const (
	TokNone TokenKind = iota
	TokStart
	TokEnd
	TokText
	TokEOF
)

// RawAttr is one attribute of a start tag. Value is the raw bytes
// between the quotes: entities are not expanded (see AppendUnescaped).
type RawAttr struct {
	Name  []byte
	Value []byte
}

// RawToken is one scanner event. Name and Text alias the input buffer;
// Attrs is reused across calls to Next.
type RawToken struct {
	Kind TokenKind
	// Name is the tag name as written, including any prefix
	// (TokStart/TokEnd).
	Name []byte
	// Attrs are the start tag's attributes (TokStart only).
	Attrs []RawAttr
	// Text is the raw character run, entities unexpanded (TokText only).
	Text []byte
	// SelfClose marks a <name/> tag: no matching TokEnd will follow.
	SelfClose bool
}

// Scanner is a pull scanner over a byte buffer. The zero value is not
// usable; construct with NewScanner or reuse with Reset.
type Scanner struct {
	buf   []byte
	pos   int
	attrs []RawAttr
}

// NewScanner returns a scanner over buf.
func NewScanner(buf []byte) *Scanner {
	s := &Scanner{}
	s.Reset(buf)
	return s
}

// Reset rewinds the scanner onto a new buffer, retaining the attribute
// scratch so pooled scanners stay allocation-free.
func (s *Scanner) Reset(buf []byte) {
	s.buf = buf
	s.pos = 0
}

// isNameByte reports whether b may appear inside a tag or attribute
// name. The set is ASCII-only on purpose: exotic names fall back.
func isNameByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' ||
		b >= '0' && b <= '9' || b == '_' || b == '-' || b == '.'
}

func isSpaceByte(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r'
}

// Next returns the next token. Errors are either ErrComplex (input the
// subset does not cover — fall back to Parse) or a description of
// malformed markup (the DOM parser would fail on it too).
func (s *Scanner) Next() (RawToken, error) {
	if s.pos >= len(s.buf) {
		return RawToken{Kind: TokEOF}, nil
	}
	if s.buf[s.pos] != '<' {
		return s.text()
	}
	// Markup.
	if s.pos+1 >= len(s.buf) {
		return RawToken{}, fmt.Errorf("xmlq: truncated markup at %d", s.pos)
	}
	switch s.buf[s.pos+1] {
	case '?':
		// Processing instruction (including the XML declaration): the
		// DOM parser drops these, so skipping them is behaviour-exact.
		end := indexFrom(s.buf, s.pos+2, "?>")
		if end < 0 {
			return RawToken{}, fmt.Errorf("xmlq: unterminated processing instruction")
		}
		s.pos = end + 2
		return s.Next()
	case '!':
		// Comments, CDATA, DOCTYPE: out of subset.
		return RawToken{}, ErrComplex
	case '/':
		return s.endTag()
	}
	return s.startTag()
}

// indexFrom finds the needle at or after from.
func indexFrom(buf []byte, from int, needle string) int {
	for i := from; i+len(needle) <= len(buf); i++ {
		if string(buf[i:i+len(needle)]) == needle {
			return i
		}
	}
	return -1
}

// text scans a character run up to the next '<' or EOF. The run is
// validated against the subset: ASCII only (multi-byte UTF-8 falls
// back so encoding/xml keeps sole authority over Unicode validation),
// no control bytes besides tab and newline (no carriage returns — the
// DOM layer normalises those).
func (s *Scanner) text() (RawToken, error) {
	start := s.pos
	for s.pos < len(s.buf) && s.buf[s.pos] != '<' {
		b := s.buf[s.pos]
		if b >= utf8.RuneSelf || (b < 0x20 && b != '\t' && b != '\n') {
			return RawToken{}, ErrComplex
		}
		s.pos++
	}
	return RawToken{Kind: TokText, Text: s.buf[start:s.pos]}, nil
}

func (s *Scanner) endTag() (RawToken, error) {
	// s.buf[s.pos:] starts with "</".
	i := s.pos + 2
	name, j, err := s.name(i)
	if err != nil {
		return RawToken{}, err
	}
	for j < len(s.buf) && isSpaceByte(s.buf[j]) {
		j++
	}
	if j >= len(s.buf) || s.buf[j] != '>' {
		return RawToken{}, fmt.Errorf("xmlq: malformed end tag at %d", s.pos)
	}
	s.pos = j + 1
	return RawToken{Kind: TokEnd, Name: name}, nil
}

// name scans a (possibly prefixed) tag or attribute name at i. At most
// one colon is allowed, neither leading nor trailing, so the prefix
// split matches encoding/xml's.
func (s *Scanner) name(i int) ([]byte, int, error) {
	start := i
	colons := 0
	for i < len(s.buf) {
		b := s.buf[i]
		if b == ':' {
			colons++
			if colons > 1 || i == start || i+1 >= len(s.buf) || !isNameByte(s.buf[i+1]) {
				return nil, 0, ErrComplex
			}
			i++
			continue
		}
		if !isNameByte(b) {
			break
		}
		i++
	}
	if i == start {
		return nil, 0, ErrComplex
	}
	first := s.buf[start]
	if first >= '0' && first <= '9' || first == '-' || first == '.' {
		return nil, 0, ErrComplex
	}
	return s.buf[start:i], i, nil
}

func (s *Scanner) startTag() (RawToken, error) {
	name, i, err := s.name(s.pos + 1)
	if err != nil {
		return RawToken{}, err
	}
	s.attrs = s.attrs[:0]
	for {
		sawSpace := false
		for i < len(s.buf) && isSpaceByte(s.buf[i]) {
			i++
			sawSpace = true
		}
		if i >= len(s.buf) {
			return RawToken{}, fmt.Errorf("xmlq: unterminated start tag at %d", s.pos)
		}
		switch s.buf[i] {
		case '>':
			s.pos = i + 1
			return RawToken{Kind: TokStart, Name: name, Attrs: s.attrs}, nil
		case '/':
			if i+1 >= len(s.buf) || s.buf[i+1] != '>' {
				return RawToken{}, fmt.Errorf("xmlq: malformed empty-element tag at %d", s.pos)
			}
			s.pos = i + 2
			return RawToken{Kind: TokStart, Name: name, Attrs: s.attrs, SelfClose: true}, nil
		}
		if !sawSpace {
			return RawToken{}, ErrComplex
		}
		var aname []byte
		aname, i, err = s.name(i)
		if err != nil {
			return RawToken{}, err
		}
		if i >= len(s.buf) || s.buf[i] != '=' {
			// Valueless attributes are a syntax error in XML proper;
			// report complexity and let the DOM parser produce the error.
			return RawToken{}, ErrComplex
		}
		i++
		if i >= len(s.buf) || (s.buf[i] != '"' && s.buf[i] != '\'') {
			return RawToken{}, ErrComplex
		}
		quote := s.buf[i]
		i++
		vstart := i
		for i < len(s.buf) && s.buf[i] != quote {
			b := s.buf[i]
			// Attribute values additionally exclude tab/newline (XML
			// normalises those to spaces, which the subset does not
			// model) and entity references: a bare '&' is a syntax
			// error only the DOM parser is allowed to judge, and an
			// escaped one would need unescaping the subset skips.
			if b >= utf8.RuneSelf || b < 0x20 || b == '<' || b == '&' {
				return RawToken{}, ErrComplex
			}
			i++
		}
		if i >= len(s.buf) {
			return RawToken{}, fmt.Errorf("xmlq: unterminated attribute value at %d", vstart)
		}
		s.attrs = append(s.attrs, RawAttr{Name: aname, Value: s.buf[vstart:i]})
		i++
	}
}

// LocalName returns the part of a raw name after the first colon, or
// the whole name when unprefixed — the same split encoding/xml applies.
func LocalName(name []byte) []byte {
	for i, b := range name {
		if b == ':' {
			return name[i+1:]
		}
	}
	return name
}

// PrefixOf returns the part of a raw name before the first colon, or
// nil when unprefixed.
func PrefixOf(name []byte) []byte {
	for i, b := range name {
		if b == ':' {
			return name[:i]
		}
	}
	return nil
}

// HasAmp reports whether b contains an entity-reference trigger.
func HasAmp(b []byte) bool {
	for _, c := range b {
		if c == '&' {
			return true
		}
	}
	return false
}

// AppendUnescaped appends src to dst with XML references resolved: the
// five predefined entities plus decimal and hexadecimal character
// references. References the subset does not cover — unknown entity
// names, characters outside the XML Char production — yield ErrComplex
// so the caller falls back to the DOM parser's handling.
func AppendUnescaped(dst, src []byte) ([]byte, error) {
	for i := 0; i < len(src); i++ {
		b := src[i]
		if b != '&' {
			dst = append(dst, b)
			continue
		}
		semi := -1
		for j := i + 1; j < len(src) && j <= i+12; j++ {
			if src[j] == ';' {
				semi = j
				break
			}
		}
		if semi < 0 {
			return dst, ErrComplex
		}
		ref := src[i+1 : semi]
		switch string(ref) {
		case "amp":
			dst = append(dst, '&')
		case "lt":
			dst = append(dst, '<')
		case "gt":
			dst = append(dst, '>')
		case "quot":
			dst = append(dst, '"')
		case "apos":
			dst = append(dst, '\'')
		default:
			r, ok := charRef(ref)
			if !ok {
				return dst, ErrComplex
			}
			dst = utf8.AppendRune(dst, r)
		}
		i = semi
	}
	return dst, nil
}

// charRef parses a numeric character reference body ("#120" or "#x3C")
// and checks the result against the XML Char production.
func charRef(ref []byte) (rune, bool) {
	if len(ref) < 2 || ref[0] != '#' {
		return 0, false
	}
	var r rune
	digits := ref[1:]
	if digits[0] == 'x' || digits[0] == 'X' {
		digits = digits[1:]
		if len(digits) == 0 {
			return 0, false
		}
		for _, d := range digits {
			var v rune
			switch {
			case d >= '0' && d <= '9':
				v = rune(d - '0')
			case d >= 'a' && d <= 'f':
				v = rune(d-'a') + 10
			case d >= 'A' && d <= 'F':
				v = rune(d-'A') + 10
			default:
				return 0, false
			}
			r = r<<4 | v
			if r > utf8.MaxRune {
				return 0, false
			}
		}
	} else {
		for _, d := range digits {
			if d < '0' || d > '9' {
				return 0, false
			}
			r = r*10 + rune(d-'0')
			if r > utf8.MaxRune {
				return 0, false
			}
		}
	}
	return r, validXMLChar(r)
}

// validXMLChar implements the XML 1.0 Char production.
func validXMLChar(r rune) bool {
	switch {
	case r == '\t' || r == '\n' || r == '\r':
		return true
	case r >= 0x20 && r <= 0xD7FF:
		return true
	case r >= 0xE000 && r <= 0xFFFD:
		return true
	case r >= 0x10000 && r <= 0x10FFFF:
		return true
	}
	return false
}

// TrimSpaceBytes trims the ASCII whitespace Parse's text handling trims.
func TrimSpaceBytes(b []byte) []byte {
	for len(b) > 0 && isSpaceByte(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && isSpaceByte(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}
