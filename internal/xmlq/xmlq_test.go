package xmlq

import (
	"strings"
	"testing"
	"testing/quick"
)

const sampleWSDL = `<?xml version="1.0"?>
<definitions name="MatMul" xmlns="http://schemas.xmlsoap.org/wsdl/"
             xmlns:soap="http://schemas.xmlsoap.org/wsdl/soap/">
  <message name="getResultRequest">
    <part name="mata" type="xsd:ArrayOfDouble"/>
    <part name="matb" type="xsd:ArrayOfDouble"/>
  </message>
  <message name="getResultResponse">
    <part name="result" type="xsd:ArrayOfDouble"/>
  </message>
  <portType name="MatMulPortType">
    <operation name="getResult">
      <input message="getResultRequest"/>
      <output message="getResultResponse"/>
    </operation>
  </portType>
  <binding name="MatMulSOAPBinding" type="MatMulPortType">
    <soap:binding style="rpc" transport="http://schemas.xmlsoap.org/soap/http"/>
  </binding>
  <binding name="MatMulJavaBinding" type="MatMulPortType">
    <format>java</format>
  </binding>
  <service name="MatMulService">
    <port name="SOAPPort" binding="MatMulSOAPBinding">
      <address location="http://host:8080/matmul"/>
    </port>
    <port name="JavaPort" binding="MatMulJavaBinding">
      <address location="local:MatMul"/>
    </port>
  </service>
</definitions>`

func mustParse(t *testing.T, s string) *Node {
	t.Helper()
	n, err := ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestParseBasics(t *testing.T) {
	root := mustParse(t, sampleWSDL)
	if root.Local != "definitions" {
		t.Fatalf("root = %s", root.Local)
	}
	if got := root.AttrOr("name", ""); got != "MatMul" {
		t.Fatalf("name attr = %q", got)
	}
	if len(root.ChildrenNamed("message")) != 2 {
		t.Fatalf("messages = %d", len(root.ChildrenNamed("message")))
	}
	svc := root.Child("service")
	if svc == nil || svc.AttrOr("name", "") != "MatMulService" {
		t.Fatal("service not found")
	}
	if svc.Parent != root {
		t.Fatal("parent link broken")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"not xml at all <",
		"<a><b></a></b>",
		"<a/><b/>", // two roots
	}
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("ParseString(%q) should fail", s)
		}
	}
}

func TestTextAccumulation(t *testing.T) {
	n := mustParse(t, "<a> hello <b>inner</b> world </a>")
	if n.Text != "helloworld" {
		t.Fatalf("text = %q", n.Text)
	}
	if n.Child("b").Text != "inner" {
		t.Fatalf("inner text = %q", n.Child("b").Text)
	}
}

func TestRoundTripSerialise(t *testing.T) {
	root := mustParse(t, sampleWSDL)
	out := root.String()
	again, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, out)
	}
	if again.Count() != root.Count() {
		t.Fatalf("node count changed: %d -> %d", root.Count(), again.Count())
	}
	if again.Child("service").Children[0].AttrOr("binding", "") != "MatMulSOAPBinding" {
		t.Fatal("attribute lost in round trip")
	}
}

func TestEscaping(t *testing.T) {
	n := NewNode("a").SetText(`x < y & "z"`)
	n.SetAttr("q", `a"b<c&d`)
	again, err := ParseString(n.String())
	if err != nil {
		t.Fatal(err)
	}
	if again.Text != `x < y & "z"` {
		t.Fatalf("text = %q", again.Text)
	}
	if got := again.AttrOr("q", ""); got != `a"b<c&d` {
		t.Fatalf("attr = %q", got)
	}
}

func TestBuilderAPI(t *testing.T) {
	root := NewNode("definitions")
	root.SetAttr("name", "T")
	root.AddNew("service").SetAttr("name", "S").AddNew("port").SetAttr("name", "P")
	if root.Child("service").Child("port").AttrOr("name", "") != "P" {
		t.Fatal("builder chain failed")
	}
	if root.Child("service").Parent != root {
		t.Fatal("parent not set by Add")
	}
	p := NewNode("soap:binding")
	if p.Prefix != "soap" || p.Local != "binding" {
		t.Fatalf("prefix split: %q %q", p.Prefix, p.Local)
	}
}

func TestClone(t *testing.T) {
	root := mustParse(t, sampleWSDL)
	c := root.Clone()
	if c.Count() != root.Count() {
		t.Fatal("clone count differs")
	}
	c.Child("service").SetAttr("name", "Changed")
	if root.Child("service").AttrOr("name", "") != "MatMulService" {
		t.Fatal("clone aliases original")
	}
	if c.Child("service").Parent != c {
		t.Fatal("clone parent links broken")
	}
}

func TestQuerySelect(t *testing.T) {
	root := mustParse(t, sampleWSDL)
	cases := []struct {
		q    string
		want int
	}{
		{"/definitions", 1},
		{"/definitions/message", 2},
		{"/definitions/message/part", 3},
		{"/definitions/service/port", 2},
		{"//port", 2},
		{"//address", 2},
		{"/definitions/service[@name='MatMulService']", 1},
		{"/definitions/service[@name='Nope']", 0},
		{"/definitions/binding[@type='MatMulPortType']", 2},
		{"//port[@binding='MatMulJavaBinding']", 1},
		{"/definitions/*", 6},
		{"//operation[input]", 1},
		{"//operation[missing]", 0},
		{"//binding[format='java']", 1},
		{"//binding[format='cpp']", 0},
		{"//soap:binding", 1},
		{"/nomatch", 0},
		{"//part[@name='mata']", 1},
	}
	for _, c := range cases {
		nodes, err := SelectString(root, c.q)
		if err != nil {
			t.Errorf("query %q: %v", c.q, err)
			continue
		}
		if len(nodes) != c.want {
			t.Errorf("query %q: got %d nodes, want %d", c.q, len(nodes), c.want)
		}
	}
}

func TestQueryValues(t *testing.T) {
	root := mustParse(t, sampleWSDL)
	q, err := Compile("//port/address/@location")
	if err != nil {
		t.Fatal(err)
	}
	vals := q.Values(root)
	if len(vals) != 2 || vals[0] != "http://host:8080/matmul" || vals[1] != "local:MatMul" {
		t.Fatalf("values = %v", vals)
	}
	q2, _ := Compile("//binding/format")
	if vs := q2.Values(root); len(vs) != 1 || vs[0] != "java" {
		t.Fatalf("text values = %v", vs)
	}
}

func TestQueryMatches(t *testing.T) {
	root := mustParse(t, sampleWSDL)
	yes := []string{"//port", "/definitions/service/@name", "//soap:binding/@style"}
	no := []string{"//nothing", "//port/@nonexistent"}
	for _, s := range yes {
		q, err := Compile(s)
		if err != nil {
			t.Fatal(err)
		}
		if !q.Matches(root) {
			t.Errorf("%q should match", s)
		}
	}
	for _, s := range no {
		q, err := Compile(s)
		if err != nil {
			t.Fatal(err)
		}
		if q.Matches(root) {
			t.Errorf("%q should not match", s)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"",
		"relative/path",
		"/a/",
		"/a//",
		"/a[unterminated",
		"/a[@x=unquoted]",
		"/a[@x='mismatch\"]",
		"/a[]",
		"/a/@",
		"//",
		"/a[=v]",
		"/a[@='v']",
	}
	for _, s := range bad {
		if _, err := Compile(s); err == nil {
			t.Errorf("Compile(%q) should fail", s)
		}
	}
}

func TestDescendantDedup(t *testing.T) {
	// //a//b where nested a elements could yield the same b twice.
	root := mustParse(t, `<r><a><a><b/></a></a></r>`)
	nodes, err := SelectString(root, "//a//b")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 {
		t.Fatalf("want 1 deduped node, got %d", len(nodes))
	}
}

func TestDescendantSelfOnFirstStep(t *testing.T) {
	root := mustParse(t, `<a><a/><c><a/></c></a>`)
	nodes, err := SelectString(root, "//a")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 { // root itself + two descendants
		t.Fatalf("want 3, got %d", len(nodes))
	}
}

func TestSortChildren(t *testing.T) {
	root := mustParse(t, `<r><b name="2"/><a/><b name="1"/></r>`)
	root.SortChildren()
	got := []string{}
	for _, c := range root.Children {
		got = append(got, c.Local+c.AttrOr("name", ""))
	}
	want := []string{"a", "b1", "b2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted = %v", got)
		}
	}
}

func TestPathAndWalkPrune(t *testing.T) {
	root := mustParse(t, sampleWSDL)
	port := root.Child("service").Children[0]
	if got := port.Path(); got != "/definitions/service/port" {
		t.Fatalf("path = %q", got)
	}
	// Prune: stop descending at service; addresses must not be visited.
	visited := 0
	root.Walk(func(n *Node) bool {
		visited++
		return n.Local != "service"
	})
	if visited >= root.Count() {
		t.Fatal("walk did not prune")
	}
}

func TestPropertyEscapeRoundTrip(t *testing.T) {
	f := func(text string) bool {
		// Strip control chars the XML parser legitimately rejects.
		clean := strings.Map(func(r rune) rune {
			if r < 0x20 && r != '\t' && r != '\n' && r != '\r' {
				return -1
			}
			if r == 0xFFFE || r == 0xFFFF || (r >= 0xD800 && r <= 0xDFFF) {
				return -1
			}
			return r
		}, text)
		n := NewNode("t").SetText(clean)
		again, err := ParseString(n.String())
		if err != nil {
			return false
		}
		// Serialiser trims whitespace-only text and the parser trims
		// surrounding space, so compare trimmed forms.
		return again.Text == strings.Join(strings.Fields(clean), "") ||
			again.Text == strings.TrimSpace(clean)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
