package xmlq

import (
	"fmt"
	"strings"
)

// Query is a compiled path query. Compile once, run against many documents
// — the registry compiles each inquiry once and evaluates it over every
// candidate WSDL document.
type Query struct {
	src   string
	steps []step
	// attr, when non-empty, selects the named attribute of the final
	// element set instead of the elements themselves.
	attr string
}

type step struct {
	// descendant selects descendant-or-self rather than direct children.
	descendant bool
	// name is the element local name to match; "*" matches any element.
	name string
	// prefix, when non-empty, additionally constrains the written prefix.
	prefix string
	preds  []predicate
}

type predicate struct {
	// attribute predicate: [@name='v'] (value check) or [@name] (presence)
	isAttr bool
	name   string
	// hasValue distinguishes presence tests from equality tests.
	hasValue bool
	value    string
}

// Compile parses a path query. See the package comment for the grammar.
func Compile(src string) (*Query, error) {
	q := &Query{src: src}
	s := strings.TrimSpace(src)
	if s == "" {
		return nil, fmt.Errorf("xmlq: empty query")
	}
	if !strings.HasPrefix(s, "/") {
		return nil, fmt.Errorf("xmlq: query must be absolute (start with /): %q", src)
	}
	for len(s) > 0 {
		desc := false
		if strings.HasPrefix(s, "//") {
			desc = true
			s = s[2:]
		} else if strings.HasPrefix(s, "/") {
			s = s[1:]
		} else {
			return nil, fmt.Errorf("xmlq: expected / in %q", src)
		}
		if s == "" {
			return nil, fmt.Errorf("xmlq: trailing slash in %q", src)
		}
		// Terminal attribute selection: .../@attr
		if strings.HasPrefix(s, "@") {
			q.attr = s[1:]
			if q.attr == "" || strings.ContainsAny(q.attr, "/[]") {
				return nil, fmt.Errorf("xmlq: bad attribute selector in %q", src)
			}
			return q, nil
		}
		st := step{descendant: desc}
		// Element name up to '[' or '/'.
		i := strings.IndexAny(s, "[/")
		var name string
		if i < 0 {
			name, s = s, ""
		} else if s[i] == '[' {
			name, s = s[:i], s[i:]
		} else {
			name, s = s[:i], s[i:]
		}
		if name == "" {
			return nil, fmt.Errorf("xmlq: empty step in %q", src)
		}
		if j := strings.IndexByte(name, ':'); j >= 0 {
			st.prefix, st.name = name[:j], name[j+1:]
		} else {
			st.name = name
		}
		// Predicates.
		for strings.HasPrefix(s, "[") {
			end := strings.IndexByte(s, ']')
			if end < 0 {
				return nil, fmt.Errorf("xmlq: unterminated predicate in %q", src)
			}
			body := s[1:end]
			s = s[end+1:]
			p, err := parsePredicate(body, src)
			if err != nil {
				return nil, err
			}
			st.preds = append(st.preds, p)
		}
		q.steps = append(q.steps, st)
	}
	if len(q.steps) == 0 {
		return nil, fmt.Errorf("xmlq: no steps in %q", src)
	}
	return q, nil
}

func parsePredicate(body, src string) (predicate, error) {
	body = strings.TrimSpace(body)
	if body == "" {
		return predicate{}, fmt.Errorf("xmlq: empty predicate in %q", src)
	}
	p := predicate{}
	if strings.HasPrefix(body, "@") {
		p.isAttr = true
		body = body[1:]
	}
	if eq := strings.IndexByte(body, '='); eq >= 0 {
		p.name = strings.TrimSpace(body[:eq])
		val := strings.TrimSpace(body[eq+1:])
		if len(val) < 2 || (val[0] != '\'' && val[0] != '"') || val[len(val)-1] != val[0] {
			return predicate{}, fmt.Errorf("xmlq: predicate value must be quoted in %q", src)
		}
		p.hasValue = true
		p.value = val[1 : len(val)-1]
	} else {
		p.name = body
	}
	if p.name == "" {
		return predicate{}, fmt.Errorf("xmlq: predicate missing name in %q", src)
	}
	return p, nil
}

// String returns the original query source.
func (q *Query) String() string { return q.src }

// Select returns the element nodes matched by the query, in document
// order, rooted at root (the root element counts as the first step's
// candidate, matching the conventional /rootname/... addressing).
func (q *Query) Select(root *Node) []*Node {
	if root == nil {
		return nil
	}
	cur := []*Node{}
	// Step 0 applies to the root element itself.
	first := q.steps[0]
	if first.descendant {
		root.Walk(func(n *Node) bool {
			if first.match(n) {
				cur = append(cur, n)
			}
			return true
		})
	} else if first.match(root) {
		cur = append(cur, root)
	}
	for _, st := range q.steps[1:] {
		var next []*Node
		for _, n := range cur {
			if st.descendant {
				for _, c := range n.Children {
					c.Walk(func(d *Node) bool {
						if st.match(d) {
							next = append(next, d)
						}
						return true
					})
				}
			} else {
				for _, c := range n.Children {
					if st.match(c) {
						next = append(next, c)
					}
				}
			}
		}
		cur = dedup(next)
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

// Values evaluates the query and returns string results: attribute values
// when the query ends in /@attr, otherwise the text content of matched
// elements.
func (q *Query) Values(root *Node) []string {
	nodes := q.Select(root)
	var out []string
	for _, n := range nodes {
		if q.attr != "" {
			if v, ok := n.Attr(q.attr); ok {
				out = append(out, v)
			}
		} else {
			out = append(out, n.Text)
		}
	}
	return out
}

// Matches reports whether the query selects at least one result in root.
func (q *Query) Matches(root *Node) bool {
	nodes := q.Select(root)
	if q.attr == "" {
		return len(nodes) > 0
	}
	for _, n := range nodes {
		if _, ok := n.Attr(q.attr); ok {
			return true
		}
	}
	return false
}

func (st step) match(n *Node) bool {
	if st.name != "*" && st.name != n.Local {
		return false
	}
	if st.prefix != "" && st.prefix != n.Prefix {
		return false
	}
	for _, p := range st.preds {
		if !p.match(n) {
			return false
		}
	}
	return true
}

func (p predicate) match(n *Node) bool {
	if p.isAttr {
		v, ok := n.Attr(p.name)
		if !ok {
			return false
		}
		return !p.hasValue || v == p.value
	}
	// Child element predicate.
	for _, c := range n.Children {
		if c.Local == p.name {
			if !p.hasValue || c.Text == p.value {
				return true
			}
		}
	}
	return false
}

func dedup(nodes []*Node) []*Node {
	seen := make(map[*Node]bool, len(nodes))
	out := nodes[:0]
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// SelectString is a convenience that compiles and evaluates a query,
// returning the matched nodes. It is intended for tests and one-off
// lookups; hot paths should Compile once.
func SelectString(root *Node, query string) ([]*Node, error) {
	q, err := Compile(query)
	if err != nil {
		return nil, err
	}
	return q.Select(root), nil
}

// First returns the first node selected by query, or nil.
func First(root *Node, query string) (*Node, error) {
	nodes, err := SelectString(root, query)
	if err != nil {
		return nil, err
	}
	if len(nodes) == 0 {
		return nil, nil
	}
	return nodes[0], nil
}
