// Package xmlq provides a generic XML document model (a small DOM) and a
// path-query language over it. The HARNESS II design calls for "a
// registry/lookup framework based on the capability of querying XML
// documents (actually WSDL descriptions) for specific nodes and values",
// mapping generic framework queries onto concrete lookup systems; xmlq is
// that capability.
//
// The query language is a deliberately small XPath subset sufficient for
// WSDL and UDDI documents:
//
//	/definitions/service/port          child steps
//	//address                          descendant-or-self step
//	/service[@name='MatMul']           attribute equality predicate
//	/port[binding]                     child-existence predicate
//	/port/@location                    terminal attribute selection
//	/types/*                           wildcard element step
//
// Namespace prefixes are matched against local names; a step "soap:binding"
// matches an element whose local name is "binding" and whose prefix is
// "soap", while a step "binding" matches any prefix.
package xmlq

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Node is one element of an XML document tree.
type Node struct {
	// Space is the resolved namespace URI (may be empty), Prefix the
	// original prefix as written, Local the local element name.
	Space  string
	Prefix string
	Local  string
	Attrs  []Attr
	// Text is the concatenated character data directly inside this
	// element (not including descendants').
	Text     string
	Children []*Node
	Parent   *Node
}

// Attr is a single XML attribute.
type Attr struct {
	Space string
	Local string
	Value string
}

// NewNode returns an element node with the given name. A name of the form
// "prefix:local" is split into prefix and local parts.
func NewNode(name string) *Node {
	n := &Node{}
	if i := strings.IndexByte(name, ':'); i >= 0 {
		n.Prefix, n.Local = name[:i], name[i+1:]
	} else {
		n.Local = name
	}
	return n
}

// Name returns the node's name as written, including any prefix.
func (n *Node) Name() string {
	if n.Prefix != "" {
		return n.Prefix + ":" + n.Local
	}
	return n.Local
}

// SetAttr sets (or replaces) an attribute by local name.
func (n *Node) SetAttr(local, value string) *Node {
	for i := range n.Attrs {
		if n.Attrs[i].Local == local {
			n.Attrs[i].Value = value
			return n
		}
	}
	n.Attrs = append(n.Attrs, Attr{Local: local, Value: value})
	return n
}

// Attr returns the value of the attribute with the given local name.
func (n *Node) Attr(local string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Local == local {
			return a.Value, true
		}
	}
	return "", false
}

// AttrOr returns the attribute value or def when absent.
func (n *Node) AttrOr(local, def string) string {
	if v, ok := n.Attr(local); ok {
		return v
	}
	return def
}

// Add appends child and returns n for chaining.
func (n *Node) Add(child *Node) *Node {
	child.Parent = n
	n.Children = append(n.Children, child)
	return n
}

// AddNew creates a child element with the given name and returns the child.
func (n *Node) AddNew(name string) *Node {
	c := NewNode(name)
	n.Add(c)
	return c
}

// SetText sets the node's direct character data.
func (n *Node) SetText(s string) *Node {
	n.Text = s
	return n
}

// Child returns the first direct child whose local name matches.
func (n *Node) Child(local string) *Node {
	for _, c := range n.Children {
		if c.Local == local {
			return c
		}
	}
	return nil
}

// ChildrenNamed returns all direct children with the given local name.
func (n *Node) ChildrenNamed(local string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Local == local {
			out = append(out, c)
		}
	}
	return out
}

// Walk visits n and every descendant in document order. Returning false
// from fn prunes the subtree below the visited node.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Count returns the number of element nodes in the subtree rooted at n.
func (n *Node) Count() int {
	total := 0
	n.Walk(func(*Node) bool { total++; return true })
	return total
}

// Path returns the absolute element path of n, e.g. /definitions/service.
func (n *Node) Path() string {
	if n.Parent == nil {
		return "/" + n.Local
	}
	return n.Parent.Path() + "/" + n.Local
}

// Clone returns a deep copy of the subtree rooted at n with Parent links
// rebuilt; the copy's Parent is nil.
func (n *Node) Clone() *Node {
	c := &Node{Space: n.Space, Prefix: n.Prefix, Local: n.Local, Text: n.Text}
	c.Attrs = append([]Attr(nil), n.Attrs...)
	for _, ch := range n.Children {
		cc := ch.Clone()
		cc.Parent = c
		c.Children = append(c.Children, cc)
	}
	return c
}

// Parse reads an XML document from r into a Node tree. Character data is
// trimmed of surrounding whitespace; comments and processing instructions
// are dropped.
func Parse(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	var root *Node
	var cur *Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlq: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Space: t.Name.Space, Local: t.Name.Local, Parent: cur}
			// Namespace declarations are kept as ordinary attributes so
			// round-tripped documents remain self-describing.
			for _, a := range t.Attr {
				n.Attrs = append(n.Attrs, Attr{Space: a.Name.Space, Local: a.Name.Local, Value: a.Value})
			}
			// encoding/xml resolves prefixes to URIs; recover the written
			// prefix from in-scope xmlns:foo declarations so prefixed query
			// steps (e.g. //soap:binding) keep working on parsed documents.
			if n.Space != "" {
				n.Prefix = prefixFor(n, n.Space)
			}
			if cur == nil {
				if root != nil {
					return nil, fmt.Errorf("xmlq: multiple document roots")
				}
				root = n
			} else {
				cur.Children = append(cur.Children, n)
			}
			cur = n
		case xml.EndElement:
			if cur == nil {
				return nil, fmt.Errorf("xmlq: unbalanced end element %s", t.Name.Local)
			}
			cur = cur.Parent
		case xml.CharData:
			if cur != nil {
				if s := strings.TrimSpace(string(t)); s != "" {
					if cur.Text != "" {
						cur.Text += s
					} else {
						cur.Text = s
					}
				}
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmlq: empty document")
	}
	return root, nil
}

// prefixFor finds the prefix bound to the namespace URI uri by the nearest
// enclosing xmlns:prefix declaration, searching n then its ancestors. A
// default-namespace binding (plain xmlns=) yields the empty prefix.
func prefixFor(n *Node, uri string) string {
	for cur := n; cur != nil; cur = cur.Parent {
		for _, a := range cur.Attrs {
			if a.Space == "xmlns" && a.Value == uri {
				return a.Local
			}
			if a.Space == "" && a.Local == "xmlns" && a.Value == uri {
				return ""
			}
		}
	}
	return ""
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*Node, error) { return Parse(strings.NewReader(s)) }

// Encode serialises the subtree rooted at n as indented XML.
func (n *Node) Encode(w io.Writer) error {
	return n.write(w, 0)
}

func (n *Node) write(w io.Writer, depth int) error {
	indent := strings.Repeat("  ", depth)
	attrs := &strings.Builder{}
	for _, a := range n.Attrs {
		name := a.Local
		if a.Space != "" {
			// Re-qualify xmlns declarations and prefixed attributes.
			if a.Space == "xmlns" {
				name = "xmlns:" + a.Local
			} else {
				name = a.Space + ":" + a.Local
			}
		}
		fmt.Fprintf(attrs, " %s=%q", name, escapeAttr(a.Value))
	}
	if len(n.Children) == 0 && n.Text == "" {
		_, err := fmt.Fprintf(w, "%s<%s%s/>\n", indent, n.Name(), attrs)
		return err
	}
	if len(n.Children) == 0 {
		_, err := fmt.Fprintf(w, "%s<%s%s>%s</%s>\n", indent, n.Name(), attrs, escapeText(n.Text), n.Name())
		return err
	}
	if _, err := fmt.Fprintf(w, "%s<%s%s>\n", indent, n.Name(), attrs); err != nil {
		return err
	}
	if n.Text != "" {
		if _, err := fmt.Fprintf(w, "%s  %s\n", indent, escapeText(n.Text)); err != nil {
			return err
		}
	}
	for _, c := range n.Children {
		if err := c.write(w, depth+1); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s</%s>\n", indent, n.Name())
	return err
}

// String serialises the subtree as indented XML text.
func (n *Node) String() string {
	var b strings.Builder
	_ = n.Encode(&b)
	return b.String()
}

func escapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

func escapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", `"`, "&quot;")
	return r.Replace(s)
}

// SortChildren orders the direct children of n by (Local, name attribute),
// providing a canonical form for structural comparison in tests.
func (n *Node) SortChildren() {
	sort.SliceStable(n.Children, func(i, j int) bool {
		a, b := n.Children[i], n.Children[j]
		if a.Local != b.Local {
			return a.Local < b.Local
		}
		return a.AttrOr("name", "") < b.AttrOr("name", "")
	})
}
