package resilience

import (
	"harness2/internal/telemetry"
)

// This file holds the resilience plane's instrument sets (telemetry S27).
// Every retry, hedge launch, hedge win, breaker transition, breaker
// refusal and shed request emits a series here; all handles are nil-safe,
// so a policy built over telemetry.Disabled() pays a branch per event.

// policyMetrics is the client-side instrument set shared by every policy
// execution path.
type policyMetrics struct {
	retries     *telemetry.CounterVec // op: re-attempts after a failure
	successes   *telemetry.CounterVec // op
	failures    *telemetry.CounterVec // op x kind: terminal-or-not attempt failures
	exhausteds  *telemetry.CounterVec // op: Execute gave up
	hedges      *telemetry.CounterVec // op: secondary racers launched
	hedgeWins   *telemetry.CounterVec // op: a secondary racer won
	refusals    *telemetry.CounterVec // op: breaker refused an attempt
	transitions *telemetry.CounterVec // endpoint x to-state
	openGauge   *telemetry.Gauge      // breakers currently open
}

func newPolicyMetrics(r *telemetry.Registry) policyMetrics {
	r.Help("harness_resilience_retries_total", "re-attempts after a failed attempt by op")
	r.Help("harness_resilience_success_total", "policy executions that returned success by op")
	r.Help("harness_resilience_attempt_failures_total", "failed attempts by op and error kind")
	r.Help("harness_resilience_exhausted_total", "policy executions that gave up by op")
	r.Help("harness_resilience_hedges_total", "hedged (secondary) attempts launched by op")
	r.Help("harness_resilience_hedge_wins_total", "hedged attempts that won the race by op")
	r.Help("harness_resilience_breaker_refusals_total", "attempts refused by an open breaker by op")
	r.Help("harness_resilience_breaker_transitions_total", "breaker state changes by endpoint and new state")
	r.Help("harness_resilience_breakers_open", "circuit breakers currently open")
	return policyMetrics{
		retries:     r.CounterVec("harness_resilience_retries_total", "op"),
		successes:   r.CounterVec("harness_resilience_success_total", "op"),
		failures:    r.CounterVec("harness_resilience_attempt_failures_total", "op_kind"),
		exhausteds:  r.CounterVec("harness_resilience_exhausted_total", "op"),
		hedges:      r.CounterVec("harness_resilience_hedges_total", "op"),
		hedgeWins:   r.CounterVec("harness_resilience_hedge_wins_total", "op"),
		refusals:    r.CounterVec("harness_resilience_breaker_refusals_total", "op"),
		transitions: r.CounterVec("harness_resilience_breaker_transitions_total", "endpoint_state"),
		openGauge:   r.Gauge("harness_resilience_breakers_open"),
	}
}

func (m *policyMetrics) retry(op string) { m.retries.With(op).Inc() }
func (m *policyMetrics) hedge(op string) { m.hedges.With(op).Inc() }
func (m *policyMetrics) hedgeWin(op string) {
	m.hedgeWins.With(op).Inc()
}
func (m *policyMetrics) breakerRefusal(op string) { m.refusals.With(op).Inc() }
func (m *policyMetrics) exhausted(op string)      { m.exhausteds.With(op).Inc() }

func (m *policyMetrics) success(op string, attempt int) {
	m.successes.With(op).Inc()
}

func (m *policyMetrics) failure(op string, kind ErrorKind) {
	m.failures.With(op + "|" + kind.String()).Inc()
}

// breakerTransition records a state change and maintains the open-breaker
// gauge.
func (m *policyMetrics) breakerTransition(endpoint string, from, to BreakerState) {
	m.transitions.With(endpoint + "|" + to.String()).Inc()
	if to == BreakerOpen {
		m.openGauge.Inc()
	} else if from == BreakerOpen {
		m.openGauge.Dec()
	}
}

// limiterMetrics is the server-side admission-control instrument set.
type limiterMetrics struct {
	admitted   *telemetry.Counter
	shed       *telemetry.Counter
	inflight   *telemetry.Gauge
	queueDepth *telemetry.Gauge
}

func newLimiterMetrics(r *telemetry.Registry, server string) limiterMetrics {
	r.Help("harness_admission_admitted_total", "requests admitted by server")
	r.Help("harness_admission_shed_total", "requests shed (Overloaded) by server")
	r.Help("harness_admission_inflight", "admitted requests currently executing by server")
	r.Help("harness_admission_queue_depth", "requests waiting for admission by server")
	return limiterMetrics{
		admitted:   r.Counter("harness_admission_admitted_total", "server", server),
		shed:       r.Counter("harness_admission_shed_total", "server", server),
		inflight:   r.Gauge("harness_admission_inflight", "server", server),
		queueDepth: r.Gauge("harness_admission_queue_depth", "server", server),
	}
}
