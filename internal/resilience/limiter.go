package resilience

import (
	"context"
	"sync/atomic"
	"time"

	"harness2/internal/telemetry"
)

// Limiter is server-side admission control: a hard concurrency limit plus
// a bounded wait queue with a maximum queueing delay. Requests beyond
// both bounds are shed immediately with ErrOverloaded — the distinguished
// fault clients classify as retryable-elsewhere — which keeps an
// overloaded container's latency bounded instead of letting its queue
// grow without limit (the paper's containers run on shared, oversubscribed
// grid nodes; shedding is what makes "overloaded" a recoverable state).
//
// A nil *Limiter admits everything at the cost of one branch, following
// the telemetry plane's nil-safety idiom, so admission control can stay
// compiled into every server binding permanently.
type Limiter struct {
	sem      chan struct{}
	maxQueue int64
	maxWait  time.Duration
	queued   atomic.Int64

	met limiterMetrics
}

// NewLimiter builds a limiter admitting maxConcurrent requests at once,
// queueing at most maxQueue more for up to maxWait each. maxConcurrent
// < 1 is clamped to 1; maxQueue < 0 to 0; maxWait <= 0 means queued
// requests wait only for their caller's context.
func NewLimiter(maxConcurrent, maxQueue int, maxWait time.Duration) *Limiter {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Limiter{
		sem:      make(chan struct{}, maxConcurrent),
		maxQueue: int64(maxQueue),
		maxWait:  maxWait,
	}
}

// SetTelemetry labels and registers the limiter's instrument set on r
// under the given server name (e.g. "xdr-server"). Call before traffic.
func (l *Limiter) SetTelemetry(r *telemetry.Registry, server string) *Limiter {
	if l != nil {
		l.met = newLimiterMetrics(telemetry.Or(r), server)
	}
	return l
}

// Acquire admits the request or sheds it. On success the returned release
// must be called exactly once when the request finishes. On shed the
// error is ErrOverloaded (possibly wrapped); release is nil.
func (l *Limiter) Acquire(ctx context.Context) (release func(), err error) {
	if l == nil {
		return func() {}, nil
	}
	// Fast path: a free slot.
	select {
	case l.sem <- struct{}{}:
		l.admitted()
		return l.release, nil
	default:
	}
	// Saturated: join the bounded queue or shed.
	if q := l.queued.Add(1); q > l.maxQueue {
		l.queued.Add(-1)
		l.met.shed.Inc()
		return nil, ErrOverloaded
	}
	l.met.queueDepth.Inc()
	defer func() {
		l.queued.Add(-1)
		l.met.queueDepth.Dec()
	}()

	var timeout <-chan time.Time
	if l.maxWait > 0 {
		t := time.NewTimer(l.maxWait)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case l.sem <- struct{}{}:
		l.admitted()
		return l.release, nil
	case <-timeout:
		l.met.shed.Inc()
		return nil, ErrOverloaded
	case <-ctx.Done():
		l.met.shed.Inc()
		return nil, ctx.Err()
	}
}

func (l *Limiter) admitted() {
	l.met.admitted.Inc()
	l.met.inflight.Inc()
}

func (l *Limiter) release() {
	<-l.sem
	l.met.inflight.Dec()
}

// InFlight reports the number of admitted, unfinished requests.
func (l *Limiter) InFlight() int {
	if l == nil {
		return 0
	}
	return len(l.sem)
}

// Queued reports the number of requests waiting for admission.
func (l *Limiter) Queued() int {
	if l == nil {
		return 0
	}
	return int(l.queued.Load())
}
