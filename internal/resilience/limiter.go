package resilience

import (
	"context"
	"sync/atomic"
	"time"

	"harness2/internal/telemetry"
)

// Limiter is server-side admission control: a hard concurrency limit plus
// a bounded wait queue with a maximum queueing delay. Requests beyond
// both bounds are shed immediately with ErrOverloaded — the distinguished
// fault clients classify as retryable-elsewhere — which keeps an
// overloaded container's latency bounded instead of letting its queue
// grow without limit (the paper's containers run on shared, oversubscribed
// grid nodes; shedding is what makes "overloaded" a recoverable state).
//
// A nil *Limiter admits everything at the cost of one branch, following
// the telemetry plane's nil-safety idiom, so admission control can stay
// compiled into every server binding permanently.
//
// The admission fast path is lock-free (S34): admit is one CAS on the
// in-flight counter, release one atomic decrement — the per-frame XDR
// and shm servers call Acquire on every request, and the old buffered-
// channel semaphore serialized all of them on the channel's internal
// mutex. Waiters park on a one-slot wake channel; each release passes a
// wake signal when the queue is non-empty, and a woken waiter that finds
// spare capacity cascades the signal so no release is ever lost.
type Limiter struct {
	limit    int64
	inflight atomic.Int64
	queued   atomic.Int64
	wake     chan struct{} // cap 1: release → waiter handoff hint
	maxQueue int64
	maxWait  time.Duration

	// releaseFn is the prebound release handed to every admitted caller,
	// so the fast path does not allocate a fresh method value per admit.
	releaseFn func()

	met limiterMetrics
}

// noopRelease is what the nil limiter hands out.
var noopRelease = func() {}

// NewLimiter builds a limiter admitting maxConcurrent requests at once,
// queueing at most maxQueue more for up to maxWait each. maxConcurrent
// < 1 is clamped to 1; maxQueue < 0 to 0; maxWait <= 0 means queued
// requests wait only for their caller's context.
func NewLimiter(maxConcurrent, maxQueue int, maxWait time.Duration) *Limiter {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	l := &Limiter{
		limit:    int64(maxConcurrent),
		wake:     make(chan struct{}, 1),
		maxQueue: int64(maxQueue),
		maxWait:  maxWait,
	}
	l.releaseFn = l.release
	return l
}

// tryAcquire claims a concurrency slot by CAS, without blocking.
func (l *Limiter) tryAcquire() bool {
	for {
		n := l.inflight.Load()
		if n >= l.limit {
			return false
		}
		if l.inflight.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// signal hands one wake hint to a parked waiter; a full buffer means a
// hint is already pending and the extra one is cascaded by the waiter
// that consumes it (see Acquire).
func (l *Limiter) signal() {
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// SetTelemetry labels and registers the limiter's instrument set on r
// under the given server name (e.g. "xdr-server"). Call before traffic.
func (l *Limiter) SetTelemetry(r *telemetry.Registry, server string) *Limiter {
	if l != nil {
		l.met = newLimiterMetrics(telemetry.Or(r), server)
	}
	return l
}

// Acquire admits the request or sheds it. On success the returned release
// must be called exactly once when the request finishes. On shed the
// error is ErrOverloaded (possibly wrapped); release is nil.
func (l *Limiter) Acquire(ctx context.Context) (release func(), err error) {
	if l == nil {
		return noopRelease, nil
	}
	// Fast path: one CAS.
	if l.tryAcquire() {
		l.admitted()
		return l.releaseFn, nil
	}
	// Saturated: join the bounded queue or shed.
	if q := l.queued.Add(1); q > l.maxQueue {
		l.queued.Add(-1)
		l.met.shed.Inc()
		return nil, ErrOverloaded
	}
	l.met.queueDepth.Inc()
	defer func() {
		l.queued.Add(-1)
		l.met.queueDepth.Dec()
	}()

	var timeout <-chan time.Time
	if l.maxWait > 0 {
		t := time.NewTimer(l.maxWait)
		defer t.Stop()
		timeout = t.C
	}
	for {
		// Retry BEFORE parking, now that we are visibly queued: a release
		// between the failed fast path and queued.Add already signalled or
		// will see queued > 0 — and seq-cst ordering forbids both our retry
		// missing its decrement and its check missing our increment.
		if l.tryAcquire() {
			l.admitted()
			// Cascade: if capacity remains for the waiters behind us (we
			// are still counted in queued, hence > 1), pass the hint on —
			// the one-slot wake buffer may have merged several releases.
			if l.queued.Load() > 1 && l.inflight.Load() < l.limit {
				l.signal()
			}
			return l.releaseFn, nil
		}
		select {
		case <-l.wake:
		case <-timeout:
			l.met.shed.Inc()
			return nil, ErrOverloaded
		case <-ctx.Done():
			l.met.shed.Inc()
			return nil, ctx.Err()
		}
	}
}

func (l *Limiter) admitted() {
	l.met.admitted.Inc()
	l.met.inflight.Inc()
}

func (l *Limiter) release() {
	l.inflight.Add(-1)
	l.met.inflight.Dec()
	if l.queued.Load() > 0 {
		l.signal()
	}
}

// InFlight reports the number of admitted, unfinished requests.
func (l *Limiter) InFlight() int {
	if l == nil {
		return 0
	}
	return int(l.inflight.Load())
}

// Queued reports the number of requests waiting for admission.
func (l *Limiter) Queued() int {
	if l == nil {
		return 0
	}
	return int(l.queued.Load())
}
