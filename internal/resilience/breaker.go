package resilience

import (
	"sync"
	"time"
)

// BreakerState is the classic three-state circuit-breaker automaton.
type BreakerState int

const (
	// BreakerClosed admits every request (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses every request until the cooldown elapses: the
	// endpoint failed threshold consecutive times, so hammering it only
	// wastes the caller's budget and the server's recovery headroom.
	BreakerOpen
	// BreakerHalfOpen admits exactly one probe; its outcome decides
	// between closing (success) and re-opening (failure).
	BreakerHalfOpen
)

// String implements fmt.Stringer; the names label telemetry series.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// Breaker is a per-endpoint circuit breaker. The zero value is not ready;
// use NewBreaker. A nil *Breaker is a valid no-op that admits everything
// — the policy hands out nil breakers when breakers are not configured,
// keeping the disabled path a single branch.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	// onTransition, when set, observes every state change (telemetry).
	// It is called without the lock held.
	onTransition func(from, to BreakerState)

	mu       sync.Mutex
	state    BreakerState
	fails    int // consecutive failures while closed
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

// NewBreaker returns a closed breaker that opens after threshold
// consecutive failures and half-opens after cooldown.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// State reports the current state (after lazily applying the cooldown
// transition). The nil breaker reports BreakerClosed.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether a request may be sent now. In the open state the
// cooldown is checked: once elapsed, the breaker half-opens and admits a
// single probe; concurrent callers are refused until the probe reports.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	var transition func()
	allowed := false
	switch b.state {
	case BreakerClosed:
		allowed = true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			transition = b.setStateLocked(BreakerHalfOpen)
			b.probing = true
			allowed = true
		}
	case BreakerHalfOpen:
		if !b.probing {
			b.probing = true
			allowed = true
		}
	}
	b.mu.Unlock()
	if transition != nil {
		transition()
	}
	return allowed
}

// Report records the outcome of an admitted request. Failures whose kind
// is the caller's own cancellation do not count against the endpoint.
func (b *Breaker) Report(err error) {
	if b == nil {
		return
	}
	if err != nil && Classify(err) == KindCanceled {
		return // the caller gave up; says nothing about the endpoint
	}
	b.mu.Lock()
	var transition func()
	switch {
	case err == nil:
		b.fails = 0
		if b.state != BreakerClosed {
			transition = b.setStateLocked(BreakerClosed)
		}
		b.probing = false
	case b.state == BreakerHalfOpen:
		// The probe failed: back to open, cooldown restarts.
		transition = b.setStateLocked(BreakerOpen)
		b.openedAt = b.now()
		b.probing = false
	case b.state == BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			transition = b.setStateLocked(BreakerOpen)
			b.openedAt = b.now()
		}
	}
	b.mu.Unlock()
	if transition != nil {
		transition()
	}
}

// setStateLocked changes state and returns the deferred notification
// callback (run outside the lock). Callers hold b.mu.
func (b *Breaker) setStateLocked(to BreakerState) func() {
	from := b.state
	b.state = to
	if b.onTransition == nil || from == to {
		return nil
	}
	cb := b.onTransition
	return func() { cb(from, to) }
}
