package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

// clockAt returns a breaker with a mutable test clock.
func breakerAt(threshold int, cooldown time.Duration) (*Breaker, *time.Time) {
	now := time.Unix(0, 0)
	b := NewBreaker(threshold, cooldown)
	b.now = func() time.Time { return now }
	return b, &now
}

func TestNilBreaker(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker must allow")
	}
	b.Report(errors.New("x")) // must not panic
	if b.State() != BreakerClosed {
		t.Fatal("nil breaker reports closed")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b, now := breakerAt(3, time.Second)
	if b.State() != BreakerClosed {
		t.Fatal("new breaker must be closed")
	}
	// Two failures: still closed (threshold 3).
	b.Report(errors.New("f1"))
	b.Report(errors.New("f2"))
	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("below threshold must stay closed")
	}
	// A success resets the streak.
	b.Report(nil)
	b.Report(errors.New("f1"))
	b.Report(errors.New("f2"))
	if b.State() != BreakerClosed {
		t.Fatal("success must reset the failure streak")
	}
	// Third consecutive failure opens.
	b.Report(errors.New("f3"))
	if b.State() != BreakerOpen {
		t.Fatal("threshold reached must open")
	}
	if b.Allow() {
		t.Fatal("open breaker must refuse")
	}
	// Cooldown elapses: exactly one probe is admitted.
	*now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed must admit the probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second caller must be refused while the probe is in flight")
	}
	// Probe fails: reopen, cooldown restarts.
	b.Report(errors.New("probe failed"))
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("failed probe must reopen")
	}
	// Second probe succeeds: closed again.
	*now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("second probe must be admitted")
	}
	b.Report(nil)
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("successful probe must close")
	}
}

func TestBreakerIgnoresCallerCancellation(t *testing.T) {
	b, _ := breakerAt(1, time.Second)
	b.Report(context.Canceled)
	b.Report(context.DeadlineExceeded)
	if b.State() != BreakerClosed {
		t.Fatal("caller cancellation must not count against the endpoint")
	}
}

func TestBreakerTransitionCallback(t *testing.T) {
	b, now := breakerAt(1, time.Second)
	type tr struct{ from, to BreakerState }
	var seen []tr
	b.onTransition = func(from, to BreakerState) { seen = append(seen, tr{from, to}) }

	b.Report(errors.New("f")) // closed -> open
	*now = now.Add(time.Second)
	b.Allow()     // open -> half-open
	b.Report(nil) // half-open -> closed
	want := []tr{
		{BreakerClosed, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerClosed},
	}
	if len(seen) != len(want) {
		t.Fatalf("transitions = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, seen[i], want[i])
		}
	}
}

func TestBreakerStateString(t *testing.T) {
	if BreakerClosed.String() != "closed" || BreakerOpen.String() != "open" ||
		BreakerHalfOpen.String() != "half-open" {
		t.Fatal("breaker state names are telemetry labels; do not change casually")
	}
}
