package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want ErrorKind
	}{
		{"nil", nil, KindUnknown},
		{"plain", errors.New("boom"), KindUnknown},
		{"marked-transient", MarkTransient(errors.New("x")), KindTransient},
		{"marked-permanent", MarkPermanent(errors.New("x")), KindPermanent},
		{"marked-unsent", MarkUnsent(errors.New("x")), KindTransient},
		{"wrapped-mark", fmt.Errorf("outer: %w", MarkPermanent(errors.New("x"))), KindPermanent},
		{"canceled", context.Canceled, KindCanceled},
		{"deadline", context.DeadlineExceeded, KindCanceled},
		{"overloaded", ErrOverloaded, KindOverloaded},
		{"breaker", ErrBreakerOpen, KindBreakerOpen},
		{"eof", io.EOF, KindTransient},
		{"unexpected-eof", io.ErrUnexpectedEOF, KindTransient},
		{"closed-pipe", io.ErrClosedPipe, KindTransient},
		{"net-closed", net.ErrClosed, KindTransient},
		{"econnrefused", syscall.ECONNREFUSED, KindTransient},
		{"econnreset", fmt.Errorf("dial: %w", syscall.ECONNRESET), KindTransient},
		{"epipe", syscall.EPIPE, KindTransient},
		{"etimedout", syscall.ETIMEDOUT, KindTransient},
		// Wire-crossing string forms: faults stringify over SOAP/XDR hops.
		{"overloaded-string", errors.New("soap fault: " + OverloadedToken + ": shed"), KindOverloaded},
		{"refused-string", errors.New("dial tcp 1.2.3.4:9: connection refused"), KindTransient},
		{"reset-string", errors.New("read: connection reset by peer"), KindTransient},
		{"pipe-string", errors.New("write: broken pipe"), KindTransient},
		{"closed-net-string", errors.New("use of closed network connection"), KindTransient},
		{"simnet-drop-string", errors.New("simnet: message dropped"), KindTransient},
		{"xdr-closed-string", errors.New("xdr connection closed"), KindTransient},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
}

type fakeTimeout struct{ timeout bool }

func (f *fakeTimeout) Error() string   { return "fake net error" }
func (f *fakeTimeout) Timeout() bool   { return f.timeout }
func (f *fakeTimeout) Temporary() bool { return false }

func TestClassifyNetTimeout(t *testing.T) {
	if got := Classify(&fakeTimeout{timeout: true}); got != KindTransient {
		t.Fatalf("net timeout: Classify = %v, want transient", got)
	}
	if got := Classify(&fakeTimeout{timeout: false}); got != KindUnknown {
		t.Fatalf("net non-timeout: Classify = %v, want unknown", got)
	}
}

func TestMarksNilPassThrough(t *testing.T) {
	if MarkTransient(nil) != nil || MarkPermanent(nil) != nil || MarkUnsent(nil) != nil {
		t.Fatal("marks must pass nil through")
	}
}

func TestUnsent(t *testing.T) {
	base := errors.New("conn died")
	if IsUnsent(MarkTransient(base)) {
		t.Fatal("plain transient must not be unsent")
	}
	u := MarkUnsent(base)
	if !IsUnsent(u) {
		t.Fatal("MarkUnsent not detected")
	}
	if !IsUnsent(fmt.Errorf("wrap: %w", u)) {
		t.Fatal("IsUnsent must see through wrapping")
	}
	if !errors.Is(u, base) {
		t.Fatal("marked error must unwrap to its cause")
	}
}

func TestRetryable(t *testing.T) {
	cases := []struct {
		name       string
		err        error
		idempotent bool
		want       bool
	}{
		{"overloaded-nonidem", ErrOverloaded, false, true},
		{"breaker-nonidem", ErrBreakerOpen, false, true},
		{"transient-idem", MarkTransient(errors.New("x")), true, true},
		{"transient-nonidem", MarkTransient(errors.New("x")), false, false},
		{"unsent-nonidem", MarkUnsent(errors.New("x")), false, true},
		{"permanent-idem", MarkPermanent(errors.New("x")), true, false},
		{"canceled-idem", context.Canceled, true, false},
		{"unknown-idem", errors.New("app fault"), true, false},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err, tc.idempotent); got != tc.want {
			t.Errorf("%s: Retryable = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestRetryableElsewhere(t *testing.T) {
	for _, err := range []error{ErrOverloaded, ErrBreakerOpen, MarkTransient(errors.New("x"))} {
		if !RetryableElsewhere(err) {
			t.Errorf("%v: want retryable-elsewhere", err)
		}
	}
	for _, err := range []error{MarkPermanent(errors.New("x")), context.Canceled, errors.New("app")} {
		if RetryableElsewhere(err) {
			t.Errorf("%v: want not retryable-elsewhere", err)
		}
	}
}

func TestErrorKindString(t *testing.T) {
	want := map[ErrorKind]string{
		KindUnknown:     "unknown",
		KindTransient:   "transient",
		KindOverloaded:  "overloaded",
		KindBreakerOpen: "breaker-open",
		KindCanceled:    "canceled",
		KindPermanent:   "permanent",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("kind %d: String = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestContextWithBudget(t *testing.T) {
	p := MustNew(WithBudget(time.Minute))
	ctx, cancel := ContextWithBudget(context.Background(), p)
	defer cancel()
	if !HasBudget(ctx) {
		t.Fatal("budget marker missing")
	}
	if _, ok := ctx.Deadline(); !ok {
		t.Fatal("budget deadline missing")
	}
	// Nested policies must not stack a second budget: same ctx comes back.
	ctx2, cancel2 := ContextWithBudget(ctx, p)
	defer cancel2()
	if ctx2 != ctx {
		t.Fatal("nested budget must be a no-op")
	}
	// A policy without a budget never arms one.
	plain := MustNew()
	ctx3, cancel3 := ContextWithBudget(context.Background(), plain)
	defer cancel3()
	if HasBudget(ctx3) {
		t.Fatal("no-budget policy must not arm a budget")
	}
}
