// Package chaos is the deterministic fault injector of the resilience
// plane (S28): seeded error, latency, hang and partial-write rules keyed
// by binding, operation and endpoint, hooked into the invoke transports
// and the simnet fabric so every policy in internal/resilience is
// provable under injected faults (experiment E13).
//
// Determinism is the design contract: the decision for the n-th call at a
// given (rule, site) is a pure function of the injector seed, the rule
// index, the site key and n — not of goroutine interleaving across sites
// or of any global RNG. The same rule spec and seed therefore yield an
// identical fault schedule on every run, which is what lets chaos tests
// assert exact outcomes and lets E13 sweep fault rates reproducibly.
//
// A nil *Injector is a valid no-op whose per-call cost is one branch and
// zero allocations, so the hooks stay compiled into every transport.
package chaos

import (
	"context"
	"fmt"
	"sync"
	"time"

	"harness2/internal/resilience"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// FaultError fails the call before any byte is sent; the error is
	// marked Unsent, so retry policies engage even for non-idempotent
	// operations — exactly like a connect refusal.
	FaultError Kind = iota
	// FaultLatency delays the call by the rule's Latency, honouring the
	// context deadline, then lets it proceed.
	FaultLatency
	// FaultHang blocks until the caller's context ends (or, when the
	// rule carries a Latency, at most that long) and then fails with a
	// transient timeout-like error. This is the stuck-server case that
	// motivates per-attempt timeouts and hedging.
	FaultHang
	// FaultPartialWrite fails the call as if the connection died after
	// part of the request reached the wire: the error is transient but
	// NOT marked Unsent, so policies retry it only for idempotent
	// operations — the server may have executed the call.
	FaultPartialWrite
)

// String implements fmt.Stringer; the names double as spec keywords.
func (k Kind) String() string {
	switch k {
	case FaultError:
		return "error"
	case FaultLatency:
		return "latency"
	case FaultHang:
		return "hang"
	case FaultPartialWrite:
		return "partial"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Rule is one injection rule. Binding, Op and Endpoint select the calls
// it applies to: "*" (or empty) matches anything, a trailing "*" matches
// by prefix, anything else matches exactly.
type Rule struct {
	Binding  string
	Op       string
	Endpoint string
	Kind     Kind
	// Prob is the per-call fault probability in [0, 1].
	Prob float64
	// Latency is the injected delay (FaultLatency) or the hang bound
	// (FaultHang; zero hangs until the context ends).
	Latency time.Duration
	// Count, when positive, caps how many faults the rule injects
	// in total; afterwards the rule is inert.
	Count int
}

// Validate checks a rule's fields.
func (r Rule) Validate() error {
	if !(r.Prob >= 0 && r.Prob <= 1) { // inverted form also rejects NaN
		return fmt.Errorf("chaos: probability %v out of [0,1]", r.Prob)
	}
	if r.Latency < 0 {
		return fmt.Errorf("chaos: negative latency %v", r.Latency)
	}
	if r.Count < 0 {
		return fmt.Errorf("chaos: negative count %d", r.Count)
	}
	switch r.Kind {
	case FaultError, FaultLatency, FaultHang, FaultPartialWrite:
	default:
		return fmt.Errorf("chaos: unknown fault kind %d", int(r.Kind))
	}
	if r.Kind == FaultLatency && r.Latency == 0 {
		return fmt.Errorf("chaos: latency rule needs a duration")
	}
	return nil
}

// String renders the rule in spec syntax (see Parse).
func (r Rule) String() string {
	s := fmt.Sprintf("%s:%g", r.Kind, r.Prob)
	if r.Latency > 0 {
		s += ":" + r.Latency.String()
	}
	s += "@" + orStar(r.Binding) + "/" + orStar(r.Op) + "/" + orStar(r.Endpoint)
	if r.Count > 0 {
		s += fmt.Sprintf("#%d", r.Count)
	}
	return s
}

func orStar(s string) string {
	if s == "" {
		return "*"
	}
	return s
}

// Fault is one injection decision.
type Fault struct {
	Kind    Kind
	Latency time.Duration
	// Rule indexes the matched rule in the injector's rule list.
	Rule int
}

// Injector evaluates rules deterministically. Safe for concurrent use.
type Injector struct {
	seed  uint64
	rules []Rule

	mu    sync.Mutex
	seq   map[siteKey]uint64 // per-(rule, site) call sequence numbers
	fired []int              // per-rule injected-fault counts
}

type siteKey struct {
	rule                  int
	binding, op, endpoint string
}

// New builds an injector from validated rules. A zero-rule injector is
// legal and never faults.
func New(seed int64, rules ...Rule) (*Injector, error) {
	for i, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("rule %d: %w", i, err)
		}
	}
	return &Injector{
		seed:  uint64(seed),
		rules: append([]Rule(nil), rules...),
		seq:   make(map[siteKey]uint64),
		fired: make([]int, len(rules)),
	}, nil
}

// NewFromSpec parses spec (see Parse) and builds the injector.
func NewFromSpec(seed int64, spec string) (*Injector, error) {
	rules, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	return New(seed, rules...)
}

// Rules returns a copy of the injector's rule list.
func (in *Injector) Rules() []Rule {
	if in == nil {
		return nil
	}
	return append([]Rule(nil), in.rules...)
}

// Fired reports how many faults each rule has injected so far.
func (in *Injector) Fired() []int {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]int(nil), in.fired...)
}

// match implements the rule selector: "*"/empty matches all, a trailing
// '*' matches by prefix, else exact.
func match(pattern, s string) bool {
	if pattern == "" || pattern == "*" {
		return true
	}
	if n := len(pattern); pattern[n-1] == '*' {
		prefix := pattern[:n-1]
		return len(s) >= len(prefix) && s[:len(prefix)] == prefix
	}
	return pattern == s
}

// splitmix64 is the standard 64-bit finalizer-style mixer; it turns the
// (seed, rule, site, seq) tuple into an i.i.d.-looking stream without any
// shared RNG state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv1a hashes a string into the decision key.
func fnv1a(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// decide returns the deterministic uniform draw in [0,1) for the n-th
// call of rule ri at the given site.
func (in *Injector) decide(ri int, binding, op, endpoint string, n uint64) float64 {
	h := uint64(14695981039346656037)
	h = fnv1a(h, binding)
	h ^= 0xff
	h = fnv1a(h, op)
	h ^= 0xff
	h = fnv1a(h, endpoint)
	x := splitmix64(in.seed ^ h ^ (uint64(ri) << 56) ^ n)
	return float64(x>>11) / float64(1<<53)
}

// Eval decides whether this call faults. The first matching rule that
// draws a fault wins; rules are consulted in order. The nil injector
// never faults.
func (in *Injector) Eval(binding, op, endpoint string) (Fault, bool) {
	if in == nil || len(in.rules) == 0 {
		return Fault{}, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, r := range in.rules {
		if !match(r.Binding, binding) || !match(r.Op, op) || !match(r.Endpoint, endpoint) {
			continue
		}
		if r.Count > 0 && in.fired[i] >= r.Count {
			continue
		}
		k := siteKey{rule: i, binding: binding, op: op, endpoint: endpoint}
		n := in.seq[k]
		in.seq[k] = n + 1
		if r.Prob <= 0 {
			continue
		}
		if r.Prob >= 1 || in.decide(i, binding, op, endpoint, n) < r.Prob {
			in.fired[i]++
			return Fault{Kind: r.Kind, Latency: r.Latency, Rule: i}, true
		}
	}
	return Fault{}, false
}

// Apply evaluates the call site and applies any injected fault: latency
// faults sleep (honouring ctx) and return nil; error, hang and
// partial-write faults return the corresponding classified error. The nil
// injector returns nil after a single branch — the disabled hot path.
func (in *Injector) Apply(ctx context.Context, binding, op, endpoint string) error {
	if in == nil {
		return nil
	}
	f, ok := in.Eval(binding, op, endpoint)
	if !ok {
		return nil
	}
	switch f.Kind {
	case FaultError:
		return resilience.MarkUnsent(fmt.Errorf("chaos: injected %s fault at %s/%s/%s",
			f.Kind, binding, op, endpoint))
	case FaultLatency:
		return sleepCtx(ctx, f.Latency)
	case FaultHang:
		if f.Latency > 0 {
			if err := sleepCtx(ctx, f.Latency); err != nil {
				return err
			}
			return resilience.MarkTransient(fmt.Errorf("chaos: injected hang timed out at %s/%s/%s",
				binding, op, endpoint))
		}
		<-ctx.Done()
		return ctx.Err()
	case FaultPartialWrite:
		return resilience.MarkTransient(fmt.Errorf("chaos: injected partial write at %s/%s/%s",
			binding, op, endpoint))
	}
	return nil
}

// sleepCtx sleeps d or until ctx ends, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
