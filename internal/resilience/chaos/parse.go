package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse turns a chaos spec string into a rule list. The grammar, one rule
// per semicolon-separated clause (blank clauses are skipped):
//
//	rule    := kind ":" prob [":" latency] ["@" site] ["#" count]
//	kind    := "error" | "latency" | "hang" | "partial"
//	prob    := float in [0, 1]
//	latency := Go duration (e.g. "5ms")
//	site    := binding "/" op "/" endpoint   (each "*", a prefix "x*", or exact;
//	           trailing components may be omitted and default to "*")
//	count   := positive integer cap on injected faults
//
// Examples:
//
//	error:0.1                      // 10% of all calls fail before sending
//	latency:1:5ms@xdr              // every XDR call gains 5ms
//	hang:0.05:100ms@soap/ping      // 5% of SOAP pings hang for 100ms
//	partial:0.2@*/set/*#3          // at most 3 partial-write faults on "set"
//
// Rules are evaluated in spec order; the first matching rule that draws a
// fault wins. Parse never panics on malformed input — it returns an error
// describing the offending clause (the fuzz target asserts this).
func Parse(spec string) ([]Rule, error) {
	var rules []Rule
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		r, err := parseRule(clause)
		if err != nil {
			return nil, fmt.Errorf("chaos: rule %q: %w", clause, err)
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// MustParse is Parse for compile-time-constant specs; it panics on error.
func MustParse(spec string) []Rule {
	rules, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return rules
}

func parseRule(clause string) (Rule, error) {
	var r Rule

	// Split off the optional "#count" suffix first.
	body := clause
	if i := strings.LastIndexByte(body, '#'); i >= 0 {
		n, err := strconv.Atoi(strings.TrimSpace(body[i+1:]))
		if err != nil || n <= 0 {
			return r, fmt.Errorf("bad count %q", body[i+1:])
		}
		r.Count = n
		body = body[:i]
	}

	// Split off the optional "@site" selector.
	if i := strings.IndexByte(body, '@'); i >= 0 {
		if err := parseSite(body[i+1:], &r); err != nil {
			return r, err
		}
		body = body[:i]
	}

	// What remains is kind:prob[:latency].
	parts := strings.Split(body, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return r, fmt.Errorf("want kind:prob[:latency], got %q", body)
	}
	kind, err := parseKind(strings.TrimSpace(parts[0]))
	if err != nil {
		return r, err
	}
	r.Kind = kind
	prob, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return r, fmt.Errorf("bad probability %q", parts[1])
	}
	r.Prob = prob
	if len(parts) == 3 {
		d, err := time.ParseDuration(strings.TrimSpace(parts[2]))
		if err != nil {
			return r, fmt.Errorf("bad latency %q", parts[2])
		}
		r.Latency = d
	}
	if err := r.Validate(); err != nil {
		return r, err
	}
	return r, nil
}

// parseSite fills the binding/op/endpoint selector from "b/o/e"; trailing
// components may be omitted and default to "*" (empty pattern).
func parseSite(site string, r *Rule) error {
	parts := strings.Split(site, "/")
	if len(parts) > 3 {
		return fmt.Errorf("site %q has more than binding/op/endpoint", site)
	}
	set := func(dst *string, s string) {
		s = strings.TrimSpace(s)
		if s == "*" {
			s = ""
		}
		*dst = s
	}
	if len(parts) > 0 {
		set(&r.Binding, parts[0])
	}
	if len(parts) > 1 {
		set(&r.Op, parts[1])
	}
	if len(parts) > 2 {
		set(&r.Endpoint, parts[2])
	}
	return nil
}

func parseKind(s string) (Kind, error) {
	switch s {
	case "error":
		return FaultError, nil
	case "latency":
		return FaultLatency, nil
	case "hang":
		return FaultHang, nil
	case "partial":
		return FaultPartialWrite, nil
	}
	return 0, fmt.Errorf("unknown fault kind %q", s)
}
