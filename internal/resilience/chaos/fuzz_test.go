package chaos

import (
	"strings"
	"testing"
)

// FuzzParse asserts the two contracts of the spec parser (satellite of
// ISSUE 3): it never panics on arbitrary input, and anything it accepts is
// a valid rule list whose String form re-parses to the same rules.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"error:0.1",
		"latency:1:5ms@xdr",
		"hang:0.05:100ms@soap/ping",
		"partial:0.2@*/set/*#3",
		"error:0.3@xdr/get/n*; latency:0.5:2ms",
		"error:0.5#2;;",
		"bogus:1",
		"error:1.5",
		":::@///###",
		"latency:0.5",
		"error:NaN",
		"error:-0",
		"error:1e-3@a*/b*/c*#9",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		rules, err := Parse(spec) // must not panic
		if err != nil {
			return
		}
		for _, r := range rules {
			// Accepted rules must be valid...
			if verr := r.Validate(); verr != nil {
				t.Fatalf("Parse(%q) accepted invalid rule %+v: %v", spec, r, verr)
			}
			// ...and usable: building an injector from them must work.
		}
		if _, err := New(1, rules...); err != nil {
			t.Fatalf("Parse(%q) produced rules New rejects: %v", spec, err)
		}
		// Round trip through the canonical form. NaN probabilities are the
		// only value a float parse could admit that breaks equality; the
		// validator rejects them via the range check, so this holds.
		for _, r := range rules {
			back, err := Parse(r.String())
			if err != nil || len(back) != 1 {
				t.Fatalf("canonical form %q of %q does not re-parse: %v", r.String(), spec, err)
			}
			if !strings.EqualFold(back[0].String(), r.String()) {
				t.Fatalf("round trip drifted: %q -> %q", r.String(), back[0].String())
			}
		}
	})
}
