package chaos

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"harness2/internal/resilience"
)

func TestNilInjector(t *testing.T) {
	var in *Injector
	if _, ok := in.Eval("b", "o", "e"); ok {
		t.Fatal("nil injector must not fault")
	}
	if err := in.Apply(context.Background(), "b", "o", "e"); err != nil {
		t.Fatalf("nil injector Apply: %v", err)
	}
	if in.Rules() != nil || in.Fired() != nil {
		t.Fatal("nil injector introspection must return nil")
	}
}

func TestInjectorDeterministicSchedule(t *testing.T) {
	// Same seed + spec => identical fault schedule, call by call.
	const spec = "error:0.3@xdr;latency:0.5:1ms@soap/ping"
	schedule := func(seed int64) []string {
		in, err := NewFromSpec(seed, spec)
		if err != nil {
			t.Fatalf("NewFromSpec: %v", err)
		}
		var s []string
		for i := 0; i < 200; i++ {
			f, ok := in.Eval("xdr", "get", "n1")
			s = append(s, fmt.Sprintf("%v/%v", f.Kind, ok))
			f, ok = in.Eval("soap", "ping", "n2")
			s = append(s, fmt.Sprintf("%v/%v", f.Kind, ok))
		}
		return s
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: schedule diverged (%s vs %s)", i, a[i], b[i])
		}
	}
	// A different seed must (overwhelmingly) produce a different schedule.
	c := schedule(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 400-call schedules")
	}
}

func TestInjectorScheduleIndependentOfInterleaving(t *testing.T) {
	// The per-site schedule must not depend on how calls at *other* sites
	// interleave with it: run site A alone, then run A interleaved with B,
	// and compare A's schedule.
	in1, _ := NewFromSpec(7, "error:0.4")
	var alone []bool
	for i := 0; i < 100; i++ {
		_, ok := in1.Eval("xdr", "get", "a")
		alone = append(alone, ok)
	}
	in2, _ := NewFromSpec(7, "error:0.4")
	var mixed []bool
	for i := 0; i < 100; i++ {
		in2.Eval("soap", "put", "b") // interleaved traffic at another site
		_, ok := in2.Eval("xdr", "get", "a")
		mixed = append(mixed, ok)
	}
	for i := range alone {
		if alone[i] != mixed[i] {
			t.Fatalf("call %d: site-A schedule changed under interleaving", i)
		}
	}
}

func TestInjectorFaultRate(t *testing.T) {
	in, _ := NewFromSpec(1, "error:0.2")
	faults := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if _, ok := in.Eval("xdr", "get", fmt.Sprintf("call-%d", i%7)); ok {
			faults++
		}
	}
	rate := float64(faults) / n
	if rate < 0.17 || rate > 0.23 {
		t.Fatalf("empirical fault rate %.3f far from 0.2", rate)
	}
}

func TestInjectorMatchSelectors(t *testing.T) {
	in, err := New(1,
		Rule{Binding: "xdr", Op: "get*", Endpoint: "n1", Kind: FaultError, Prob: 1},
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hit := func(b, o, e string) bool { _, ok := in.Eval(b, o, e); return ok }
	if !hit("xdr", "get", "n1") || !hit("xdr", "getAll", "n1") {
		t.Fatal("exact + prefix match must fault")
	}
	if hit("soap", "get", "n1") || hit("xdr", "put", "n1") || hit("xdr", "get", "n2") {
		t.Fatal("non-matching selector must not fault")
	}
}

func TestInjectorCountCap(t *testing.T) {
	in, _ := NewFromSpec(1, "error:1#3")
	faults := 0
	for i := 0; i < 10; i++ {
		if _, ok := in.Eval("b", "o", "e"); ok {
			faults++
		}
	}
	if faults != 3 {
		t.Fatalf("faults = %d, want count cap 3", faults)
	}
	if fired := in.Fired(); len(fired) != 1 || fired[0] != 3 {
		t.Fatalf("Fired = %v, want [3]", fired)
	}
}

func TestInjectorFirstMatchWins(t *testing.T) {
	in, _ := NewFromSpec(1, "latency:1:1ms@*/get;error:1")
	f, ok := in.Eval("xdr", "get", "e")
	if !ok || f.Kind != FaultLatency || f.Rule != 0 {
		t.Fatalf("get: fault=%+v ok=%v, want rule 0 latency", f, ok)
	}
	f, ok = in.Eval("xdr", "put", "e")
	if !ok || f.Kind != FaultError || f.Rule != 1 {
		t.Fatalf("put: fault=%+v ok=%v, want rule 1 error", f, ok)
	}
}

func TestApplyErrorIsUnsent(t *testing.T) {
	in, _ := NewFromSpec(1, "error:1")
	err := in.Apply(context.Background(), "b", "o", "e")
	if err == nil || !resilience.IsUnsent(err) {
		t.Fatalf("error fault must be unsent-transient, got %v", err)
	}
	if k := resilience.Classify(err); k != resilience.KindTransient {
		t.Fatalf("Classify = %v, want transient", k)
	}
}

func TestApplyPartialWriteNotUnsent(t *testing.T) {
	in, _ := NewFromSpec(1, "partial:1")
	err := in.Apply(context.Background(), "b", "o", "e")
	if err == nil || resilience.IsUnsent(err) {
		t.Fatalf("partial write must NOT be unsent, got %v", err)
	}
	if k := resilience.Classify(err); k != resilience.KindTransient {
		t.Fatalf("Classify = %v, want transient", k)
	}
}

func TestApplyLatencyDelaysThenSucceeds(t *testing.T) {
	in, _ := NewFromSpec(1, "latency:1:10ms")
	start := time.Now()
	if err := in.Apply(context.Background(), "b", "o", "e"); err != nil {
		t.Fatalf("latency fault must not error: %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("latency fault returned after %v, want >= 10ms", d)
	}
}

func TestApplyHangHonoursContext(t *testing.T) {
	in, _ := NewFromSpec(1, "hang:1")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := in.Apply(ctx, "b", "o", "e")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("unbounded hang must end with the context, got %v", err)
	}
}

func TestApplyBoundedHang(t *testing.T) {
	in, _ := NewFromSpec(1, "hang:1:5ms")
	err := in.Apply(context.Background(), "b", "o", "e")
	if err == nil || resilience.Classify(err) != resilience.KindTransient {
		t.Fatalf("bounded hang must fail transient, got %v", err)
	}
}

func TestInjectorConcurrentSafety(t *testing.T) {
	in, _ := NewFromSpec(3, "error:0.5")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			site := fmt.Sprintf("site-%d", g)
			for i := 0; i < 500; i++ {
				in.Eval("xdr", "get", site)
			}
		}(g)
	}
	wg.Wait()
}

func TestRuleValidate(t *testing.T) {
	bad := []Rule{
		{Kind: FaultError, Prob: -0.1},
		{Kind: FaultError, Prob: 1.1},
		{Kind: FaultError, Prob: 0.5, Latency: -1},
		{Kind: FaultError, Prob: 0.5, Count: -1},
		{Kind: Kind(99), Prob: 0.5},
		{Kind: FaultLatency, Prob: 0.5}, // latency rule needs a duration
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: invalid rule accepted: %+v", i, r)
		}
	}
	if err := (Rule{Kind: FaultHang, Prob: 0.5}).Validate(); err != nil {
		t.Errorf("valid rule rejected: %v", err)
	}
	if _, err := New(0, Rule{Kind: FaultError, Prob: 2}); err == nil {
		t.Error("New must validate rules")
	}
}

func TestParseRoundTrip(t *testing.T) {
	specs := []string{
		"error:0.1",
		"latency:1:5ms@xdr",
		"hang:0.05:100ms@soap/ping",
		"partial:0.2@*/set/*#3",
		"error:0.3@xdr/get/n*; latency:0.5:2ms",
	}
	for _, spec := range specs {
		rules, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		// Rule.String must itself re-parse to the same rules.
		for _, r := range rules {
			back, err := Parse(r.String())
			if err != nil {
				t.Fatalf("re-Parse(%q): %v", r.String(), err)
			}
			if len(back) != 1 || back[0] != r {
				t.Fatalf("round trip %q: got %+v, want %+v", r.String(), back, r)
			}
		}
	}
}

func TestParseDefaults(t *testing.T) {
	rules, err := Parse("error:0.5")
	if err != nil || len(rules) != 1 {
		t.Fatalf("Parse: %v %v", rules, err)
	}
	r := rules[0]
	if r.Binding != "" || r.Op != "" || r.Endpoint != "" || r.Count != 0 {
		t.Fatalf("omitted selector must default to match-all: %+v", r)
	}
	// Empty and blank specs are legal no-ops.
	for _, s := range []string{"", "  ", ";;", " ; "} {
		rules, err := Parse(s)
		if err != nil || len(rules) != 0 {
			t.Fatalf("Parse(%q) = %v, %v; want empty", s, rules, err)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"bogus:0.5",           // unknown kind
		"error",               // missing probability
		"error:x",             // bad probability
		"error:1.5",           // out of range
		"error:0.5:huh",       // bad latency
		"error:0.5:1ms:extra", // too many parts
		"latency:0.5",         // latency without duration
		"error:0.5@a/b/c/d",   // too many site components
		"error:0.5#0",         // zero count
		"error:0.5#-1",        // negative count
		"error:0.5#x",         // non-numeric count
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): invalid spec accepted", spec)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse must panic on malformed spec")
		}
	}()
	MustParse("bogus:1")
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		FaultError: "error", FaultLatency: "latency",
		FaultHang: "hang", FaultPartialWrite: "partial",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("kind %d: String = %q, want %q (spec keyword)", int(k), k.String(), s)
		}
	}
}
