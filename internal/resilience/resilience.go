// Package resilience is the HARNESS II fault-handling plane (S28): a
// zero-dependency policy layer that makes every remote path of the stack
// survive the failures the paper's grid substrate takes for granted.
//
// Harness's raison d'être is *robust* reconfigurable DVMs: "the grid is
// assumed to be unreliable", containers host volatile components, and the
// deployment frameworks in the related literature (Dearle et al.,
// JClarens) both argue that dynamically deployed web-service components
// need policy-driven failure handling at the invocation layer, not in
// application code. This package supplies that layer:
//
//   - Policy — composable client-side execution policy: bounded retries
//     classified by error kind and operation idempotency, exponential
//     backoff with full jitter, per-endpoint circuit breakers with
//     half-open probes, hedged requests across equivalent endpoints
//     (the local > XDR > SOAP selection order doubles as a failover
//     ladder), and deadline/budget propagation through the context.
//   - Limiter — server-side admission control: a concurrency limit plus
//     a bounded wait queue, shedding excess load with the distinguished
//     Overloaded fault that clients treat as retryable-elsewhere.
//   - chaos (subpackage) — a deterministic fault injector hooked into
//     the invoke transports and simnet, so every policy above is
//     provable under injected faults (experiment E13).
//
// Everything follows the telemetry plane's nil-safety idiom: a nil
// *Policy, *Breaker or *Limiter is a valid no-op whose hot-path cost is
// one branch and zero allocations (gated by BenchmarkE13_Disabled).
package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"syscall"
)

// OverloadedToken is the sentinel carried inside Overloaded fault
// messages. Faults cross the SOAP/XDR/HTTP wire as strings, so the token
// — rather than a Go error identity — is what lets a client recognise a
// remote shed and fail over to an equivalent endpoint.
const OverloadedToken = "harness2:overloaded"

// ErrOverloaded is the distinguished admission-control fault: the server
// shed the request *before* executing it, so retrying — preferably
// elsewhere — is always safe, idempotent or not.
var ErrOverloaded = errors.New(OverloadedToken + ": request shed by admission control")

// ErrBreakerOpen reports that the target endpoint's circuit breaker is
// open: the request was not sent. Like Overloaded it is always safe to
// retry against a different endpoint.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// ErrBudgetExhausted reports that the policy's time budget (or the
// caller's deadline) ran out between attempts.
var ErrBudgetExhausted = errors.New("resilience: retry budget exhausted")

// ErrorKind classifies a failure for the retry decision.
type ErrorKind int

const (
	// KindUnknown covers unclassifiable failures, including application
	// faults: the request may have executed, so blind retries are unsafe.
	KindUnknown ErrorKind = iota
	// KindTransient covers connection-level failures — refused, reset,
	// timed out, dropped. The request *may* have reached the server
	// unless the error is additionally marked Unsent.
	KindTransient
	// KindOverloaded is the admission-control shed: provably not
	// executed, retryable anywhere.
	KindOverloaded
	// KindBreakerOpen means the local breaker refused to send: provably
	// not executed, retryable elsewhere.
	KindBreakerOpen
	// KindCanceled is the caller's own context cancellation or deadline;
	// never retried.
	KindCanceled
	// KindPermanent is an explicitly non-retryable failure.
	KindPermanent
)

// String implements fmt.Stringer for experiment output.
func (k ErrorKind) String() string {
	switch k {
	case KindTransient:
		return "transient"
	case KindOverloaded:
		return "overloaded"
	case KindBreakerOpen:
		return "breaker-open"
	case KindCanceled:
		return "canceled"
	case KindPermanent:
		return "permanent"
	}
	return "unknown"
}

// marked wraps an error with an explicit classification.
type marked struct {
	err    error
	kind   ErrorKind
	unsent bool
}

func (m *marked) Error() string { return m.err.Error() }
func (m *marked) Unwrap() error { return m.err }

// MarkTransient tags err as a transient failure (retryable when the
// operation is idempotent, or when additionally marked Unsent).
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &marked{err: err, kind: KindTransient}
}

// MarkPermanent tags err as never retryable.
func MarkPermanent(err error) error {
	if err == nil {
		return nil
	}
	return &marked{err: err, kind: KindPermanent}
}

// MarkUnsent tags err as a transient failure for a request that provably
// never reached the server — retryable even for non-idempotent
// operations. The XDR client's "zero bytes hit the wire" path and the
// chaos injector's pre-invoke faults use it.
func MarkUnsent(err error) error {
	if err == nil {
		return nil
	}
	return &marked{err: err, kind: KindTransient, unsent: true}
}

// IsUnsent reports whether err is marked as provably-not-sent.
func IsUnsent(err error) bool {
	var m *marked
	return errors.As(err, &m) && m.unsent
}

// Classify maps an error to its retry classification. Explicit marks win;
// otherwise the connection-level taxonomy of the Go runtime is consulted,
// and finally the wire-crossing string sentinels (faults arrive as
// strings after a SOAP or XDR hop).
func Classify(err error) ErrorKind {
	if err == nil {
		return KindUnknown
	}
	var m *marked
	if errors.As(err, &m) {
		return m.kind
	}
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return KindCanceled
	case errors.Is(err, ErrOverloaded):
		return KindOverloaded
	case errors.Is(err, ErrBreakerOpen):
		return KindBreakerOpen
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, io.ErrClosedPipe), errors.Is(err, net.ErrClosed),
		errors.Is(err, syscall.ECONNREFUSED), errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.EPIPE), errors.Is(err, syscall.ETIMEDOUT):
		return KindTransient
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return KindTransient
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, OverloadedToken):
		return KindOverloaded
	case strings.Contains(msg, "connection refused"),
		strings.Contains(msg, "connection reset"),
		strings.Contains(msg, "broken pipe"),
		strings.Contains(msg, "use of closed network connection"),
		strings.Contains(msg, "message dropped"), // simnet.ErrDropped after wrapping
		strings.Contains(msg, "xdr connection closed"):
		return KindTransient
	}
	return KindUnknown
}

// Retryable reports whether a failed attempt may be re-executed.
// Overloaded sheds and breaker refusals are provably unexecuted, so they
// retry regardless of idempotency; transient failures retry when the
// operation is idempotent or the request is marked Unsent; everything
// else — including application faults — is surfaced to the caller.
func Retryable(err error, idempotent bool) bool {
	switch Classify(err) {
	case KindOverloaded, KindBreakerOpen:
		return true
	case KindTransient:
		return idempotent || IsUnsent(err)
	}
	return false
}

// RetryableElsewhere reports whether the failure argues for moving to a
// different equivalent endpoint rather than re-trying the same one: the
// endpoint shed us, its breaker is open, or it is unreachable.
func RetryableElsewhere(err error) bool {
	switch Classify(err) {
	case KindOverloaded, KindBreakerOpen, KindTransient:
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Deadline / budget propagation.

type budgetKey struct{}

// ContextWithBudget derives a context carrying a retry budget marker and,
// when the budget is tighter than any existing deadline, the corresponding
// deadline. Nested policies observe the marker and do not stack further
// budgets of their own: the outermost caller's allowance governs the
// whole call tree, per the invocation-layer policy argument of the
// deployment-framework papers.
func ContextWithBudget(ctx context.Context, p *Policy) (context.Context, context.CancelFunc) {
	if p == nil || p.budget <= 0 || HasBudget(ctx) {
		return ctx, func() {}
	}
	ctx, cancel := context.WithTimeout(ctx, p.budget)
	return context.WithValue(ctx, budgetKey{}, true), cancel
}

// HasBudget reports whether an enclosing policy already armed a budget.
func HasBudget(ctx context.Context) bool {
	v, _ := ctx.Value(budgetKey{}).(bool)
	return v
}

// errAttempt annotates the terminal attempt error with its count, so
// operators can tell a first-try failure from an exhausted retry loop.
func errAttempt(op string, attempts int, err error) error {
	if attempts <= 1 {
		return err
	}
	return fmt.Errorf("resilience: %s failed after %d attempts: %w", op, attempts, err)
}
