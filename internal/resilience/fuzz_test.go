package resilience

import (
	"testing"
	"time"
)

// FuzzPolicyOptions asserts the option-validator contract (satellite of
// ISSUE 3): New never panics on arbitrary numeric option inputs, and any
// policy it builds has internally consistent knobs.
func FuzzPolicyOptions(f *testing.F) {
	f.Add(3, int64(1), int64(250), int64(0), int64(0), 2, int64(1000), 3, int64(0))
	f.Add(0, int64(-1), int64(-1), int64(-1), int64(-1), 0, int64(-1), 0, int64(-5))
	f.Add(101, int64(1<<40), int64(1), int64(1<<50), int64(1<<62), 100, int64(1), 1, int64(1))
	f.Fuzz(func(t *testing.T, attempts int, base, max, attemptTO, budget int64,
		hedgeMax int, hedgeDelay int64, brkThreshold int, brkCooldown int64) {
		p, err := New(
			WithMaxAttempts(attempts),
			WithBackoff(time.Duration(base), time.Duration(max)),
			WithAttemptTimeout(time.Duration(attemptTO)),
			WithBudget(time.Duration(budget)),
			WithHedging(time.Duration(hedgeDelay), hedgeMax),
			WithBreaker(brkThreshold, time.Duration(brkCooldown)),
			WithSeed(1),
		) // must not panic
		if err != nil {
			return // invalid inputs rejected: the contract holds
		}
		// Anything accepted must satisfy the documented invariants.
		if p.maxAttempts < 1 || p.maxAttempts > 100 {
			t.Fatalf("accepted maxAttempts %d out of [1,100]", p.maxAttempts)
		}
		if p.backoffBase <= 0 || p.backoffMax < p.backoffBase {
			t.Fatalf("accepted backoff base=%v max=%v", p.backoffBase, p.backoffMax)
		}
		if p.attemptTimeout < 0 || p.budget <= 0 {
			t.Fatalf("accepted attemptTimeout=%v budget=%v", p.attemptTimeout, p.budget)
		}
		if p.hedgeMax < 2 || p.hedgeDelay < 0 {
			t.Fatalf("accepted hedgeMax=%d hedgeDelay=%v", p.hedgeMax, p.hedgeDelay)
		}
		if p.brkThreshold < 1 || p.brkCooldown <= 0 {
			t.Fatalf("accepted breaker threshold=%d cooldown=%v", p.brkThreshold, p.brkCooldown)
		}
		// The backoff envelope must stay within bounds for any attempt.
		for _, attempt := range []int{0, 1, 7, 63, 99} {
			if d := p.backoff(attempt); d < 0 || d > p.backoffMax {
				t.Fatalf("backoff(%d) = %v outside [0,%v]", attempt, d, p.backoffMax)
			}
		}
	})
}
