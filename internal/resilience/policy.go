package resilience

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"harness2/internal/telemetry"
)

// Target is one equivalent way to execute an operation: an endpoint plus
// the attempt function bound to it. Policies receive targets
// cheapest-first — the invoke framework hands them over in its
// local > XDR > SOAP > HTTP selection order, so the binding hierarchy of
// Figure 5 doubles as the failover ladder.
type Target struct {
	// ID identifies the endpoint for circuit-breaker state, e.g.
	// "xdr:127.0.0.1:4004". Targets sharing an ID share a breaker.
	ID string
	// Do runs one attempt. It must honour ctx.
	Do func(ctx context.Context) (any, error)
}

// Option configures New.
type Option func(*Policy) error

// WithMaxAttempts bounds the total number of attempts per Execute
// (initial try included). n must be in [1, 100].
func WithMaxAttempts(n int) Option {
	return func(p *Policy) error {
		if n < 1 || n > 100 {
			return fmt.Errorf("resilience: max attempts %d out of range [1,100]", n)
		}
		p.maxAttempts = n
		return nil
	}
}

// WithBackoff sets the exponential-backoff envelope: the attempt-i sleep
// is drawn uniformly from [0, min(max, base<<i)] — "full jitter", which
// decorrelates retry storms from synchronised clients. base must be
// positive and max >= base.
func WithBackoff(base, max time.Duration) Option {
	return func(p *Policy) error {
		if base <= 0 {
			return fmt.Errorf("resilience: backoff base %v must be positive", base)
		}
		if max < base {
			return fmt.Errorf("resilience: backoff max %v < base %v", max, base)
		}
		p.backoffBase, p.backoffMax = base, max
		return nil
	}
}

// WithAttemptTimeout bounds each individual attempt. Zero disables the
// per-attempt deadline (the overall context still governs).
func WithAttemptTimeout(d time.Duration) Option {
	return func(p *Policy) error {
		if d < 0 {
			return fmt.Errorf("resilience: attempt timeout %v must be >= 0", d)
		}
		p.attemptTimeout = d
		return nil
	}
}

// WithBudget bounds the total wall time Execute may spend across all
// attempts and backoffs, propagated through the context so nested
// policies do not stack their own allowances on top.
func WithBudget(d time.Duration) Option {
	return func(p *Policy) error {
		if d <= 0 {
			return fmt.Errorf("resilience: budget %v must be positive", d)
		}
		p.budget = d
		return nil
	}
}

// WithBreaker enables per-endpoint circuit breakers: threshold
// consecutive failures open the breaker, and after cooldown a single
// half-open probe decides between closing it and re-opening.
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(p *Policy) error {
		if threshold < 1 {
			return fmt.Errorf("resilience: breaker threshold %d must be >= 1", threshold)
		}
		if cooldown <= 0 {
			return fmt.Errorf("resilience: breaker cooldown %v must be positive", cooldown)
		}
		p.brkThreshold, p.brkCooldown = threshold, cooldown
		return nil
	}
}

// WithHedging enables hedged requests for idempotent operations: when the
// attempt in flight has produced no result after delay, the next target
// on the ladder is raced against it, up to max concurrent hedges. The
// first result wins; losers are cancelled. delay must be >= 0 (zero means
// race immediately) and max >= 2 (the primary counts).
func WithHedging(delay time.Duration, max int) Option {
	return func(p *Policy) error {
		if delay < 0 {
			return fmt.Errorf("resilience: hedge delay %v must be >= 0", delay)
		}
		if max < 2 {
			return fmt.Errorf("resilience: hedge max %d must be >= 2", max)
		}
		p.hedgeDelay, p.hedgeMax = delay, max
		return nil
	}
}

// WithSeed fixes the jitter RNG for deterministic tests and experiments.
func WithSeed(seed int64) Option {
	return func(p *Policy) error {
		p.rng = rand.New(rand.NewSource(seed))
		return nil
	}
}

// WithTelemetry selects the policy's metrics registry; nil falls back to
// the process default, telemetry.Disabled() switches instrumentation off.
func WithTelemetry(r *telemetry.Registry) Option {
	return func(p *Policy) error {
		p.tel = r
		return nil
	}
}

// WithSleep replaces the inter-attempt sleep; tests inject a virtual
// clock here. The function must return early with ctx.Err() when the
// context ends first.
func WithSleep(fn func(ctx context.Context, d time.Duration) error) Option {
	return func(p *Policy) error {
		if fn == nil {
			return fmt.Errorf("resilience: nil sleep function")
		}
		p.sleep = fn
		return nil
	}
}

// WithClock replaces the breaker clock for deterministic tests.
func WithClock(now func() time.Time) Option {
	return func(p *Policy) error {
		if now == nil {
			return fmt.Errorf("resilience: nil clock")
		}
		p.now = now
		return nil
	}
}

// Policy is a composed, reusable failure-handling policy. One Policy is
// typically shared by all calls to a service (its breaker map is
// per-endpoint); it is safe for concurrent use. The nil *Policy is a
// valid pass-through that executes the first target exactly once.
type Policy struct {
	maxAttempts    int
	backoffBase    time.Duration
	backoffMax     time.Duration
	attemptTimeout time.Duration
	budget         time.Duration
	hedgeDelay     time.Duration
	hedgeMax       int
	brkThreshold   int
	brkCooldown    time.Duration

	tel   *telemetry.Registry
	met   policyMetrics
	sleep func(ctx context.Context, d time.Duration) error
	now   func() time.Time

	mu       sync.Mutex
	rng      *rand.Rand
	breakers map[string]*Breaker
}

// New validates the options and builds a policy. Defaults: 3 attempts,
// 1ms..250ms full-jitter backoff, no per-attempt timeout, no budget, no
// breaker, no hedging.
func New(opts ...Option) (*Policy, error) {
	p := &Policy{
		maxAttempts: 3,
		backoffBase: time.Millisecond,
		backoffMax:  250 * time.Millisecond,
		now:         time.Now,
		breakers:    make(map[string]*Breaker),
	}
	p.sleep = defaultSleep
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("resilience: nil option")
		}
		if err := opt(p); err != nil {
			return nil, err
		}
	}
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	p.met = newPolicyMetrics(telemetry.Or(p.tel))
	return p, nil
}

// MustNew is New for statically-known-good options.
func MustNew(opts ...Option) *Policy {
	p, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return p
}

func defaultSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// breaker returns (creating on first use) the endpoint's breaker, or nil
// when breakers are not configured.
func (p *Policy) breaker(endpoint string) *Breaker {
	if p == nil || p.brkThreshold == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	b := p.breakers[endpoint]
	if b == nil {
		b = NewBreaker(p.brkThreshold, p.brkCooldown)
		b.now = p.now
		met := p.met
		ep := endpoint
		b.onTransition = func(from, to BreakerState) {
			met.breakerTransition(ep, from, to)
		}
		p.breakers[endpoint] = b
	}
	return b
}

// BreakerFor exposes the endpoint's breaker for inspection (nil when
// breakers are disabled or the endpoint has never been used).
func (p *Policy) BreakerFor(endpoint string) *Breaker {
	if p == nil || p.brkThreshold == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.breakers[endpoint]
}

// backoff returns the attempt-i sleep: full jitter over the exponential
// envelope.
func (p *Policy) backoff(attempt int) time.Duration {
	ceil := p.backoffBase << uint(attempt)
	if ceil > p.backoffMax || ceil <= 0 {
		ceil = p.backoffMax
	}
	p.mu.Lock()
	d := time.Duration(p.rng.Int63n(int64(ceil) + 1))
	p.mu.Unlock()
	return d
}

// attemptCtx derives the per-attempt context.
func (p *Policy) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if p.attemptTimeout > 0 {
		return context.WithTimeout(ctx, p.attemptTimeout)
	}
	return context.WithCancel(ctx)
}

// Execute runs op against the target ladder under the policy: budget and
// deadline propagation, breaker gating, classified retries with
// full-jitter backoff, and — for idempotent operations with more than one
// target — hedging. A nil policy executes targets[0] exactly once, so the
// disabled path costs one branch.
func (p *Policy) Execute(ctx context.Context, op string, idempotent bool, targets ...Target) (any, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("resilience: %s: no targets", op)
	}
	if p == nil {
		return targets[0].Do(ctx)
	}
	ctx, cancel := ContextWithBudget(ctx, p)
	defer cancel()
	if p.hedgeMax >= 2 && idempotent && len(targets) > 1 {
		return p.executeHedged(ctx, op, targets)
	}
	return p.executeSequential(ctx, op, idempotent, targets)
}

// executeSequential is the retry/failover loop without hedging.
func (p *Policy) executeSequential(ctx context.Context, op string, idempotent bool, targets []Target) (any, error) {
	var lastErr error
	ti := 0 // current rung of the failover ladder
	for attempt := 0; attempt < p.maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, budgetErr(op, attempt, err, lastErr)
		}
		// Find a rung whose breaker admits the attempt, starting at the
		// current one and walking down the ladder.
		probed := 0
		for ; probed < len(targets); probed++ {
			if p.breaker(targets[(ti+probed)%len(targets)].ID).Allow() {
				break
			}
		}
		if probed == len(targets) {
			// Every breaker is open: treat like any retryable failure —
			// back off and re-probe, up to the attempt bound.
			lastErr = fmt.Errorf("%w: all %d endpoints for %s", ErrBreakerOpen, len(targets), op)
			p.met.breakerRefusal(op)
			if attempt == p.maxAttempts-1 {
				break
			}
			if err := p.sleep(ctx, p.backoff(attempt)); err != nil {
				return nil, budgetErr(op, attempt+1, err, lastErr)
			}
			continue
		}
		ti = (ti + probed) % len(targets)
		t := targets[ti]
		if attempt > 0 {
			p.met.retry(op)
		}
		out, err := p.runAttempt(ctx, t)
		p.breaker(t.ID).Report(err)
		if err == nil {
			p.met.success(op, attempt)
			return out, nil
		}
		lastErr = err
		p.met.failure(op, Classify(err))
		if !Retryable(err, idempotent) || attempt == p.maxAttempts-1 {
			break
		}
		if RetryableElsewhere(err) && len(targets) > 1 {
			ti = (ti + 1) % len(targets)
		}
		if err := p.sleep(ctx, p.backoff(attempt)); err != nil {
			return nil, budgetErr(op, attempt+1, err, lastErr)
		}
	}
	p.met.exhausted(op)
	return nil, errAttempt(op, p.maxAttempts, lastErr)
}

// runAttempt executes one attempt under the per-attempt deadline.
func (p *Policy) runAttempt(ctx context.Context, t Target) (any, error) {
	actx, cancel := p.attemptCtx(ctx)
	defer cancel()
	out, err := t.Do(actx)
	if err != nil && actx.Err() != nil && ctx.Err() == nil {
		// The per-attempt deadline fired, not the caller's: reclassify as
		// transient so the retry loop engages instead of treating it as
		// the caller's own cancellation.
		err = MarkTransient(fmt.Errorf("resilience: attempt timed out: %w", err))
	}
	return out, err
}

// hedgeResult carries one racer's outcome.
type hedgeResult struct {
	idx int
	out any
	err error
}

// executeHedged races the ladder: the primary target starts immediately;
// each time hedgeDelay passes without a result — or a racer fails with an
// elsewhere-retryable error — the next rung launches. First success wins
// and cancels the rest. The whole race repeats (with backoff) up to the
// attempt bound. Only idempotent operations reach this path, so duplicate
// execution is harmless by contract.
func (p *Policy) executeHedged(ctx context.Context, op string, targets []Target) (any, error) {
	var lastErr error
	for attempt := 0; attempt < p.maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, budgetErr(op, attempt, err, lastErr)
		}
		if attempt > 0 {
			p.met.retry(op)
		}
		out, err := p.hedgeRound(ctx, op, targets)
		if err == nil {
			p.met.success(op, attempt)
			return out, nil
		}
		lastErr = err
		p.met.failure(op, Classify(err))
		if !Retryable(err, true) || attempt == p.maxAttempts-1 {
			break
		}
		if serr := p.sleep(ctx, p.backoff(attempt)); serr != nil {
			return nil, budgetErr(op, attempt+1, serr, lastErr)
		}
	}
	p.met.exhausted(op)
	return nil, errAttempt(op, p.maxAttempts, lastErr)
}

// hedgeRound runs one race across the ladder.
func (p *Policy) hedgeRound(ctx context.Context, op string, targets []Target) (any, error) {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	max := p.hedgeMax
	if max > len(targets) {
		max = len(targets)
	}
	results := make(chan hedgeResult, len(targets))
	launched := 0
	launch := func() bool {
		for launched < len(targets) {
			t := targets[launched]
			idx := launched
			launched++
			if !p.breaker(t.ID).Allow() {
				p.met.breakerRefusal(op)
				continue
			}
			if idx > 0 {
				p.met.hedge(op)
			}
			go func() {
				out, err := p.runAttempt(rctx, t)
				p.breaker(t.ID).Report(err)
				results <- hedgeResult{idx: idx, out: out, err: err}
			}()
			return true
		}
		return false
	}

	inFlight := 0
	if launch() {
		inFlight++
	}
	if inFlight == 0 {
		return nil, fmt.Errorf("%w: all %d endpoints for %s", ErrBreakerOpen, len(targets), op)
	}

	var timer *time.Timer
	var hedgeC <-chan time.Time
	armTimer := func() {
		if inFlight >= max || launched >= len(targets) {
			hedgeC = nil
			return
		}
		if timer == nil {
			timer = time.NewTimer(p.hedgeDelay)
		} else {
			timer.Reset(p.hedgeDelay)
		}
		hedgeC = timer.C
	}
	armTimer()
	if timer != nil {
		defer timer.Stop()
	}

	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-hedgeC:
			if launch() {
				inFlight++
			}
			armTimer()
		case res := <-results:
			if res.err == nil {
				if res.idx > 0 {
					p.met.hedgeWin(op)
				}
				return res.out, nil
			}
			lastErr = res.err
			inFlight--
			// A failed racer frees a slot; elsewhere-retryable failures
			// launch the next rung immediately rather than waiting out
			// the hedge delay.
			if RetryableElsewhere(res.err) && launch() {
				inFlight++
			}
			if inFlight == 0 {
				return nil, lastErr
			}
			armTimer()
		}
	}
}

// budgetErr folds the budget/deadline error together with the last
// attempt failure so callers see both causes.
func budgetErr(op string, attempts int, ctxErr, lastErr error) error {
	if lastErr == nil {
		return fmt.Errorf("resilience: %s: %w: %w", op, ErrBudgetExhausted, ctxErr)
	}
	return fmt.Errorf("resilience: %s: %w after %d attempts (last: %w)",
		op, ErrBudgetExhausted, attempts, lastErr)
}

// Do is the single-target convenience wrapper around Execute for callers
// without a failover ladder (e.g. the registry client).
func (p *Policy) Do(ctx context.Context, endpoint, op string, idempotent bool,
	fn func(ctx context.Context) (any, error)) (any, error) {
	return p.Execute(ctx, op, idempotent, Target{ID: endpoint, Do: fn})
}
