package resilience

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"harness2/internal/telemetry"
)

// testPolicy builds a policy with a no-op sleep (tests never wait out real
// backoffs) and a disabled registry.
func testPolicy(t *testing.T, opts ...Option) *Policy {
	t.Helper()
	base := []Option{
		WithSeed(1),
		WithTelemetry(telemetry.Disabled()),
		WithSleep(func(ctx context.Context, d time.Duration) error { return ctx.Err() }),
	}
	p, err := New(append(base, opts...)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

func TestOptionValidation(t *testing.T) {
	bad := [][]Option{
		{WithMaxAttempts(0)},
		{WithMaxAttempts(101)},
		{WithBackoff(0, time.Second)},
		{WithBackoff(time.Second, time.Millisecond)},
		{WithAttemptTimeout(-1)},
		{WithBudget(0)},
		{WithBudget(-time.Second)},
		{WithBreaker(0, time.Second)},
		{WithBreaker(3, 0)},
		{WithHedging(-1, 2)},
		{WithHedging(0, 1)},
		{WithSleep(nil)},
		{WithClock(nil)},
		{nil},
	}
	for i, opts := range bad {
		if _, err := New(opts...); err == nil {
			t.Errorf("case %d: invalid option accepted", i)
		}
	}
	if _, err := New(WithMaxAttempts(5), WithBackoff(time.Millisecond, time.Second),
		WithAttemptTimeout(0), WithBudget(time.Second), WithBreaker(1, time.Millisecond),
		WithHedging(0, 2), WithSeed(7)); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}

func TestNilPolicyPassThrough(t *testing.T) {
	var p *Policy
	calls := 0
	out, err := p.Execute(context.Background(), "op", false, Target{ID: "a", Do: func(ctx context.Context) (any, error) {
		calls++
		return 42, nil
	}})
	if err != nil || out != 42 || calls != 1 {
		t.Fatalf("nil policy: out=%v err=%v calls=%d", out, err, calls)
	}
	// Nil policy surfaces errors untouched, exactly once.
	boom := errors.New("boom")
	calls = 0
	_, err = p.Do(context.Background(), "a", "op", true, func(ctx context.Context) (any, error) {
		calls++
		return nil, boom
	})
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("nil policy error path: err=%v calls=%d", err, calls)
	}
}

func TestExecuteNoTargets(t *testing.T) {
	p := testPolicy(t)
	if _, err := p.Execute(context.Background(), "op", true); err == nil {
		t.Fatal("want error for empty target list")
	}
}

func TestRetryTransientIdempotent(t *testing.T) {
	p := testPolicy(t, WithMaxAttempts(3))
	calls := 0
	out, err := p.Do(context.Background(), "ep", "op", true, func(ctx context.Context) (any, error) {
		calls++
		if calls < 3 {
			return nil, MarkTransient(errors.New("flaky"))
		}
		return "ok", nil
	})
	if err != nil || out != "ok" || calls != 3 {
		t.Fatalf("out=%v err=%v calls=%d", out, err, calls)
	}
}

func TestNoRetryTransientNonIdempotent(t *testing.T) {
	p := testPolicy(t, WithMaxAttempts(5))
	calls := 0
	_, err := p.Do(context.Background(), "ep", "op", false, func(ctx context.Context) (any, error) {
		calls++
		return nil, MarkTransient(errors.New("maybe executed"))
	})
	if err == nil || calls != 1 {
		t.Fatalf("non-idempotent transient must not retry: err=%v calls=%d", err, calls)
	}
}

func TestRetryUnsentNonIdempotent(t *testing.T) {
	p := testPolicy(t, WithMaxAttempts(3))
	calls := 0
	out, err := p.Do(context.Background(), "ep", "op", false, func(ctx context.Context) (any, error) {
		calls++
		if calls == 1 {
			return nil, MarkUnsent(errors.New("connect refused"))
		}
		return "ok", nil
	})
	if err != nil || out != "ok" || calls != 2 {
		t.Fatalf("unsent must retry even non-idempotent: out=%v err=%v calls=%d", out, err, calls)
	}
}

func TestNoRetryPermanent(t *testing.T) {
	p := testPolicy(t, WithMaxAttempts(5))
	calls := 0
	_, err := p.Do(context.Background(), "ep", "op", true, func(ctx context.Context) (any, error) {
		calls++
		return nil, MarkPermanent(errors.New("bad request"))
	})
	if err == nil || calls != 1 {
		t.Fatalf("permanent must not retry: err=%v calls=%d", err, calls)
	}
}

func TestExhaustedAnnotatesAttempts(t *testing.T) {
	p := testPolicy(t, WithMaxAttempts(4))
	_, err := p.Do(context.Background(), "ep", "op", true, func(ctx context.Context) (any, error) {
		return nil, MarkTransient(errors.New("down"))
	})
	if err == nil || !strings.Contains(err.Error(), "after 4 attempts") {
		t.Fatalf("want attempt annotation, got %v", err)
	}
}

func TestFailoverElsewhere(t *testing.T) {
	// Overloaded on the first rung must advance to the second.
	p := testPolicy(t, WithMaxAttempts(3))
	var aCalls, bCalls int
	out, err := p.Execute(context.Background(), "op", false,
		Target{ID: "a", Do: func(ctx context.Context) (any, error) {
			aCalls++
			return nil, ErrOverloaded
		}},
		Target{ID: "b", Do: func(ctx context.Context) (any, error) {
			bCalls++
			return "from-b", nil
		}},
	)
	if err != nil || out != "from-b" || aCalls != 1 || bCalls != 1 {
		t.Fatalf("out=%v err=%v a=%d b=%d", out, err, aCalls, bCalls)
	}
}

func TestBreakerOpensAndRefuses(t *testing.T) {
	now := time.Unix(0, 0)
	p := testPolicy(t,
		WithMaxAttempts(1),
		WithBreaker(2, time.Second),
		WithClock(func() time.Time { return now }),
	)
	fail := func(ctx context.Context) (any, error) {
		return nil, MarkTransient(errors.New("down"))
	}
	for i := 0; i < 2; i++ {
		if _, err := p.Do(context.Background(), "ep", "op", true, fail); err == nil {
			t.Fatal("want failure")
		}
	}
	if st := p.BreakerFor("ep").State(); st != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", st)
	}
	// While open, the single target is refused without calling Do.
	calls := 0
	_, err := p.Do(context.Background(), "ep", "op", true, func(ctx context.Context) (any, error) {
		calls++
		return nil, nil
	})
	if !errors.Is(err, ErrBreakerOpen) || calls != 0 {
		t.Fatalf("open breaker: err=%v calls=%d", err, calls)
	}
	// After cooldown the half-open probe succeeds and closes the breaker.
	now = now.Add(2 * time.Second)
	out, err := p.Do(context.Background(), "ep", "op", true, func(ctx context.Context) (any, error) {
		return "recovered", nil
	})
	if err != nil || out != "recovered" {
		t.Fatalf("probe: out=%v err=%v", out, err)
	}
	if st := p.BreakerFor("ep").State(); st != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", st)
	}
}

func TestBreakerFailoverToHealthyEndpoint(t *testing.T) {
	now := time.Unix(0, 0)
	p := testPolicy(t,
		WithMaxAttempts(2),
		WithBreaker(1, time.Minute),
		WithClock(func() time.Time { return now }),
	)
	// Open a's breaker.
	p.breaker("a").Report(errors.New("down"))
	if st := p.BreakerFor("a").State(); st != BreakerOpen {
		t.Fatalf("setup: a = %v, want open", st)
	}
	var aCalls, bCalls int
	out, err := p.Execute(context.Background(), "op", false,
		Target{ID: "a", Do: func(ctx context.Context) (any, error) { aCalls++; return nil, errors.New("x") }},
		Target{ID: "b", Do: func(ctx context.Context) (any, error) { bCalls++; return "b", nil }},
	)
	if err != nil || out != "b" || aCalls != 0 || bCalls != 1 {
		t.Fatalf("out=%v err=%v a=%d b=%d", out, err, aCalls, bCalls)
	}
}

func TestBudgetStopsRetries(t *testing.T) {
	p := testPolicy(t, WithMaxAttempts(50), WithBudget(20*time.Millisecond))
	calls := 0
	start := time.Now()
	_, err := p.Do(context.Background(), "ep", "op", true, func(ctx context.Context) (any, error) {
		calls++
		select { // burn the budget inside the attempt
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
		return nil, MarkTransient(errors.New("down"))
	})
	if err == nil {
		t.Fatal("want budget failure")
	}
	if !errors.Is(err, ErrBudgetExhausted) && Classify(err) != KindCanceled {
		t.Fatalf("want budget/deadline error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("budget did not bound wall time: %v (%d calls)", elapsed, calls)
	}
	if calls >= 50 {
		t.Fatalf("budget did not stop retries: %d calls", calls)
	}
}

func TestAttemptTimeoutReclassifiedTransient(t *testing.T) {
	p := testPolicy(t, WithMaxAttempts(2), WithAttemptTimeout(10*time.Millisecond))
	calls := 0
	out, err := p.Do(context.Background(), "ep", "op", true, func(ctx context.Context) (any, error) {
		calls++
		if calls == 1 { // hang past the per-attempt deadline
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return "ok", nil
	})
	if err != nil || out != "ok" || calls != 2 {
		t.Fatalf("attempt timeout must retry: out=%v err=%v calls=%d", out, err, calls)
	}
}

func TestCallerCancellationNotRetried(t *testing.T) {
	p := testPolicy(t, WithMaxAttempts(5))
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	_, err := p.Do(ctx, "ep", "op", true, func(ctx context.Context) (any, error) {
		calls++
		cancel()
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err == nil || calls != 1 {
		t.Fatalf("caller cancel must not retry: err=%v calls=%d", err, calls)
	}
}

func TestHedgingWins(t *testing.T) {
	// Primary hangs; the hedge (rung 2) answers. The race must return the
	// hedge's result without waiting for the primary.
	p := testPolicy(t, WithMaxAttempts(1), WithHedging(time.Millisecond, 2))
	released := make(chan struct{})
	out, err := p.Execute(context.Background(), "op", true,
		Target{ID: "slow", Do: func(ctx context.Context) (any, error) {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-released:
				return "slow", nil
			}
		}},
		Target{ID: "fast", Do: func(ctx context.Context) (any, error) {
			return "fast", nil
		}},
	)
	close(released)
	if err != nil || out != "fast" {
		t.Fatalf("out=%v err=%v, want fast win", out, err)
	}
}

func TestHedgingPrimaryWinUnderDelay(t *testing.T) {
	// The primary answers before the hedge delay: the second rung is never
	// launched.
	p := testPolicy(t, WithMaxAttempts(1), WithHedging(time.Hour, 2))
	var hedged atomic.Int32
	out, err := p.Execute(context.Background(), "op", true,
		Target{ID: "a", Do: func(ctx context.Context) (any, error) { return "a", nil }},
		Target{ID: "b", Do: func(ctx context.Context) (any, error) {
			hedged.Add(1)
			return "b", nil
		}},
	)
	if err != nil || out != "a" || hedged.Load() != 0 {
		t.Fatalf("out=%v err=%v hedged=%d", out, err, hedged.Load())
	}
}

func TestHedgingNotUsedForNonIdempotent(t *testing.T) {
	p := testPolicy(t, WithMaxAttempts(1), WithHedging(0, 2))
	var bCalls atomic.Int32
	out, err := p.Execute(context.Background(), "op", false,
		Target{ID: "a", Do: func(ctx context.Context) (any, error) { return "a", nil }},
		Target{ID: "b", Do: func(ctx context.Context) (any, error) { bCalls.Add(1); return "b", nil }},
	)
	if err != nil || out != "a" || bCalls.Load() != 0 {
		t.Fatalf("non-idempotent must not hedge: out=%v err=%v b=%d", out, err, bCalls.Load())
	}
}

func TestHedgingFailedRacerLaunchesNextImmediately(t *testing.T) {
	// Rung 1 fails elsewhere-retryable: rung 2 must launch without waiting
	// out the (infinite) hedge delay.
	p := testPolicy(t, WithMaxAttempts(1), WithHedging(time.Hour, 2))
	out, err := p.Execute(context.Background(), "op", true,
		Target{ID: "a", Do: func(ctx context.Context) (any, error) {
			return nil, ErrOverloaded
		}},
		Target{ID: "b", Do: func(ctx context.Context) (any, error) { return "b", nil }},
	)
	if err != nil || out != "b" {
		t.Fatalf("out=%v err=%v, want failover to b", out, err)
	}
}

func TestHedgingAllFail(t *testing.T) {
	p := testPolicy(t, WithMaxAttempts(1), WithHedging(0, 3))
	boom := MarkPermanent(errors.New("boom"))
	_, err := p.Execute(context.Background(), "op", true,
		Target{ID: "a", Do: func(ctx context.Context) (any, error) { return nil, boom }},
		Target{ID: "b", Do: func(ctx context.Context) (any, error) { return nil, boom }},
	)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("want propagated failure, got %v", err)
	}
}

func TestBackoffEnvelope(t *testing.T) {
	p := testPolicy(t, WithBackoff(time.Millisecond, 8*time.Millisecond))
	for attempt := 0; attempt < 20; attempt++ {
		ceil := time.Millisecond << uint(attempt)
		if ceil > 8*time.Millisecond || ceil <= 0 {
			ceil = 8 * time.Millisecond
		}
		for i := 0; i < 50; i++ {
			if d := p.backoff(attempt); d < 0 || d > ceil {
				t.Fatalf("attempt %d: backoff %v outside [0,%v]", attempt, d, ceil)
			}
		}
	}
}

func TestPolicyTelemetry(t *testing.T) {
	r := telemetry.New()
	p, err := New(
		WithTelemetry(r),
		WithMaxAttempts(3),
		WithSeed(1),
		WithSleep(func(ctx context.Context, d time.Duration) error { return ctx.Err() }),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	calls := 0
	if _, err := p.Do(context.Background(), "ep", "ping", true, func(ctx context.Context) (any, error) {
		calls++
		if calls < 2 {
			return nil, MarkTransient(errors.New("flaky"))
		}
		return nil, nil
	}); err != nil {
		t.Fatalf("Do: %v", err)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := sb.String()
	for _, want := range []string{
		`harness_resilience_retries_total{op="ping"} 1`,
		`harness_resilience_success_total{op="ping"} 1`,
		`harness_resilience_attempt_failures_total{op_kind="ping|transient"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("telemetry missing %q in:\n%s", want, text)
		}
	}
}
