package resilience

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"harness2/internal/telemetry"
)

func TestNilLimiterAdmitsEverything(t *testing.T) {
	var l *Limiter
	release, err := l.Acquire(context.Background())
	if err != nil || release == nil {
		t.Fatalf("nil limiter: release-nil=%v err=%v", release == nil, err)
	}
	release()
	if l.InFlight() != 0 || l.Queued() != 0 {
		t.Fatal("nil limiter reports zero")
	}
}

func TestLimiterConcurrencyBound(t *testing.T) {
	l := NewLimiter(2, 0, 0)
	r1, err1 := l.Acquire(context.Background())
	r2, err2 := l.Acquire(context.Background())
	if err1 != nil || err2 != nil {
		t.Fatalf("first two acquisitions failed: %v %v", err1, err2)
	}
	if got := l.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	// Third is shed immediately: no queue configured.
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	r1()
	if got := l.InFlight(); got != 1 {
		t.Fatalf("InFlight after release = %d, want 1", got)
	}
	// A slot freed: admission resumes.
	r3, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	r3()
	r2()
}

func TestLimiterQueueAdmitsWhenFreed(t *testing.T) {
	l := NewLimiter(1, 1, time.Second)
	r1, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	admitted := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r, err := l.Acquire(context.Background())
		admitted <- err
		if err == nil {
			r()
		}
	}()
	// Wait for the goroutine to join the queue, then free the slot.
	for i := 0; l.Queued() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if l.Queued() != 1 {
		t.Fatalf("Queued = %d, want 1", l.Queued())
	}
	r1()
	if err := <-admitted; err != nil {
		t.Fatalf("queued request should be admitted: %v", err)
	}
	wg.Wait()
}

func TestLimiterQueueOverflowSheds(t *testing.T) {
	l := NewLimiter(1, 1, time.Second)
	r1, _ := l.Acquire(context.Background())
	defer r1()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	queued := make(chan struct{})
	go func() {
		close(queued)
		l.Acquire(ctx) // occupies the single queue slot until ctx ends
	}()
	<-queued
	for i := 0; l.Queued() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	// Queue full: next caller is shed without waiting.
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded on full queue, got %v", err)
	}
}

func TestLimiterMaxWaitSheds(t *testing.T) {
	l := NewLimiter(1, 4, 5*time.Millisecond)
	r1, _ := l.Acquire(context.Background())
	defer r1()
	start := time.Now()
	_, err := l.Acquire(context.Background())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded after maxWait, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("maxWait did not bound queueing delay")
	}
}

func TestLimiterContextCancelWhileQueued(t *testing.T) {
	l := NewLimiter(1, 4, 0)
	r1, _ := l.Acquire(context.Background())
	defer r1()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := l.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestLimiterClamps(t *testing.T) {
	l := NewLimiter(0, -1, 0)
	r, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("clamped limiter must admit one: %v", err)
	}
	defer r()
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("clamped queue 0 must shed: %v", err)
	}
}

func TestLimiterTelemetry(t *testing.T) {
	reg := telemetry.New()
	l := NewLimiter(1, 0, 0).SetTelemetry(reg, "test-server")
	r1, _ := l.Acquire(context.Background())
	l.Acquire(context.Background()) // shed
	r1()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := sb.String()
	for _, want := range []string{
		`harness_admission_admitted_total{server="test-server"} 1`,
		`harness_admission_shed_total{server="test-server"} 1`,
		`harness_admission_inflight{server="test-server"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("telemetry missing %q in:\n%s", want, text)
		}
	}
}

// TestLimiterStress hammers the CAS admission path from many goroutines
// with a small limit and queue; under -race this exercises the
// wake-signal handoff for lost-wakeup bugs. Every admitted request must
// release, and the limiter must end the run empty.
func TestLimiterStress(t *testing.T) {
	l := NewLimiter(4, 64, 50*time.Millisecond)
	var admitted, shed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				release, err := l.Acquire(context.Background())
				if err != nil {
					shed.Add(1)
					continue
				}
				admitted.Add(1)
				if n := l.InFlight(); n < 1 || n > 4 {
					t.Errorf("inflight = %d outside [1,4]", n)
				}
				runtime.Gosched()
				release()
			}
		}()
	}
	wg.Wait()
	if l.InFlight() != 0 || l.Queued() != 0 {
		t.Fatalf("leaked state: inflight=%d queued=%d", l.InFlight(), l.Queued())
	}
	if admitted.Load() == 0 {
		t.Fatal("nothing admitted")
	}
	t.Logf("admitted=%d shed=%d", admitted.Load(), shed.Load())
}

// BenchmarkLimiterAcquire32 measures the uncontended-capacity admission
// fast path under 32-way concurrency — the per-frame cost every XDR/shm
// request pays.
func BenchmarkLimiterAcquire32(b *testing.B) {
	l := NewLimiter(64, 0, 0).SetTelemetry(telemetry.Disabled(), "bench")
	ctx := context.Background()
	b.ReportAllocs()
	b.SetParallelism(32)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			release, err := l.Acquire(ctx)
			if err != nil {
				b.Fail()
			}
			release()
		}
	})
}
