package simnet

// LinkProxy extends the fabric from modelled sends to real sockets: a TCP
// proxy that forwards every byte of a live connection while pacing
// delivery to a LinkConfig. Protocol code runs unmodified against real
// listeners; only the wire slows down. Because pacing charges the bytes
// that actually cross the proxy, compressed traffic (XDR v3, S33) is
// billed post-compression — exactly the quantity a WAN bandwidth cap
// would meter — which is what lets E19 measure adaptive compression as a
// wall-clock win rather than inferring it from byte counts.

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// pacer serialises chunks over a finite-bandwidth, fixed-latency pipe.
// Each chunk occupies the pipe for n/bandwidth seconds starting no
// earlier than the previous chunk's departure (store-and-forward), then
// propagates for the latency. The struct is pure state + arithmetic so
// the model is unit-testable without sockets or sleeping.
type pacer struct {
	cfg       LinkConfig
	busyUntil time.Time
}

// deliverAt returns the modelled delivery time of an n-byte chunk handed
// to the pipe at now, advancing the pipe's busy horizon.
func (p *pacer) deliverAt(now time.Time, n int) time.Time {
	depart := now
	if p.busyUntil.After(depart) {
		depart = p.busyUntil
	}
	if p.cfg.Bandwidth > 0 {
		depart = depart.Add(time.Duration(float64(n) / p.cfg.Bandwidth * float64(time.Second)))
	}
	p.busyUntil = depart
	return depart.Add(p.cfg.Latency)
}

// LinkConnStats counts one proxied connection's traffic by direction.
type LinkConnStats struct {
	// ToBackend is bytes forwarded client → backend; ToClient the reverse.
	ToBackend, ToClient int64
}

// LinkProxy is a live TCP proxy applying a LinkConfig to both directions
// of every connection. Each direction gets its own pacer: full duplex,
// like the real links the configs describe.
type LinkProxy struct {
	ln      net.Listener
	backend string
	cfg     LinkConfig

	toBackend atomic.Int64
	toClient  atomic.Int64

	mu    sync.Mutex
	conns []*linkConn

	closed atomic.Bool
	wg     sync.WaitGroup
}

type linkConn struct {
	toBackend, toClient atomic.Int64
}

// NewLinkProxy starts a proxy on a fresh loopback port that forwards to
// backend under cfg's latency/bandwidth model.
func NewLinkProxy(backend string, cfg LinkConfig) (*LinkProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &LinkProxy{ln: ln, backend: backend, cfg: cfg}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's dialable address.
func (p *LinkProxy) Addr() string { return p.ln.Addr().String() }

// Config returns the link model applied to each direction.
func (p *LinkProxy) Config() LinkConfig { return p.cfg }

// Bytes returns total proxied bytes (client→backend, backend→client).
func (p *LinkProxy) Bytes() (toBackend, toClient int64) {
	return p.toBackend.Load(), p.toClient.Load()
}

// ConnStats snapshots per-connection byte counters in accept order.
func (p *LinkProxy) ConnStats() []LinkConnStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]LinkConnStats, len(p.conns))
	for i, c := range p.conns {
		out[i] = LinkConnStats{
			ToBackend: c.toBackend.Load(),
			ToClient:  c.toClient.Load(),
		}
	}
	return out
}

// Close stops accepting and waits for forwarders to drain.
func (p *LinkProxy) Close() error {
	p.closed.Store(true)
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *LinkProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		b, err := net.Dial("tcp", p.backend)
		if err != nil {
			_ = c.Close()
			continue
		}
		lc := &linkConn{}
		p.mu.Lock()
		p.conns = append(p.conns, lc)
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pipe(b, c, &lc.toBackend, &p.toBackend)
		go p.pipe(c, b, &lc.toClient, &p.toClient)
	}
}

// pipe forwards src → dst, sleeping each chunk to its modelled delivery
// time. Reads stay eager (the sender's kernel buffer plays the sender
// host); only onward delivery is delayed, so pipelined traffic overlaps
// serialisation with propagation exactly as the pacer model dictates.
func (p *LinkProxy) pipe(dst, src net.Conn, connCtr, totalCtr *atomic.Int64) {
	defer p.wg.Done()
	defer func() {
		// Half-close so the peer sees EOF rather than a reset.
		if tc, ok := dst.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		} else {
			_ = dst.Close()
		}
	}()
	pc := pacer{cfg: p.cfg}
	buf := make([]byte, 32*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			deliver := pc.deliverAt(time.Now(), n)
			if d := time.Until(deliver); d > 0 {
				time.Sleep(d)
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
			connCtr.Add(int64(n))
			totalCtr.Add(int64(n))
		}
		if err != nil {
			return
		}
	}
}
