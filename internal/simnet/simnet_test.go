package simnet

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func twoNodeNet() *Network {
	n := New(LinkConfig{Latency: time.Millisecond, Bandwidth: 1e6})
	n.AddNode("a")
	n.AddNode("b")
	return n
}

func TestTransferModel(t *testing.T) {
	cfg := LinkConfig{Latency: time.Millisecond, Bandwidth: 1e6} // 1 MB/s
	if got := cfg.Transfer(0); got != time.Millisecond {
		t.Fatalf("zero-byte transfer = %v", got)
	}
	// 1e6 bytes at 1 MB/s = 1 s serialisation + 1 ms latency.
	if got := cfg.Transfer(1e6); got != time.Second+time.Millisecond {
		t.Fatalf("1MB transfer = %v", got)
	}
	inf := LinkConfig{Latency: time.Millisecond}
	if got := inf.Transfer(1e9); got != time.Millisecond {
		t.Fatalf("infinite bandwidth transfer = %v", got)
	}
}

func TestSendAccounting(t *testing.T) {
	n := twoNodeNet()
	d, err := n.Send("a", "b", 500)
	if err != nil {
		t.Fatal(err)
	}
	want := time.Millisecond + 500*time.Microsecond
	if d != want {
		t.Fatalf("delay = %v, want %v", d, want)
	}
	s := n.Stats()
	if s.Messages != 1 || s.Bytes != 500 {
		t.Fatalf("stats = %+v", s)
	}
	ns := n.NodeStats("a")
	if ns.Messages != 1 || ns.Bytes != 500 {
		t.Fatalf("node stats = %+v", ns)
	}
	if bs := n.NodeStats("b"); bs.Messages != 0 {
		t.Fatalf("receiver should not be charged: %+v", bs)
	}
}

func TestLocalSendIsFree(t *testing.T) {
	n := twoNodeNet()
	d, err := n.Send("a", "a", 1e9)
	if err != nil || d != 0 {
		t.Fatalf("local send: d=%v err=%v", d, err)
	}
	if s := n.Stats(); s.Messages != 0 || s.Bytes != 0 {
		t.Fatalf("local send should not be charged: %+v", s)
	}
}

func TestUnknownNode(t *testing.T) {
	n := twoNodeNet()
	if _, err := n.Send("a", "nope", 1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v", err)
	}
	if _, err := n.Send("nope", "a", 1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v", err)
	}
	n.RemoveNode("b")
	if _, err := n.Send("a", "b", 1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("after removal err = %v", err)
	}
}

func TestLinkOverride(t *testing.T) {
	n := twoNodeNet()
	n.AddNode("c")
	n.SetLink("a", "c", WAN)
	fast, _ := n.Send("a", "b", 1000)
	slow, _ := n.Send("a", "c", 1000)
	if slow <= fast {
		t.Fatalf("WAN link (%v) should be slower than default (%v)", slow, fast)
	}
	// Overrides are symmetric.
	slowRev, _ := n.Send("c", "a", 1000)
	if slowRev != slow {
		t.Fatalf("asymmetric link: %v vs %v", slowRev, slow)
	}
}

func TestPartition(t *testing.T) {
	n := twoNodeNet()
	n.Partition("a", "b", true)
	if _, err := n.Send("a", "b", 1); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("err = %v", err)
	}
	if _, err := n.Send("b", "a", 1); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partition must be symmetric: %v", err)
	}
	n.Partition("a", "b", false)
	if _, err := n.Send("a", "b", 1); err != nil {
		t.Fatalf("healed partition: %v", err)
	}
}

func TestDrop(t *testing.T) {
	n := twoNodeNet()
	n.SetDrop(1.0, 42)
	if _, err := n.Send("a", "b", 1); !errors.Is(err, ErrDropped) {
		t.Fatalf("err = %v", err)
	}
	if s := n.Stats(); s.Drops != 1 || s.Messages != 0 {
		t.Fatalf("stats = %+v", s)
	}
	// Deterministic: same seed, same outcome sequence.
	n1 := twoNodeNet()
	n1.SetDrop(0.5, 7)
	n2 := twoNodeNet()
	n2.SetDrop(0.5, 7)
	for i := 0; i < 100; i++ {
		_, e1 := n1.Send("a", "b", 1)
		_, e2 := n2.Send("a", "b", 1)
		if (e1 == nil) != (e2 == nil) {
			t.Fatal("drop sequence not deterministic")
		}
	}
}

func TestRTT(t *testing.T) {
	n := twoNodeNet()
	d, err := n.RTT("a", "b", 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	one, _ := n.Send("a", "b", 100)
	if d != 2*one {
		t.Fatalf("RTT = %v, want %v", d, 2*one)
	}
	if s := n.Stats(); s.Messages != 3 {
		t.Fatalf("messages = %d", s.Messages)
	}
}

func TestBroadcast(t *testing.T) {
	n := New(LinkConfig{Latency: time.Millisecond})
	for _, id := range []string{"a", "b", "c", "d"} {
		n.AddNode(id)
	}
	n.SetLink("a", "d", WAN)
	targets := []string{"a", "b", "c", "d"} // includes self, which is skipped
	par, errs := n.Broadcast("a", targets, 100, true)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	if par != WAN.Transfer(100) {
		t.Fatalf("parallel broadcast = %v, want slowest link %v", par, WAN.Transfer(100))
	}
	n.ResetStats()
	ser, _ := n.Broadcast("a", targets, 100, false)
	if ser <= par {
		t.Fatalf("serial broadcast (%v) should exceed parallel (%v)", ser, par)
	}
	if s := n.Stats(); s.Messages != 3 {
		t.Fatalf("broadcast messages = %d, want 3 (self skipped)", s.Messages)
	}
}

func TestBroadcastPartialFailure(t *testing.T) {
	n := New(LinkConfig{Latency: time.Millisecond})
	for _, id := range []string{"a", "b", "c"} {
		n.AddNode(id)
	}
	n.Partition("a", "c", true)
	_, errs := n.Broadcast("a", []string{"b", "c"}, 10, true)
	if len(errs) != 1 || !errors.Is(errs[0], ErrPartitioned) {
		t.Fatalf("errs = %v", errs)
	}
	if s := n.Stats(); s.Messages != 1 {
		t.Fatalf("messages = %d", s.Messages)
	}
}

func TestResetStats(t *testing.T) {
	n := twoNodeNet()
	_, _ = n.Send("a", "b", 10)
	n.ResetStats()
	if s := n.Stats(); s.Messages != 0 || s.Bytes != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
	if s := n.NodeStats("a"); s.Messages != 0 {
		t.Fatalf("node stats after reset = %+v", s)
	}
}

func TestNodesSorted(t *testing.T) {
	n := New(LinkConfig{})
	for _, id := range []string{"z", "a", "m", "a"} {
		n.AddNode(id)
	}
	got := n.Nodes()
	if len(got) != 3 || got[0] != "a" || got[1] != "m" || got[2] != "z" {
		t.Fatalf("nodes = %v", got)
	}
}

func TestConcurrentSends(t *testing.T) {
	n := New(LinkConfig{Latency: time.Microsecond})
	for _, id := range []string{"a", "b", "c", "d"} {
		n.AddNode(id)
	}
	var wg sync.WaitGroup
	const per = 200
	ids := []string{"a", "b", "c", "d"}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(from string) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				_, _ = n.Send(from, ids[j%4], 8)
			}
		}(ids[i])
	}
	wg.Wait()
	s := n.Stats()
	// Each sender hits itself once per 4 sends (free), so 3/4 are charged.
	want := 4 * per * 3 / 4
	if s.Messages != want {
		t.Fatalf("messages = %d, want %d", s.Messages, want)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	c.Advance(5 * time.Millisecond)
	c.Advance(-time.Hour) // ignored
	if c.Now() != 5*time.Millisecond {
		t.Fatalf("now = %v", c.Now())
	}
	c.AdvanceTo(3 * time.Millisecond) // earlier, ignored
	if c.Now() != 5*time.Millisecond {
		t.Fatalf("now = %v", c.Now())
	}
	c.AdvanceTo(9 * time.Millisecond)
	if c.Now() != 9*time.Millisecond {
		t.Fatalf("now = %v", c.Now())
	}
}

func TestPropertyTransferMonotonicInSize(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		cfg := LinkConfig{Latency: time.Millisecond, Bandwidth: 1e6}
		return cfg.Transfer(x) <= cfg.Transfer(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
