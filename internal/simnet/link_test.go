package simnet

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// TestPacerHandComputed pins the pacing model against hand-computed
// delivery times: 1 MB/s bandwidth, 10 ms latency.
func TestPacerHandComputed(t *testing.T) {
	cfg := LinkConfig{Latency: 10 * time.Millisecond, Bandwidth: 1e6}
	p := pacer{cfg: cfg}
	t0 := time.Unix(1000, 0)

	// First chunk: 100 000 bytes at 1 MB/s = 100 ms serialisation,
	// + 10 ms propagation = deliver at t0+110ms.
	d1 := p.deliverAt(t0, 100_000)
	if want := t0.Add(110 * time.Millisecond); !d1.Equal(want) {
		t.Fatalf("chunk 1 delivered at %v, want %v", d1.Sub(t0), want.Sub(t0))
	}

	// Second chunk handed over immediately (t0): the pipe is busy until
	// t0+100ms, so 50 000 bytes depart at t0+150ms, deliver at t0+160ms.
	d2 := p.deliverAt(t0, 50_000)
	if want := t0.Add(160 * time.Millisecond); !d2.Equal(want) {
		t.Fatalf("chunk 2 delivered at %v, want %v", d2.Sub(t0), want.Sub(t0))
	}

	// Third chunk handed over after the pipe went idle: no queueing.
	t1 := t0.Add(1 * time.Second)
	d3 := p.deliverAt(t1, 10_000)
	if want := t1.Add(20 * time.Millisecond); !d3.Equal(want) {
		t.Fatalf("chunk 3 delivered at %v, want %v", d3.Sub(t1), want.Sub(t1))
	}

	// Zero bandwidth means no serialisation delay, latency only.
	free := pacer{cfg: LinkConfig{Latency: 5 * time.Millisecond}}
	if d := free.deliverAt(t0, 1 << 30); !d.Equal(t0.Add(5 * time.Millisecond)) {
		t.Fatalf("infinite-bandwidth delivery at %v", d.Sub(t0))
	}

	// Pacer must agree with the fabric's Transfer() for a cold pipe.
	p2 := pacer{cfg: cfg}
	if d := p2.deliverAt(t0, 12345); !d.Equal(t0.Add(cfg.Transfer(12345))) {
		t.Fatal("pacer and LinkConfig.Transfer disagree on a cold pipe")
	}
}

// echoServer accepts one connection and echoes everything back.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				_, _ = io.Copy(c, c)
				_ = c.Close()
			}()
		}
	}()
	return ln
}

func TestLinkProxyForwardsAndCounts(t *testing.T) {
	ln := echoServer(t)
	defer ln.Close()

	// Generous bandwidth, small latency: correctness test, not timing.
	proxy, err := NewLinkProxy(ln.Addr().String(), LinkConfig{Latency: time.Millisecond, Bandwidth: 100e6})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	conn, err := net.Dial("tcp", proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte("harness"), 1000)
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("echo mismatch through proxy")
	}
	_ = conn.Close()

	// Counters settle once the forwarders drain.
	deadline := time.Now().Add(2 * time.Second)
	for {
		tb, tc := proxy.Bytes()
		if tb == int64(len(msg)) && tc == int64(len(msg)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("byte counters: toBackend=%d toClient=%d want %d", tb, tc, len(msg))
		}
		time.Sleep(5 * time.Millisecond)
	}
	cs := proxy.ConnStats()
	if len(cs) != 1 || cs[0].ToBackend != int64(len(msg)) || cs[0].ToClient != int64(len(msg)) {
		t.Fatalf("conn stats = %+v", cs)
	}
}

// TestLinkProxyPacesTransferTime checks wall-clock pacing against the
// model: 250 KB over 1 MB/s ≈ 250 ms serialisation, which dominates
// scheduler noise; an unpaced loopback would finish in microseconds.
func TestLinkProxyPacesTransferTime(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	ln := echoServer(t)
	defer ln.Close()

	cfg := LinkConfig{Latency: 0, Bandwidth: 1e6}
	proxy, err := NewLinkProxy(ln.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	conn, err := net.Dial("tcp", proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const n = 250_000
	payload := bytes.Repeat([]byte{0xAB}, n)
	start := time.Now()
	go func() { _, _ = conn.Write(payload) }()
	if _, err := io.ReadFull(conn, make([]byte, n)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)

	// Full duplex pipelines the echo behind the request: the reverse
	// direction serialises each chunk as it arrives, so the round trip is
	// one full serialisation (250 ms) plus roughly one chunk's worth of
	// tail — not 2 × 250 ms. An unpaced loopback finishes in microseconds.
	want := cfg.Transfer(n)
	if elapsed < want {
		t.Fatalf("round trip %v < modelled minimum %v — proxy is not pacing", elapsed, want)
	}
	if elapsed > 2*want {
		t.Fatalf("round trip %v, model says ≈ %v — pacing way over", elapsed, want)
	}
}
