// Package simnet provides a deterministic, virtual-time network fabric
// for protocol experiments. The HARNESS II paper argues about coherency
// and lookup architectures in terms of message counts and transfer costs
// ("this approach minimizes network traffic during state changes but
// introduces overheads for state inquiry"); simnet makes those costs
// measurable without a physical testbed by accounting every send against
// a configurable latency/bandwidth model.
//
// The fabric is not a packet simulator: protocols run as ordinary Go code
// and charge each message to the fabric, which returns the modelled
// delivery delay. Deterministic virtual time keeps experiment output
// stable across runs and machines, which is what the figure-shape
// reproduction needs. Fault injection (partitions and probabilistic drop)
// supports the robustness tests of the DVM layer.
package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"harness2/internal/resilience/chaos"
)

// Errors returned by Send.
var (
	ErrUnknownNode = errors.New("simnet: unknown node")
	ErrPartitioned = errors.New("simnet: nodes are partitioned")
	ErrDropped     = errors.New("simnet: message dropped")
)

// LinkConfig models one directionless link class.
type LinkConfig struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Bandwidth is the throughput in bytes per second; zero means
	// infinite (no serialisation delay).
	Bandwidth float64
}

// Transfer returns the modelled one-way delay for a payload of n bytes.
func (c LinkConfig) Transfer(n int) time.Duration {
	d := c.Latency
	if c.Bandwidth > 0 {
		d += time.Duration(float64(n) / c.Bandwidth * float64(time.Second))
	}
	return d
}

// LAN and WAN are convenience link classes roughly matching the paper's
// era: a switched-Ethernet cluster link and a wide-area internet path.
var (
	LAN = LinkConfig{Latency: 100 * time.Microsecond, Bandwidth: 12.5e6} // 100 Mb/s
	WAN = LinkConfig{Latency: 40 * time.Millisecond, Bandwidth: 1.25e6}  // 10 Mb/s
)

// Stats aggregates fabric traffic.
type Stats struct {
	Messages int
	Bytes    int64
	Drops    int
}

// Network is a set of named nodes joined by configurable links.
// All methods are safe for concurrent use.
type Network struct {
	mu         sync.Mutex
	def        LinkConfig
	nodes      map[string]bool
	links      map[[2]string]LinkConfig
	partitions map[[2]string]bool
	dropProb   float64
	rng        *rand.Rand
	chaos      *chaos.Injector
	stats      Stats
	perNode    map[string]*Stats
}

// New creates a network whose links default to def.
func New(def LinkConfig) *Network {
	return &Network{
		def:        def,
		nodes:      make(map[string]bool),
		links:      make(map[[2]string]LinkConfig),
		partitions: make(map[[2]string]bool),
		rng:        rand.New(rand.NewSource(1)),
		perNode:    make(map[string]*Stats),
	}
}

// AddNode registers a node; adding an existing node is a no-op.
func (n *Network) AddNode(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.nodes[id] {
		n.nodes[id] = true
		n.perNode[id] = &Stats{}
	}
}

// RemoveNode deregisters a node. Its statistics are retained.
func (n *Network) RemoveNode(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, id)
}

// Nodes returns the registered node IDs, sorted.
func (n *Network) Nodes() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.nodes))
	for id := range n.nodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func key(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// SetLink overrides the link class between a and b (both directions).
func (n *Network) SetLink(a, b string, cfg LinkConfig) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[key(a, b)] = cfg
}

// Partition severs (heal=false restores) connectivity between a and b.
func (n *Network) Partition(a, b string, broken bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if broken {
		n.partitions[key(a, b)] = true
	} else {
		delete(n.partitions, key(a, b))
	}
}

// SetDrop configures probabilistic message loss with a deterministic seed.
func (n *Network) SetDrop(p float64, seed int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dropProb = p
	n.rng = rand.New(rand.NewSource(seed))
}

// SetChaos attaches a deterministic fault injector to the fabric. Rules
// are evaluated per message with site ("simnet", from-node, to-node):
// error, hang and partial faults drop the message (counted in Stats) and
// latency faults add their duration to the modelled delivery delay. A nil
// injector (the default) costs one branch per send.
func (n *Network) SetChaos(in *chaos.Injector) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.chaos = in
}

// Send charges one message of the given size from a to b and returns its
// modelled one-way delivery delay. Local (a == b) sends are free and never
// fail: the paper's localization argument is precisely that co-located
// components bypass the network.
func (n *Network) Send(from, to string, bytes int) (time.Duration, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.nodes[from] {
		return 0, fmt.Errorf("%w: %s", ErrUnknownNode, from)
	}
	if !n.nodes[to] {
		return 0, fmt.Errorf("%w: %s", ErrUnknownNode, to)
	}
	if from == to {
		return 0, nil
	}
	if n.partitions[key(from, to)] {
		return 0, ErrPartitioned
	}
	if n.dropProb > 0 && n.rng.Float64() < n.dropProb {
		n.stats.Drops++
		n.perNode[from].Drops++
		return 0, ErrDropped
	}
	var chaosDelay time.Duration
	if f, ok := n.chaos.Eval("simnet", from, to); ok {
		switch f.Kind {
		case chaos.FaultLatency:
			// Virtual time: the injected latency joins the modelled delay.
			chaosDelay = f.Latency
		default:
			// error/hang/partial all manifest as a lost message in a
			// virtual-time fabric.
			n.stats.Drops++
			n.perNode[from].Drops++
			return 0, ErrDropped
		}
	}
	cfg, ok := n.links[key(from, to)]
	if !ok {
		cfg = n.def
	}
	n.stats.Messages++
	n.stats.Bytes += int64(bytes)
	n.perNode[from].Messages++
	n.perNode[from].Bytes += int64(bytes)
	return cfg.Transfer(bytes) + chaosDelay, nil
}

// RTT charges a request/response exchange and returns the total modelled
// round-trip delay.
func (n *Network) RTT(from, to string, reqBytes, respBytes int) (time.Duration, error) {
	d1, err := n.Send(from, to, reqBytes)
	if err != nil {
		return 0, err
	}
	d2, err := n.Send(to, from, respBytes)
	if err != nil {
		return d1, err
	}
	return d1 + d2, nil
}

// Broadcast charges one message from from to every target. When parallel
// is true the modelled elapsed time is the slowest single delivery (the
// sender overlaps transmissions); otherwise deliveries serialise.
// Unreachable targets are skipped and reported; the elapsed time covers
// the successful deliveries only.
func (n *Network) Broadcast(from string, targets []string, bytes int, parallel bool) (time.Duration, []error) {
	var elapsed time.Duration
	var errs []error
	for _, to := range targets {
		if to == from {
			continue
		}
		d, err := n.Send(from, to, bytes)
		if err != nil {
			errs = append(errs, fmt.Errorf("to %s: %w", to, err))
			continue
		}
		if parallel {
			if d > elapsed {
				elapsed = d
			}
		} else {
			elapsed += d
		}
	}
	return elapsed, errs
}

// Stats returns a snapshot of aggregate traffic counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// NodeStats returns a snapshot of one node's counters.
func (n *Network) NodeStats(id string) Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if s, ok := n.perNode[id]; ok {
		return *s
	}
	return Stats{}
}

// ResetStats zeroes all counters.
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = Stats{}
	for id := range n.perNode {
		n.perNode[id] = &Stats{}
	}
}

// Clock is a virtual clock protocols use to accumulate modelled time.
// It is not safe for concurrent use; each simulated actor owns one.
type Clock struct {
	now time.Duration
}

// Now returns the accumulated virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward; negative advances are ignored.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
	}
}

// AdvanceTo moves the clock to t if t is later.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}
