// Package mpi implements the Harness MPI emulation plugin. The paper
// lists it beside the PVM plugin: "users may first load plugins that
// emulate distributed computing environments (currently PVM, MPI, and
// JavaSpaces plugins are available), thereby creating a framework within
// which their legacy codes may run."
//
// Like a real MPI-on-Harness, the emulation leverages the existing
// substrate instead of reimplementing transport: a World spawns one task
// per rank through the hpvmd daemons of a router domain (Figure 2's
// plugin-leveraging pattern) and layers the MPI communicator semantics —
// rank-addressed point-to-point, barriers, broadcast, scatter/gather,
// and reductions — on top of PVM's tagged messaging.
package mpi

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"harness2/internal/pvm"
	"harness2/internal/wire"
)

// Errors returned by communicator operations.
var (
	ErrRankRange   = errors.New("mpi: rank out of range")
	ErrWorldActive = errors.New("mpi: world already running")
)

// AnySource matches any sender rank in Recv.
const AnySource = -1

// AnyTag matches any message tag in Recv.
const AnyTag = -1

// internal tags reserved by the collectives; user tags must be >= 0 and
// are offset into a disjoint range.
const (
	tagBarrierBase = -1000
	tagCollective  = -2000
	userTagBase    = 1 << 16
)

// RankFunc is the program executed by every rank.
type RankFunc func(ctx context.Context, comm *Comm) error

// World is a fixed-size MPI job bound to a set of hpvmd daemons.
type World struct {
	router  *pvm.Router
	daemons []*pvm.Daemon

	mu      sync.Mutex
	running bool
	seq     int
}

// NewWorld creates an MPI job factory over the given daemons; ranks are
// distributed round-robin across them.
func NewWorld(router *pvm.Router, daemons []*pvm.Daemon) (*World, error) {
	if len(daemons) == 0 {
		return nil, fmt.Errorf("mpi: world needs at least one daemon")
	}
	return &World{router: router, daemons: daemons}, nil
}

// Run spawns size ranks executing fn and waits for all of them. The
// first rank error (if any) is returned after every rank has exited.
// Worlds are serially reusable but not concurrently runnable.
func (w *World) Run(size int, fn RankFunc) error {
	if size < 1 {
		return fmt.Errorf("mpi: world size must be positive")
	}
	w.mu.Lock()
	if w.running {
		w.mu.Unlock()
		return ErrWorldActive
	}
	w.running = true
	w.seq++
	job := w.seq
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		w.running = false
		w.mu.Unlock()
	}()

	// Spawn one pvm task per rank, round-robin over daemons, collecting
	// handles so every communicator can address every rank and the world
	// can wait on each task without racing its exit.
	tids := make([]pvm.TID, size)
	tasks := make([]*pvm.Task, size)
	taskName := fmt.Sprintf("mpi-job-%d", job)
	for rank := 0; rank < size; rank++ {
		d := w.daemons[rank%len(w.daemons)]
		comm := &Comm{world: w, rank: rank, size: size, job: job}
		d.RegisterTaskFunc(taskName, func(ctx context.Context, self *pvm.Task, args []string) error {
			// The communicator learns its own task and the rank→TID map
			// via the bootstrap message (tag 0 is reserved for it).
			comm.task = self
			boot, err := self.Recv(pvm.AnySrc, 0)
			if err != nil {
				return err
			}
			rawTids, err := pvm.UpkDoubleArray(boot, "tids")
			if err != nil {
				return err
			}
			comm.tids = make([]pvm.TID, len(rawTids))
			for i, t := range rawTids {
				comm.tids[i] = pvm.TID(int32(t))
			}
			return fn(ctx, comm)
		})
		got, err := d.SpawnHandles(taskName, nil, 1)
		if err != nil {
			return fmt.Errorf("mpi: spawning rank %d: %w", rank, err)
		}
		tasks[rank] = got[0]
		tids[rank] = got[0].TID
	}

	// Bootstrap: broadcast the rank table. TIDs are int32; ship them as
	// doubles (exactly representable) to stay within the numeric wire set.
	table := make([]float64, size)
	for i, t := range tids {
		table[i] = float64(int32(t))
	}
	boot := w.daemons[0]
	boot.RegisterTaskFunc(taskName+"-boot", func(ctx context.Context, self *pvm.Task, args []string) error {
		for _, tid := range tids {
			if err := self.Send(tid, 0, []wire.Arg{pvm.PkDoubleArray("tids", table)}); err != nil {
				return err
			}
		}
		return nil
	})
	if _, err := boot.Spawn(taskName+"-boot", nil, 1); err != nil {
		return fmt.Errorf("mpi: bootstrap: %w", err)
	}

	// Wait for completion. A failing rank aborts the whole job
	// (MPI_Abort semantics): surviving ranks blocked in Recv or
	// collectives are killed so the world always terminates.
	type rankExit struct {
		rank int
		err  error
	}
	exits := make(chan rankExit, size)
	for rank, t := range tasks {
		go func(rank int, t *pvm.Task) {
			exits <- rankExit{rank, t.Wait()}
		}(rank, t)
	}
	var firstErr error
	for i := 0; i < size; i++ {
		ex := <-exits
		if ex.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("mpi: rank %d: %w", ex.rank, ex.err)
			for _, t := range tasks {
				t.Kill()
			}
		}
	}
	return firstErr
}

// Comm is the per-rank communicator handle (MPI_COMM_WORLD).
type Comm struct {
	world *World
	task  *pvm.Task
	tids  []pvm.TID
	rank  int
	size  int
	job   int
	// barrierSeq distinguishes successive barriers and collectives.
	barrierSeq int
	collSeq    int
}

// Rank returns the caller's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.size }

func (c *Comm) tidOf(rank int) (pvm.TID, error) {
	if rank < 0 || rank >= c.size {
		return 0, fmt.Errorf("%w: %d (size %d)", ErrRankRange, rank, c.size)
	}
	return c.tids[rank], nil
}

func (c *Comm) rankOf(tid pvm.TID) int {
	for r, t := range c.tids {
		if t == tid {
			return r
		}
	}
	return -1
}

// Message is a received point-to-point message.
type Message struct {
	Source int
	Tag    int
	Body   []wire.Arg
}

// Send delivers body to the destination rank with the given tag
// (MPI_Send). Tags must be non-negative.
func (c *Comm) Send(dst, tag int, body []wire.Arg) error {
	if tag < 0 {
		return fmt.Errorf("mpi: user tags must be non-negative")
	}
	tid, err := c.tidOf(dst)
	if err != nil {
		return err
	}
	return c.task.Send(tid, int32(userTagBase+tag), body)
}

// Recv blocks for a message from src (or AnySource) with tag (or AnyTag)
// — MPI_Recv.
func (c *Comm) Recv(src, tag int) (Message, error) {
	wantSrc := pvm.AnySrc
	if src != AnySource {
		tid, err := c.tidOf(src)
		if err != nil {
			return Message{}, err
		}
		wantSrc = tid
	}
	wantTag := pvm.AnyTag
	if tag != AnyTag {
		if tag < 0 {
			return Message{}, fmt.Errorf("mpi: user tags must be non-negative")
		}
		wantTag = int32(userTagBase + tag)
	}
	m, err := c.task.Recv(wantSrc, wantTag)
	if err != nil {
		return Message{}, err
	}
	return Message{
		Source: c.rankOf(m.Src),
		Tag:    int(m.Tag) - userTagBase,
		Body:   m.Body,
	}, nil
}

// Barrier blocks until every rank has entered — MPI_Barrier.
func (c *Comm) Barrier() error {
	c.barrierSeq++
	name := fmt.Sprintf("mpi-%d-barrier-%d", c.job, c.barrierSeq)
	return c.task.Barrier(name, c.size)
}

// Bcast distributes root's values to every rank and returns them —
// MPI_Bcast. All ranks must pass the same root; non-root ranks' body is
// ignored.
func (c *Comm) Bcast(root int, body []wire.Arg) ([]wire.Arg, error) {
	if _, err := c.tidOf(root); err != nil {
		return nil, err
	}
	c.collSeq++
	tag := int32(tagCollective - c.collSeq)
	if c.rank == root {
		for r := 0; r < c.size; r++ {
			if r == root {
				continue
			}
			if err := c.task.Send(c.tids[r], tag, body); err != nil {
				return nil, err
			}
		}
		return body, nil
	}
	m, err := c.task.Recv(c.tids[root], tag)
	if err != nil {
		return nil, err
	}
	return m.Body, nil
}

// Op is a reduction operator over float64.
type Op func(a, b float64) float64

// Builtin reduction operators.
var (
	OpSum Op = func(a, b float64) float64 { return a + b }
	OpMax Op = math.Max
	OpMin Op = math.Min
	OpPro Op = func(a, b float64) float64 { return a * b }
)

// Reduce folds every rank's value with op at root — MPI_Reduce. Non-root
// ranks receive 0 and nil error on success.
func (c *Comm) Reduce(root int, op Op, value float64) (float64, error) {
	if _, err := c.tidOf(root); err != nil {
		return 0, err
	}
	c.collSeq++
	tag := int32(tagCollective - c.collSeq)
	if c.rank != root {
		err := c.task.Send(c.tids[root], tag, []wire.Arg{pvm.PkDouble("v", value)})
		return 0, err
	}
	acc := value
	for i := 1; i < c.size; i++ {
		m, err := c.task.Recv(pvm.AnySrc, tag)
		if err != nil {
			return 0, err
		}
		v, err := pvm.UpkDouble(m, "v")
		if err != nil {
			return 0, err
		}
		acc = op(acc, v)
	}
	return acc, nil
}

// AllReduce is Reduce followed by Bcast — MPI_Allreduce.
func (c *Comm) AllReduce(op Op, value float64) (float64, error) {
	acc, err := c.Reduce(0, op, value)
	if err != nil {
		return 0, err
	}
	out, err := c.Bcast(0, []wire.Arg{pvm.PkDouble("v", acc)})
	if err != nil {
		return 0, err
	}
	return pvm.UpkDouble(pvmMessage(out), "v")
}

// Scatter splits root's data into size equal chunks and delivers the
// rank-th chunk to each rank — MPI_Scatter. len(data) must be a multiple
// of Size at root.
func (c *Comm) Scatter(root int, data []float64) ([]float64, error) {
	if _, err := c.tidOf(root); err != nil {
		return nil, err
	}
	c.collSeq++
	tag := int32(tagCollective - c.collSeq)
	if c.rank == root {
		if len(data)%c.size != 0 {
			return nil, fmt.Errorf("mpi: scatter of %d elements across %d ranks", len(data), c.size)
		}
		chunk := len(data) / c.size
		for r := 0; r < c.size; r++ {
			part := data[r*chunk : (r+1)*chunk]
			if r == root {
				continue
			}
			if err := c.task.Send(c.tids[r], tag, []wire.Arg{pvm.PkDoubleArray("d", part)}); err != nil {
				return nil, err
			}
		}
		return append([]float64(nil), data[root*chunk:(root+1)*chunk]...), nil
	}
	m, err := c.task.Recv(c.tids[root], tag)
	if err != nil {
		return nil, err
	}
	return pvm.UpkDoubleArray(m, "d")
}

// Gather collects every rank's chunk at root in rank order — MPI_Gather.
// Non-root ranks receive nil on success.
func (c *Comm) Gather(root int, chunk []float64) ([]float64, error) {
	if _, err := c.tidOf(root); err != nil {
		return nil, err
	}
	c.collSeq++
	tag := int32(tagCollective - c.collSeq)
	if c.rank != root {
		err := c.task.Send(c.tids[root], tag,
			[]wire.Arg{pvm.PkInt("rank", int32(c.rank)), pvm.PkDoubleArray("d", chunk)})
		return nil, err
	}
	parts := make([][]float64, c.size)
	parts[root] = chunk
	for i := 1; i < c.size; i++ {
		m, err := c.task.Recv(pvm.AnySrc, tag)
		if err != nil {
			return nil, err
		}
		r, err := pvm.UpkInt(m, "rank")
		if err != nil {
			return nil, err
		}
		if int(r) < 0 || int(r) >= c.size {
			return nil, fmt.Errorf("%w: gathered rank %d", ErrRankRange, r)
		}
		part, err := pvm.UpkDoubleArray(m, "d")
		if err != nil {
			return nil, err
		}
		parts[r] = part
	}
	var out []float64
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// pvmMessage adapts a bare arg list to the pvm unpack helpers.
func pvmMessage(body []wire.Arg) pvm.Message { return pvm.Message{Body: body} }
