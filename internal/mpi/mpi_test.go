package mpi

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"harness2/internal/container"
	"harness2/internal/events"
	"harness2/internal/kernel"
	"harness2/internal/namesvc"
	"harness2/internal/pvm"
	"harness2/internal/simnet"
	"harness2/internal/wire"
)

func newWorld(t *testing.T, hosts int) *World {
	t.Helper()
	router := pvm.NewRouter(simnet.New(simnet.LAN))
	daemons := make([]*pvm.Daemon, hosts)
	for i := range daemons {
		name := fmt.Sprintf("mpi-host%d-%s", i, t.Name())
		k := kernel.New(name, container.Config{})
		k.RegisterPlugin(events.PluginClass, events.Factory())
		k.RegisterPlugin(namesvc.PluginClass, namesvc.Factory())
		k.RegisterPlugin(pvm.PluginClass, pvm.Factory(name, router),
			events.PluginClass, namesvc.PluginClass)
		if err := k.Load(pvm.PluginClass); err != nil {
			t.Fatal(err)
		}
		comp, _ := k.Plugin(pvm.PluginClass)
		daemons[i] = comp.(*pvm.Daemon)
	}
	w, err := NewWorld(router, daemons)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWorldValidation(t *testing.T) {
	if _, err := NewWorld(pvm.NewRouter(nil), nil); err == nil {
		t.Fatal("empty daemon set should fail")
	}
	w := newWorld(t, 1)
	if err := w.Run(0, func(context.Context, *Comm) error { return nil }); err == nil {
		t.Fatal("zero size should fail")
	}
}

func TestRankAndSize(t *testing.T) {
	w := newWorld(t, 2)
	var mu sync.Mutex
	seen := map[int]bool{}
	err := w.Run(5, func(ctx context.Context, c *Comm) error {
		if c.Size() != 5 {
			return fmt.Errorf("size = %d", c.Size())
		}
		mu.Lock()
		seen[c.Rank()] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 {
		t.Fatalf("ranks seen = %v", seen)
	}
}

func TestSendRecv(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(2, func(ctx context.Context, c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []wire.Arg{pvm.PkDouble("x", 3.5)})
		}
		m, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if m.Source != 0 || m.Tag != 7 {
			return fmt.Errorf("envelope = %+v", m)
		}
		v, err := pvm.UpkDouble(pvmMessage(m.Body), "x")
		if err != nil {
			return err
		}
		if v != 3.5 {
			return fmt.Errorf("v = %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvWildcards(t *testing.T) {
	w := newWorld(t, 1)
	err := w.Run(3, func(ctx context.Context, c *Comm) error {
		if c.Rank() == 0 {
			got := map[int]bool{}
			for i := 0; i < 2; i++ {
				m, err := c.Recv(AnySource, AnyTag)
				if err != nil {
					return err
				}
				got[m.Source] = true
			}
			if !got[1] || !got[2] {
				return fmt.Errorf("sources = %v", got)
			}
			return nil
		}
		return c.Send(0, c.Rank(), nil)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendErrors(t *testing.T) {
	w := newWorld(t, 1)
	err := w.Run(1, func(ctx context.Context, c *Comm) error {
		if err := c.Send(5, 0, nil); !errors.Is(err, ErrRankRange) {
			return fmt.Errorf("send oob: %v", err)
		}
		if err := c.Send(0, -3, nil); err == nil {
			return fmt.Errorf("negative tag accepted")
		}
		if _, err := c.Recv(9, 0); !errors.Is(err, ErrRankRange) {
			return fmt.Errorf("recv oob: %v", err)
		}
		if _, err := c.Recv(0, -2); err == nil {
			return fmt.Errorf("negative recv tag accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	w := newWorld(t, 2)
	const n = 4
	var mu sync.Mutex
	phase := 0
	entered := 0
	err := w.Run(n, func(ctx context.Context, c *Comm) error {
		mu.Lock()
		entered++
		mu.Unlock()
		if err := c.Barrier(); err != nil {
			return err
		}
		// After the barrier every rank must have entered.
		mu.Lock()
		if entered != n {
			mu.Unlock()
			return fmt.Errorf("entered = %d", entered)
		}
		phase = 1
		mu.Unlock()
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if phase != 1 {
		t.Fatal("phase not reached")
	}
}

func TestBcast(t *testing.T) {
	w := newWorld(t, 2)
	var mu sync.Mutex
	got := map[int]float64{}
	err := w.Run(4, func(ctx context.Context, c *Comm) error {
		var body []wire.Arg
		if c.Rank() == 2 {
			body = []wire.Arg{pvm.PkDouble("v", 42)}
		}
		out, err := c.Bcast(2, body)
		if err != nil {
			return err
		}
		v, err := pvm.UpkDouble(pvmMessage(out), "v")
		if err != nil {
			return err
		}
		mu.Lock()
		got[c.Rank()] = v
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if got[r] != 42 {
			t.Fatalf("rank %d got %v", r, got[r])
		}
	}
}

func TestReduceAndAllReduce(t *testing.T) {
	w := newWorld(t, 3)
	const n = 6
	var mu sync.Mutex
	sums := map[int]float64{}
	err := w.Run(n, func(ctx context.Context, c *Comm) error {
		v := float64(c.Rank() + 1) // 1..6, sum 21, max 6
		sum, err := c.Reduce(0, OpSum, v)
		if err != nil {
			return err
		}
		if c.Rank() == 0 && sum != 21 {
			return fmt.Errorf("reduce sum = %v", sum)
		}
		all, err := c.AllReduce(OpMax, v)
		if err != nil {
			return err
		}
		mu.Lock()
		sums[c.Rank()] = all
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		if sums[r] != 6 {
			t.Fatalf("rank %d allreduce = %v", r, sums[r])
		}
	}
}

func TestScatterGather(t *testing.T) {
	w := newWorld(t, 2)
	const n = 4
	data := []float64{0, 1, 2, 3, 4, 5, 6, 7} // 2 per rank
	var mu sync.Mutex
	var gathered []float64
	err := w.Run(n, func(ctx context.Context, c *Comm) error {
		var in []float64
		if c.Rank() == 0 {
			in = data
		}
		chunk, err := c.Scatter(0, in)
		if err != nil {
			return err
		}
		if len(chunk) != 2 || chunk[0] != float64(2*c.Rank()) {
			return fmt.Errorf("rank %d chunk = %v", c.Rank(), chunk)
		}
		// Double each element, gather back at root.
		out := []float64{chunk[0] * 2, chunk[1] * 2}
		res, err := c.Gather(0, out)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			gathered = res
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 2, 4, 6, 8, 10, 12, 14}
	if !wire.Equal(gathered, want) {
		t.Fatalf("gathered = %v", gathered)
	}
}

func TestScatterSizeMismatch(t *testing.T) {
	w := newWorld(t, 1)
	err := w.Run(3, func(ctx context.Context, c *Comm) error {
		var in []float64
		if c.Rank() == 0 {
			in = []float64{1, 2, 3, 4} // not divisible by 3
		}
		_, err := c.Scatter(0, in)
		if c.Rank() == 0 {
			if err == nil {
				return fmt.Errorf("scatter should fail at root")
			}
			// Unblock the other ranks so the job terminates: resend a
			// well-formed scatter.
			// (ranks 1,2 are still waiting on the first scatter tag; the
			// error path must not deadlock the world — root's failure ends
			// its task, cancelling nothing, so the others would hang.
			// Send them their chunks manually on the stale tag instead.)
			return fmt.Errorf("expected failure")
		}
		_, _ = err, in
		return nil
	})
	if err == nil {
		t.Fatal("world should report the root failure")
	}
}

func TestRankErrorPropagates(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(2, func(ctx context.Context, c *Comm) error {
		if c.Rank() == 1 {
			return fmt.Errorf("rank 1 exploded")
		}
		return nil
	})
	if err == nil || !errors.Is(err, err) || err.Error() == "" {
		t.Fatalf("err = %v", err)
	}
}

func TestWorldSerialReuse(t *testing.T) {
	w := newWorld(t, 2)
	for i := 0; i < 3; i++ {
		err := w.Run(2, func(ctx context.Context, c *Comm) error {
			_, err := c.AllReduce(OpSum, 1)
			return err
		})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}

func TestPiEstimation(t *testing.T) {
	// The canonical MPI demo: integrate 4/(1+x^2) over [0,1] in parallel.
	w := newWorld(t, 4)
	const ranks = 8
	const steps = 100000
	var mu sync.Mutex
	var pi float64
	err := w.Run(ranks, func(ctx context.Context, c *Comm) error {
		h := 1.0 / steps
		local := 0.0
		for i := c.Rank(); i < steps; i += c.Size() {
			x := h * (float64(i) + 0.5)
			local += 4.0 / (1.0 + x*x)
		}
		total, err := c.Reduce(0, OpSum, local*h)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			pi = total
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi-math.Pi) > 1e-6 {
		t.Fatalf("pi = %v", pi)
	}
}

func TestOps(t *testing.T) {
	if OpSum(2, 3) != 5 || OpMax(2, 3) != 3 || OpMin(2, 3) != 2 || OpPro(2, 3) != 6 {
		t.Fatal("ops broken")
	}
}
