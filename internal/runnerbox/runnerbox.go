// Package runnerbox implements the lowest HARNESS II abstraction layer,
// the "Resource Abstraction Layer" of Figure 6: "The runner box defines
// only the limited functionality required by the Harness system to enroll
// a computational resource" — run an application and control it, nothing
// more. Incompatible resource managers (an rsh daemon, a grid resource
// manager) are modelled behind the single Backend interface so each
// enrolls as the same runner-box web service.
//
// A RunnerBox is itself a container.Component, so it participates in the
// framework like any other service: discoverable, WSDL-described, and
// invocable through any binding that carries its (string-typed) operations.
package runnerbox

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"harness2/internal/container"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// JobState is the lifecycle state of a submitted job.
type JobState int

// Job lifecycle: Queued (waiting for a slot) → Running → one of
// Done/Failed/Killed.
const (
	Queued JobState = iota
	Running
	Done
	Failed
	Killed
)

// String names the state.
func (s JobState) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Killed:
		return "killed"
	}
	return "unknown"
}

// Command is a runnable registered with a backend — the stand-in for an
// executable on the resource.
type Command func(ctx context.Context, args []string) error

// Backend abstracts the concrete resource manager behind a runner box.
type Backend interface {
	// Name identifies the backend type (e.g. "local", "rsh", "grid").
	Name() string
	// SpawnCost is the modelled cost of starting one process.
	SpawnCost() time.Duration
	// Lookup resolves a command name.
	Lookup(cmd string) (Command, bool)
	// Slots is the number of jobs the resource runs concurrently;
	// 0 means unlimited.
	Slots() int
}

// LocalBackend runs commands as goroutines with negligible spawn cost,
// modelling a directly-owned host.
type LocalBackend struct {
	mu   sync.RWMutex
	cmds map[string]Command
}

// NewLocalBackend returns an empty local backend.
func NewLocalBackend() *LocalBackend {
	return &LocalBackend{cmds: make(map[string]Command)}
}

// Register installs a named command.
func (b *LocalBackend) Register(name string, cmd Command) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cmds[name] = cmd
}

// Name implements Backend.
func (b *LocalBackend) Name() string { return "local" }

// SpawnCost implements Backend.
func (b *LocalBackend) SpawnCost() time.Duration { return 0 }

// Lookup implements Backend.
func (b *LocalBackend) Lookup(cmd string) (Command, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	c, ok := b.cmds[cmd]
	return c, ok
}

// Slots implements Backend.
func (b *LocalBackend) Slots() int { return 0 }

// RshBackend models enrolment through a remote-shell daemon: the same
// command set as a local backend but with a per-spawn connection cost.
type RshBackend struct {
	*LocalBackend
	Cost time.Duration
}

// NewRshBackend wraps commands with an rsh-style spawn cost.
func NewRshBackend(cost time.Duration) *RshBackend {
	return &RshBackend{LocalBackend: NewLocalBackend(), Cost: cost}
}

// Name implements Backend.
func (b *RshBackend) Name() string { return "rsh" }

// SpawnCost implements Backend.
func (b *RshBackend) SpawnCost() time.Duration { return b.Cost }

// GridBackend models a grid resource manager: queued scheduling with a
// bounded number of execution slots and a scheduler dispatch cost.
type GridBackend struct {
	*LocalBackend
	Cost      time.Duration
	SlotCount int
}

// NewGridBackend returns a backend with the given scheduler cost and slots.
func NewGridBackend(cost time.Duration, slots int) *GridBackend {
	return &GridBackend{LocalBackend: NewLocalBackend(), Cost: cost, SlotCount: slots}
}

// Name implements Backend.
func (b *GridBackend) Name() string { return "grid" }

// SpawnCost implements Backend.
func (b *GridBackend) SpawnCost() time.Duration { return b.Cost }

// Slots implements Backend.
func (b *GridBackend) Slots() int { return b.SlotCount }

// Job is one submitted unit of work.
type Job struct {
	ID  string
	Cmd string

	mu     sync.Mutex
	state  JobState
	err    error
	cancel context.CancelFunc
	done   chan struct{}
}

// State returns the job's current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the job's terminal error, if any.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Box is a runner box enrolling one resource.
type Box struct {
	backend Backend

	mu   sync.Mutex
	seq  int
	jobs map[string]*Job
	// sem gates execution when the backend has bounded slots.
	sem chan struct{}
}

// ErrNoJob is returned for operations on unknown job IDs.
var ErrNoJob = errors.New("runnerbox: no such job")

// ErrNoCommand is returned when the backend cannot resolve a command.
var ErrNoCommand = errors.New("runnerbox: no such command")

// New enrolls a resource behind backend.
func New(backend Backend) *Box {
	b := &Box{backend: backend, jobs: make(map[string]*Job)}
	if n := backend.Slots(); n > 0 {
		b.sem = make(chan struct{}, n)
	}
	return b
}

// Backend returns the enrolled backend.
func (b *Box) Backend() Backend { return b.backend }

// Run submits a command. It returns immediately with a job ID; the job
// may be Queued until a slot frees. The returned cost is the modelled
// spawn latency of the backend.
func (b *Box) Run(cmd string, args []string) (string, time.Duration, error) {
	fn, ok := b.backend.Lookup(cmd)
	if !ok {
		return "", 0, fmt.Errorf("%w: %q", ErrNoCommand, cmd)
	}
	ctx, cancel := context.WithCancel(context.Background())
	b.mu.Lock()
	b.seq++
	job := &Job{
		ID:     fmt.Sprintf("job-%d", b.seq),
		Cmd:    cmd,
		state:  Queued,
		cancel: cancel,
		done:   make(chan struct{}),
	}
	b.jobs[job.ID] = job
	b.mu.Unlock()

	go b.execute(ctx, job, fn, args)
	return job.ID, b.backend.SpawnCost(), nil
}

func (b *Box) execute(ctx context.Context, job *Job, fn Command, args []string) {
	defer close(job.done)
	if b.sem != nil {
		select {
		case b.sem <- struct{}{}:
			defer func() { <-b.sem }()
		case <-ctx.Done():
			job.mu.Lock()
			job.state = Killed
			job.err = ctx.Err()
			job.mu.Unlock()
			return
		}
	}
	job.mu.Lock()
	if job.state == Killed {
		job.mu.Unlock()
		return
	}
	job.state = Running
	job.mu.Unlock()

	err := fn(ctx, args)

	job.mu.Lock()
	defer job.mu.Unlock()
	switch {
	case job.state == Killed || errors.Is(err, context.Canceled):
		job.state = Killed
		if job.err == nil {
			job.err = err
		}
	case err != nil:
		job.state = Failed
		job.err = err
	default:
		job.state = Done
	}
}

// Job returns a submitted job by ID.
func (b *Box) Job(id string) (*Job, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	j, ok := b.jobs[id]
	return j, ok
}

// Jobs returns all job IDs, sorted.
func (b *Box) Jobs() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.jobs))
	for id := range b.jobs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Kill cancels a job. Killing a finished job is a no-op.
func (b *Box) Kill(id string) error {
	j, ok := b.Job(id)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoJob, id)
	}
	j.mu.Lock()
	if j.state == Queued || j.state == Running {
		j.state = Killed
	}
	cancel := j.cancel
	j.mu.Unlock()
	cancel()
	return nil
}

// Wait blocks until the job reaches a terminal state and returns its
// terminal error.
func (b *Box) Wait(id string) error {
	j, ok := b.Job(id)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoJob, id)
	}
	<-j.done
	return j.Err()
}

// Spec is the runner-box service descriptor: the minimum-common-
// denominator interface of the resource abstraction layer.
func Spec() wsdl.ServiceSpec {
	return wsdl.ServiceSpec{
		Name: "RunnerBox",
		Operations: []wsdl.OpSpec{
			{
				Name: "run",
				Input: []wsdl.ParamSpec{
					{Name: "cmd", Type: wire.KindString},
					{Name: "args", Type: wire.KindStringArray},
				},
				Output: []wsdl.ParamSpec{{Name: "job", Type: wire.KindString}},
			},
			{
				Name:   "status",
				Input:  []wsdl.ParamSpec{{Name: "job", Type: wire.KindString}},
				Output: []wsdl.ParamSpec{{Name: "state", Type: wire.KindString}},
			},
			{
				Name:   "kill",
				Input:  []wsdl.ParamSpec{{Name: "job", Type: wire.KindString}},
				Output: []wsdl.ParamSpec{{Name: "ok", Type: wire.KindBool}},
			},
			{
				Name:   "wait",
				Input:  []wsdl.ParamSpec{{Name: "job", Type: wire.KindString}},
				Output: []wsdl.ParamSpec{{Name: "state", Type: wire.KindString}},
			},
			{
				Name:   "list",
				Output: []wsdl.ParamSpec{{Name: "jobs", Type: wire.KindStringArray}},
			},
		},
	}
}

// Component adapts the box to the container component model so a runner
// box can be deployed, described in WSDL, and invoked over SOAP like any
// other service.
type Component struct {
	Box *Box
}

var _ container.Component = (*Component)(nil)

// Describe implements container.Component.
func (c *Component) Describe() wsdl.ServiceSpec { return Spec() }

// Invoke implements container.Component.
func (c *Component) Invoke(ctx context.Context, op string, args []wire.Arg) ([]wire.Arg, error) {
	switch op {
	case "run":
		cmdv, _ := wire.GetArg(args, "cmd")
		cmd, _ := cmdv.(string)
		var argv []string
		if av, ok := wire.GetArg(args, "args"); ok {
			argv, _ = av.([]string)
		}
		id, _, err := c.Box.Run(cmd, argv)
		if err != nil {
			return nil, err
		}
		return wire.Args("job", id), nil
	case "status":
		j, err := c.job(args)
		if err != nil {
			return nil, err
		}
		return wire.Args("state", j.State().String()), nil
	case "kill":
		idv, _ := wire.GetArg(args, "job")
		id, _ := idv.(string)
		if err := c.Box.Kill(id); err != nil {
			return nil, err
		}
		return wire.Args("ok", true), nil
	case "wait":
		j, err := c.job(args)
		if err != nil {
			return nil, err
		}
		<-j.done
		return wire.Args("state", j.State().String()), nil
	case "list":
		return wire.Args("jobs", c.Box.Jobs()), nil
	}
	return nil, fmt.Errorf("runnerbox: no such operation %q", op)
}

func (c *Component) job(args []wire.Arg) (*Job, error) {
	idv, _ := wire.GetArg(args, "job")
	id, _ := idv.(string)
	j, ok := c.Box.Job(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoJob, id)
	}
	return j, nil
}

// Factory returns a container factory that deploys a runner-box component
// over the given box.
func Factory(box *Box) container.Factory {
	return func() (container.Component, error) {
		return &Component{Box: box}, nil
	}
}
