package runnerbox

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"harness2/internal/wire"
)

// TestConcurrentRunControlKill hammers one box from many goroutines —
// submitters, killers, status pollers, and waiters all racing — and then
// checks the terminal bookkeeping is consistent. Run under -race this is
// the job-lifecycle data-race audit the fleet supervisor depends on.
func TestConcurrentRunControlKill(t *testing.T) {
	b := New(NewLocalBackend())
	var started, released atomic.Int64
	blockers := make(chan struct{})
	b.Backend().(*LocalBackend).Register("block", func(ctx context.Context, args []string) error {
		started.Add(1)
		defer released.Add(1)
		select {
		case <-blockers:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	b.Backend().(*LocalBackend).Register("instant", func(ctx context.Context, args []string) error {
		return nil
	})

	const submitters = 8
	const jobsEach = 25
	ids := make(chan string, submitters*jobsEach*2)
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < jobsEach; i++ {
				cmd := "block"
				if i%2 == 0 {
					cmd = "instant"
				}
				id, _, err := b.Run(cmd, nil)
				if err != nil {
					t.Errorf("run: %v", err)
					return
				}
				ids <- id
			}
		}(g)
	}
	// Pollers race Status/Jobs against the submitters.
	pollCtx, pollStop := context.WithCancel(context.Background())
	var pollers sync.WaitGroup
	for g := 0; g < 4; g++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for pollCtx.Err() == nil {
				for _, id := range b.Jobs() {
					if j, ok := b.Job(id); ok {
						_ = j.State()
						_ = j.Err()
					}
				}
			}
		}()
	}
	wg.Wait()
	close(ids)
	// Kill every job concurrently (half are already done — killing a
	// finished job must be a no-op), then wait for all of them.
	var killers sync.WaitGroup
	for id := range ids {
		killers.Add(1)
		go func(id string) {
			defer killers.Done()
			if err := b.Kill(id); err != nil {
				t.Errorf("kill %s: %v", id, err)
			}
			_ = b.Wait(id)
		}(id)
	}
	killers.Wait()
	pollStop()
	pollers.Wait()
	close(blockers)

	if got := len(b.Jobs()); got != submitters*jobsEach {
		t.Fatalf("job count = %d, want %d", got, submitters*jobsEach)
	}
	for _, id := range b.Jobs() {
		j, ok := b.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		switch j.State() {
		case Done, Killed:
		default:
			t.Fatalf("job %s in non-terminal state %v after kill+wait", id, j.State())
		}
	}
	if s, r := started.Load(), released.Load(); s != r {
		t.Fatalf("%d blockers started but %d released", s, r)
	}
}

// TestSlotGateUnderConcurrentKill covers the queued→killed path: a
// 1-slot grid backend with one job wedged means every queued job must
// terminate as Killed without ever running.
func TestSlotGateUnderConcurrentKill(t *testing.T) {
	back := NewGridBackend(0, 1)
	b := New(back)
	hold := make(chan struct{})
	var ran atomic.Int64
	back.Register("hold", func(ctx context.Context, args []string) error {
		ran.Add(1)
		select {
		case <-hold:
		case <-ctx.Done():
		}
		return ctx.Err()
	})
	first, _, err := b.Run("hold", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, b, first, Running)

	queued := make([]string, 0, 16)
	for i := 0; i < 16; i++ {
		id, _, err := b.Run("hold", nil)
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, id)
	}
	var wg sync.WaitGroup
	for _, id := range queued {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if err := b.Kill(id); err != nil {
				t.Errorf("kill queued %s: %v", id, err)
			}
			_ = b.Wait(id)
		}(id)
	}
	wg.Wait()
	for _, id := range queued {
		j, _ := b.Job(id)
		if j.State() != Killed {
			t.Fatalf("queued job %s = %v, want Killed", id, j.State())
		}
	}
	if ran.Load() != 1 {
		t.Fatalf("%d jobs entered Running, want only the slot holder", ran.Load())
	}
	close(hold)
	_ = b.Kill(first)
	_ = b.Wait(first)
}

// TestUnknownJobAndCommandErrors pins the distinguished error paths.
func TestUnknownJobAndCommandErrors(t *testing.T) {
	b := New(NewLocalBackend())
	if _, _, err := b.Run("nope", nil); !errors.Is(err, ErrNoCommand) {
		t.Fatalf("run unknown command: %v, want ErrNoCommand", err)
	}
	if err := b.Kill("job-404"); !errors.Is(err, ErrNoJob) {
		t.Fatalf("kill unknown job: %v, want ErrNoJob", err)
	}
	if err := b.Wait("job-404"); !errors.Is(err, ErrNoJob) {
		t.Fatalf("wait unknown job: %v, want ErrNoJob", err)
	}
	if _, ok := b.Job("job-404"); ok {
		t.Fatal("unknown job reported present")
	}
	// The component surface carries the same errors through Invoke.
	comp := &Component{Box: b}
	ctx := context.Background()
	for _, op := range []string{"status", "kill", "wait"} {
		if _, err := comp.Invoke(ctx, op, wire.Args("job", "job-404")); !errors.Is(err, ErrNoJob) {
			t.Fatalf("component %s of unknown job: %v, want ErrNoJob", op, err)
		}
	}
	if _, err := comp.Invoke(ctx, "run", wire.Args("cmd", "nope")); !errors.Is(err, ErrNoCommand) {
		t.Fatalf("component run of unknown command: %v, want ErrNoCommand", err)
	}
}

// waitState polls until the job reaches state s (terminal states stick).
func waitState(t *testing.T, b *Box, id string, s JobState) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if j, ok := b.Job(id); ok && j.State() == s {
			return
		}
		time.Sleep(time.Millisecond)
	}
	j, _ := b.Job(id)
	t.Fatalf("job %s stuck in %v, want %v", id, j.State(), s)
}

// TestWaitErrSurfacesFailure: a failing command's error reaches Wait and
// the job lands in Failed.
func TestWaitErrSurfacesFailure(t *testing.T) {
	b := New(NewLocalBackend())
	boom := fmt.Errorf("boom")
	b.Backend().(*LocalBackend).Register("fail", func(ctx context.Context, args []string) error {
		return boom
	})
	id, _, err := b.Run("fail", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Wait(id); !errors.Is(err, boom) {
		t.Fatalf("wait err = %v, want boom", err)
	}
	j, _ := b.Job(id)
	if j.State() != Failed {
		t.Fatalf("state = %v, want Failed", j.State())
	}
}
