package runnerbox

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"harness2/internal/container"
	"harness2/internal/wire"
)

func sleepCmd(d time.Duration) Command {
	return func(ctx context.Context, args []string) error {
		select {
		case <-time.After(d):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func TestRunWait(t *testing.T) {
	be := NewLocalBackend()
	var ran atomic.Bool
	be.Register("work", func(ctx context.Context, args []string) error {
		if len(args) != 2 || args[0] != "a" {
			t.Errorf("args = %v", args)
		}
		ran.Store(true)
		return nil
	})
	box := New(be)
	id, cost, err := box.Run("work", []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 {
		t.Fatalf("local spawn cost = %v", cost)
	}
	if err := box.Wait(id); err != nil {
		t.Fatal(err)
	}
	if !ran.Load() {
		t.Fatal("command did not run")
	}
	j, ok := box.Job(id)
	if !ok || j.State() != Done {
		t.Fatalf("state = %v", j.State())
	}
}

func TestRunUnknownCommand(t *testing.T) {
	box := New(NewLocalBackend())
	if _, _, err := box.Run("nope", nil); !errors.Is(err, ErrNoCommand) {
		t.Fatalf("err = %v", err)
	}
}

func TestFailedJob(t *testing.T) {
	be := NewLocalBackend()
	be.Register("bad", func(context.Context, []string) error { return errors.New("exit 1") })
	box := New(be)
	id, _, _ := box.Run("bad", nil)
	if err := box.Wait(id); err == nil || !strings.Contains(err.Error(), "exit 1") {
		t.Fatalf("err = %v", err)
	}
	j, _ := box.Job(id)
	if j.State() != Failed {
		t.Fatalf("state = %v", j.State())
	}
}

func TestKillRunning(t *testing.T) {
	be := NewLocalBackend()
	started := make(chan struct{})
	be.Register("long", func(ctx context.Context, args []string) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	})
	box := New(be)
	id, _, _ := box.Run("long", nil)
	<-started
	if err := box.Kill(id); err != nil {
		t.Fatal(err)
	}
	_ = box.Wait(id)
	j, _ := box.Job(id)
	if j.State() != Killed {
		t.Fatalf("state = %v", j.State())
	}
	// Killing again is a no-op.
	if err := box.Kill(id); err != nil {
		t.Fatal(err)
	}
	if err := box.Kill("ghost"); !errors.Is(err, ErrNoJob) {
		t.Fatalf("err = %v", err)
	}
}

func TestWaitUnknownJob(t *testing.T) {
	box := New(NewLocalBackend())
	if err := box.Wait("ghost"); !errors.Is(err, ErrNoJob) {
		t.Fatalf("err = %v", err)
	}
}

func TestGridBackendQueuesJobs(t *testing.T) {
	be := NewGridBackend(time.Millisecond, 1) // single slot
	release := make(chan struct{})
	be.Register("hold", func(ctx context.Context, args []string) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	box := New(be)
	id1, cost, _ := box.Run("hold", nil)
	if cost != time.Millisecond {
		t.Fatalf("grid spawn cost = %v", cost)
	}
	// Wait until job1 owns the single slot before submitting job2, so the
	// queueing assertion below is deterministic.
	deadline := time.Now().Add(time.Second)
	for {
		j1, _ := box.Job(id1)
		if j1.State() == Running {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job1 never ran")
		}
		time.Sleep(time.Millisecond)
	}
	id2, _, _ := box.Run("hold", nil)
	time.Sleep(5 * time.Millisecond)
	j2, _ := box.Job(id2)
	if j2.State() != Queued {
		t.Fatalf("job2 state = %v, want queued (single slot)", j2.State())
	}
	close(release)
	if err := box.Wait(id1); err != nil {
		t.Fatal(err)
	}
	if err := box.Wait(id2); err != nil {
		t.Fatal(err)
	}
}

func TestKillQueuedJob(t *testing.T) {
	be := NewGridBackend(0, 1)
	release := make(chan struct{})
	be.Register("hold", func(ctx context.Context, args []string) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	box := New(be)
	id1, _, _ := box.Run("hold", nil)
	// Ensure job1 owns the slot so job2 is genuinely queued when killed.
	deadline := time.Now().Add(time.Second)
	for {
		j1, _ := box.Job(id1)
		if j1.State() == Running {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job1 never ran")
		}
		time.Sleep(time.Millisecond)
	}
	id2, _, _ := box.Run("hold", nil)
	time.Sleep(5 * time.Millisecond)
	if err := box.Kill(id2); err != nil {
		t.Fatal(err)
	}
	_ = box.Wait(id2)
	j2, _ := box.Job(id2)
	if j2.State() != Killed {
		t.Fatalf("queued kill state = %v", j2.State())
	}
	close(release)
	_ = box.Wait(id1)
}

func TestRshBackendCost(t *testing.T) {
	be := NewRshBackend(3 * time.Millisecond)
	be.Register("x", sleepCmd(0))
	box := New(be)
	_, cost, err := box.Run("x", nil)
	if err != nil || cost != 3*time.Millisecond {
		t.Fatalf("cost=%v err=%v", cost, err)
	}
	if be.Name() != "rsh" || NewGridBackend(0, 1).Name() != "grid" || NewLocalBackend().Name() != "local" {
		t.Fatal("backend names broken")
	}
}

func TestJobsList(t *testing.T) {
	be := NewLocalBackend()
	be.Register("x", sleepCmd(0))
	box := New(be)
	for i := 0; i < 3; i++ {
		id, _, _ := box.Run("x", nil)
		_ = box.Wait(id)
	}
	jobs := box.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("jobs = %v", jobs)
	}
}

func TestJobStateString(t *testing.T) {
	want := map[JobState]string{Queued: "queued", Running: "running", Done: "done", Failed: "failed", Killed: "killed", JobState(9): "unknown"}
	for s, n := range want {
		if s.String() != n {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), n)
		}
	}
}

func TestComponentInterface(t *testing.T) {
	// The runner box enrolls as a web-service component (Figure 6's
	// resource abstraction layer).
	be := NewLocalBackend()
	be.Register("task", sleepCmd(0))
	box := New(be)

	c := container.New(container.Config{Name: "n"})
	c.RegisterFactory("RunnerBox", Factory(box))
	inst, _, err := c.Deploy("RunnerBox", "rb")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	out, err := c.Invoke(ctx, inst.ID, "run", wire.Args("cmd", "task", "args", []string{"a"}))
	if err != nil {
		t.Fatal(err)
	}
	jobv, _ := wire.GetArg(out, "job")
	job := jobv.(string)

	out, err = c.Invoke(ctx, inst.ID, "wait", wire.Args("job", job))
	if err != nil {
		t.Fatal(err)
	}
	state, _ := wire.GetArg(out, "state")
	if state.(string) != "done" {
		t.Fatalf("state = %v", state)
	}

	out, err = c.Invoke(ctx, inst.ID, "status", wire.Args("job", job))
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := wire.GetArg(out, "state"); s.(string) != "done" {
		t.Fatalf("status = %v", s)
	}

	out, err = c.Invoke(ctx, inst.ID, "list", nil)
	if err != nil {
		t.Fatal(err)
	}
	jobs, _ := wire.GetArg(out, "jobs")
	if len(jobs.([]string)) != 1 {
		t.Fatalf("jobs = %v", jobs)
	}

	if _, err := c.Invoke(ctx, inst.ID, "status", wire.Args("job", "ghost")); err == nil {
		t.Fatal("status of unknown job should fail")
	}
	if _, err := c.Invoke(ctx, inst.ID, "run", wire.Args("cmd", "ghost")); err == nil {
		t.Fatal("run of unknown command should fail")
	}

	out, err = c.Invoke(ctx, inst.ID, "run", wire.Args("cmd", "task"))
	if err != nil {
		t.Fatal(err)
	}
	jv, _ := wire.GetArg(out, "job")
	if _, err := c.Invoke(ctx, inst.ID, "kill", wire.Args("job", jv)); err != nil {
		t.Fatal(err)
	}
	// WSDL generation for the runner box must succeed (string-typed, so
	// SOAP + JavaObject but never XDR).
	defs, err := c.WSDLFor(inst.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(defs.PortsByKind(0)) != 0 { // no SOAPBase configured
		t.Fatal("unexpected soap port")
	}
}

func TestConcurrentJobs(t *testing.T) {
	be := NewLocalBackend()
	var count atomic.Int64
	be.Register("inc", func(context.Context, []string) error {
		count.Add(1)
		return nil
	})
	box := New(be)
	ids := make([]string, 50)
	for i := range ids {
		id, _, err := box.Run("inc", nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for _, id := range ids {
		if err := box.Wait(id); err != nil {
			t.Fatal(err)
		}
	}
	if count.Load() != 50 {
		t.Fatalf("count = %d", count.Load())
	}
}
