// Package clock provides a coarse process-wide wall clock for hot paths.
//
// On the hosts HARNESS II targets (VMs, containers — anywhere the cheap
// vDSO clock path is unavailable) time.Now costs tens of nanoseconds of
// syscall-ish work, which E15 profiling showed dominating the lock-free
// discovery-cache hit: the clock was 60% of a ~130ns operation. Hot
// paths that only need time at TTL/lease granularity (seconds) read a
// coarse clock instead: one background ticker stores the current wall
// time in an atomic every few milliseconds, and Coarse() is an atomic
// load — the same technique nginx (cached per event-loop time) and
// memcached (current_time) use.
//
// Coarse time is within tickEvery of real time under normal scheduling;
// a starved ticker goroutine widens the error, so deadline checks that
// must be exact (timeouts, test clocks) should keep using time.Now or an
// injected clock. Coarse times carry no monotonic reading.
package clock

import (
	"sync"
	"sync/atomic"
	"time"
)

// tickEvery is the refresh period, and so the nominal resolution, of the
// coarse clock. 2ms is far below any registry lease or discovery TTL
// while keeping the ticker's CPU cost negligible.
const tickEvery = 2 * time.Millisecond

var (
	once     sync.Once
	nowNanos atomic.Int64
)

func start() {
	nowNanos.Store(time.Now().UnixNano())
	go func() {
		t := time.NewTicker(tickEvery)
		defer t.Stop()
		for range t.C {
			nowNanos.Store(time.Now().UnixNano())
		}
	}()
}

// Coarse returns the current wall time at tickEvery resolution for the
// cost of an atomic load. The first call starts the updater goroutine.
func Coarse() time.Time {
	once.Do(start)
	return time.Unix(0, nowNanos.Load())
}

// Resolution returns the nominal coarse-clock resolution.
func Resolution() time.Duration { return tickEvery }
