package clock

import (
	"testing"
	"time"
)

func TestCoarseTracksRealTime(t *testing.T) {
	c1 := Coarse()
	r1 := time.Now()
	if d := r1.Sub(c1); d < -time.Second || d > time.Second {
		t.Fatalf("coarse clock off by %v", d)
	}
	// The updater must advance the clock.
	time.Sleep(20 * tickEvery)
	c2 := Coarse()
	if !c2.After(c1) {
		t.Fatalf("coarse clock did not advance: %v -> %v", c1, c2)
	}
}

func TestCoarseNoAlloc(t *testing.T) {
	Coarse() // ensure started
	if n := testing.AllocsPerRun(1000, func() { _ = Coarse() }); n != 0 {
		t.Fatalf("Coarse allocates %v per call", n)
	}
}
