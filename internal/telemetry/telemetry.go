// Package telemetry is the HARNESS II measurement plane (S27): a
// zero-dependency metrics and tracing subsystem threaded through every
// layer of the Figure 6 stack — wire codecs, invocation bindings,
// containers, DVM coherency strategies, the registry, and the HTTP
// servers.
//
// The paper's critique of e-commerce containers is that they lack the
// services metacomputing needs; JClarens (the grid web-service host in
// PAPERS.md) answers with "access logging and monitoring" as a core
// container service. This package is that service for our reproduction:
// atomic Counters and Gauges, lock-free power-of-two-bucketed Histograms,
// a named Registry with Prometheus-text-format exposition, and
// lightweight Span tracing whose trace identity crosses SOAP hops in an
// `h2:Trace` header entry (the S26 header machinery).
//
// Everything is nil-safe by design: Disabled() returns a registry whose
// metric handles are all nil, and every operation on a nil handle is a
// single predictable branch — a few nanoseconds and zero allocations —
// so instrumentation can stay compiled into the hot paths permanently
// (proven by E12 / BenchmarkE12_Disabled).
package telemetry

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// counterStripes is the fan-out of a striped Counter (power of two).
const counterStripes = 8

// counterCell is one stripe, padded to a cacheline so neighbouring
// stripes never false-share.
type counterCell struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing metric. The nil Counter is a
// valid no-op: every method is safe (and nearly free) on it.
//
// Counters sit on per-call hot paths (every invoke, every cache hit), so
// the count is STRIPED across padded cells: concurrent writers usually
// land on different cachelines instead of bouncing one atomic word
// between cores, and Value sums the stripes at read (scrape) time. The
// stripe is picked from the caller's stack address — goroutine stacks
// are kilobytes apart, so concurrent goroutines spread across stripes
// without any per-CPU or per-goroutine runtime support.
type Counter struct {
	cells [counterStripes]counterCell
}

// stripeIdx picks this goroutine's stripe from the address of a stack
// local. The pointer never escapes (it is immediately reduced to a
// uintptr), so the probe costs no allocation.
func stripeIdx() int {
	var probe byte
	return int(uintptr(unsafe.Pointer(&probe)) >> 10 & (counterStripes - 1))
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.cells[stripeIdx()].v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.cells[stripeIdx()].v.Add(n)
	}
}

// Value returns the current count (0 for the nil Counter), summing the
// stripes. Concurrent Incs may or may not be included, like any atomic
// counter read.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var n uint64
	for i := range c.cells {
		n += c.cells[i].v.Load()
	}
	return n
}

// Gauge is a metric that can go up and down. The nil Gauge is a valid
// no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 for the nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// metricKind orders families in the exposition output.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered time series: a family name plus its serialized
// label set.
type metric struct {
	name   string // family name, e.g. harness_invoke_calls_total
	labels string // serialized label pairs, e.g. `binding="xdr",op="mul"`
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry is a named collection of metrics plus a ring of recently
// finished spans. The zero Registry is ready to use. A nil *Registry —
// and the shared instance Disabled() returns — hands out nil metric
// handles, turning all instrumentation into no-ops.
type Registry struct {
	disabled bool

	mu      sync.RWMutex
	metrics map[string]*metric // key: name + "{" + labels + "}"
	help    map[string]string  // family name -> HELP text

	spans spanRing
}

// New returns an empty, enabled registry.
func New() *Registry {
	return &Registry{}
}

var defaultRegistry = New()

// Default returns the process-wide registry that instrumented components
// fall back to when no registry is configured explicitly. cmd/hnode and
// cmd/hregistry expose it at /metrics.
func Default() *Registry { return defaultRegistry }

var disabledRegistry = &Registry{disabled: true}

// Disabled returns the shared no-op registry: every metric handle it
// hands out is nil, and nil handles cost a branch per operation. Use it
// to switch instrumentation off wholesale (the E12 ablation).
func Disabled() *Registry { return disabledRegistry }

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil && !r.disabled }

// Or returns r when non-nil, else the process default registry. It lets
// struct fields use nil for "not configured" while Disabled() remains the
// explicit off switch.
func Or(r *Registry) *Registry {
	if r == nil {
		return defaultRegistry
	}
	return r
}

// Help sets the exposition HELP text for a metric family.
func (r *Registry) Help(family, text string) {
	if !r.Enabled() {
		return
	}
	r.mu.Lock()
	if r.help == nil {
		r.help = make(map[string]string)
	}
	r.help[family] = text
	r.mu.Unlock()
}

// labelString serializes name/value pairs ("k1", "v1", "k2", "v2", ...)
// into deterministic Prometheus label syntax. Pairs are sorted by key.
func labelString(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup returns the metric registered under name+labels, creating it
// with mk on first use. Concurrent callers converge on one instance.
func (r *Registry) lookup(name string, labels []string, kind metricKind) *metric {
	ls := labelString(labels)
	key := name + "{" + ls + "}"
	r.mu.RLock()
	m := r.metrics[key]
	r.mu.RUnlock()
	if m != nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m = r.metrics[key]; m != nil {
		return m
	}
	if r.metrics == nil {
		r.metrics = make(map[string]*metric)
	}
	m = &metric{name: name, labels: ls, kind: kind}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	case kindHistogram:
		m.h = &Histogram{}
	}
	r.metrics[key] = m
	return m
}

// Counter returns (registering on first use) the counter named name with
// the given label pairs. Nil and disabled registries return nil.
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	if !r.Enabled() {
		return nil
	}
	return r.lookup(name, labelPairs, kindCounter).c
}

// Gauge returns the gauge named name with the given label pairs.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	if !r.Enabled() {
		return nil
	}
	return r.lookup(name, labelPairs, kindGauge).g
}

// Histogram returns the histogram named name with the given label pairs.
func (r *Registry) Histogram(name string, labelPairs ...string) *Histogram {
	if !r.Enabled() {
		return nil
	}
	return r.lookup(name, labelPairs, kindHistogram).h
}

// snapshot returns the registered metrics sorted by family then labels.
func (r *Registry) snapshot() []*metric {
	if !r.Enabled() {
		return nil
	}
	r.mu.RLock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// nowFunc is swappable for deterministic span tests.
var nowFunc = time.Now
