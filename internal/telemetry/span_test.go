package telemetry

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestSpanContextWireForm(t *testing.T) {
	sc := SpanContext{TraceID: 0xdeadbeef, SpanID: 0x1234}
	s := sc.String()
	if len(s) != 33 || !strings.Contains(s, "-") {
		t.Fatalf("wire form = %q", s)
	}
	got, ok := ParseTraceHeader(s)
	if !ok || got != sc {
		t.Fatalf("round trip = %+v ok=%v", got, ok)
	}
	for _, bad := range []string{
		"", "zz", s[:32], s + "0",
		strings.Replace(s, "-", "_", 1),
		"000000000000zzzz-0000000000001234",
		"00000000deadbeef-zzzz000000001234",
		"0000000000000000-0000000000000000", // zero IDs are invalid
	} {
		if _, ok := ParseTraceHeader(bad); ok {
			t.Fatalf("ParseTraceHeader(%q) accepted", bad)
		}
	}
}

func TestSpanTreeAcrossContexts(t *testing.T) {
	r := New()
	ctx, root := r.StartSpan(context.Background(), "client")
	rootSC := root.Context()
	if !rootSC.Valid() {
		t.Fatal("root span has no identity")
	}
	carried, ok := FromContext(ctx)
	if !ok || carried != rootSC {
		t.Fatalf("ctx carries %+v, want %+v", carried, rootSC)
	}

	// Simulate the SOAP hop: serialize, parse on the server side, and
	// continue the trace there.
	wire := carried.String()
	remote, ok := ParseTraceHeader(wire)
	if !ok {
		t.Fatal("header did not parse")
	}
	serverCtx := ContextWith(context.Background(), remote)
	_, server := r.StartSpan(serverCtx, "server")
	server.End()
	root.End()

	recs := r.RecentSpans()
	if len(recs) != 2 {
		t.Fatalf("spans = %d, want 2", len(recs))
	}
	var srv, cli SpanRecord
	for _, rec := range recs {
		switch rec.Name {
		case "server":
			srv = rec
		case "client":
			cli = rec
		}
	}
	if srv.TraceID != cli.TraceID {
		t.Fatalf("trace split: server=%x client=%x", srv.TraceID, cli.TraceID)
	}
	if srv.ParentID != cli.SpanID {
		t.Fatalf("server parent = %x, want client span %x", srv.ParentID, cli.SpanID)
	}
	if cli.ParentID != 0 {
		t.Fatalf("client parent = %x, want 0 (root)", cli.ParentID)
	}
}

func TestSpanErrorsAndMetrics(t *testing.T) {
	r := New()
	_, sp := r.StartSpan(context.Background(), "failing")
	sp.SetError(errors.New("boom"))
	sp.End()
	if got := r.Counter("harness_span_errors_total", "span", "failing").Value(); got != 1 {
		t.Fatalf("span error counter = %d", got)
	}
	if got := r.Histogram("harness_span_duration_ns", "span", "failing").Count(); got != 1 {
		t.Fatalf("span duration count = %d", got)
	}
	recs := r.RecentSpans()
	if len(recs) != 1 || recs[0].Err != "boom" {
		t.Fatalf("records = %+v", recs)
	}
}

func TestSpanRingBounded(t *testing.T) {
	r := New()
	for i := 0; i < spanRingCap+10; i++ {
		_, sp := r.StartSpan(context.Background(), "s")
		sp.End()
	}
	if n := len(r.RecentSpans()); n != spanRingCap {
		t.Fatalf("ring kept %d, want %d", n, spanRingCap)
	}
}
