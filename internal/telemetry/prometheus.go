package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): `# HELP` / `# TYPE` lines per
// family, histogram `_bucket{le=...}` / `_sum` / `_count` expansion, and
// deterministic family/label ordering so output is diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	metrics := r.snapshot()
	var helpFor map[string]string
	if r.Enabled() {
		r.mu.RLock()
		helpFor = make(map[string]string, len(r.help))
		for k, v := range r.help {
			helpFor[k] = v
		}
		r.mu.RUnlock()
	}
	lastFamily := ""
	for _, m := range metrics {
		if m.name != lastFamily {
			lastFamily = m.name
			if h := helpFor[m.name]; h != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", m.name, h)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, typeName(m.kind))
		}
		switch m.kind {
		case kindCounter:
			writeSample(bw, m.name, m.labels, "", fmt.Sprintf("%d", m.c.Value()))
		case kindGauge:
			writeSample(bw, m.name, m.labels, "", fmt.Sprintf("%d", m.g.Value()))
		case kindHistogram:
			idx, cum := m.h.nonEmptyBuckets()
			for i, bi := range idx {
				le := fmt.Sprintf(`le="%d"`, BucketBound(bi))
				writeSample(bw, m.name+"_bucket", m.labels, le, fmt.Sprintf("%d", cum[i]))
			}
			writeSample(bw, m.name+"_bucket", m.labels, `le="+Inf"`, fmt.Sprintf("%d", m.h.Count()))
			writeSample(bw, m.name+"_sum", m.labels, "", fmt.Sprintf("%d", m.h.Sum()))
			writeSample(bw, m.name+"_count", m.labels, "", fmt.Sprintf("%d", m.h.Count()))
		}
	}
	return bw.Flush()
}

func typeName(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// writeSample emits one `name{labels,extra} value` line.
func writeSample(w io.Writer, name, labels, extra, value string) {
	switch {
	case labels == "" && extra == "":
		fmt.Fprintf(w, "%s %s\n", name, value)
	case labels == "":
		fmt.Fprintf(w, "%s{%s} %s\n", name, extra, value)
	case extra == "":
		fmt.Fprintf(w, "%s{%s} %s\n", name, labels, value)
	default:
		fmt.Fprintf(w, "%s{%s,%s} %s\n", name, labels, extra, value)
	}
}

// Handler returns the /metrics endpoint for r: Prometheus text format
// over GET.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "metrics endpoint requires GET", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// WriteSnapshot renders a compact human-readable dump: every counter and
// gauge, histogram mean/p50/p99, and the most recent spans — the
// `hdvm status` view.
func (r *Registry) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, m := range r.snapshot() {
		label := m.name
		if m.labels != "" {
			label += "{" + m.labels + "}"
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%-70s %d\n", label, m.c.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%-70s %d\n", label, m.g.Value())
		case kindHistogram:
			fmt.Fprintf(bw, "%-70s n=%d mean=%.0f p50≤%d p99≤%d\n",
				label, m.h.Count(), m.h.Mean(), m.h.Quantile(0.5), m.h.Quantile(0.99))
		}
	}
	spans := r.RecentSpans()
	if len(spans) > 0 {
		fmt.Fprintf(bw, "recent spans (%d):\n", len(spans))
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
		for _, s := range spans {
			status := "ok"
			if s.Err != "" {
				status = "err: " + s.Err
			}
			fmt.Fprintf(bw, "  %016x/%016x parent=%016x %-24s %12v %s\n",
				s.TraceID, s.SpanID, s.ParentID, s.Name, s.Duration, status)
		}
	}
	return bw.Flush()
}
