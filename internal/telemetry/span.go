package telemetry

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"
)

// TraceHeaderName is the SOAP header entry that carries trace identity
// across SOAP hops: `<h2:Trace>` with a "traceID-spanID" hex value. It
// rides the S26 header machinery; receivers that do not understand it
// ignore it (mustUnderstand is never set on telemetry headers).
const TraceHeaderName = "h2:Trace"

// SpanContext is the propagated trace identity: which trace a request
// belongs to and which span is its parent on this hop.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context names a real trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 && sc.SpanID != 0 }

// String renders the wire form "16hex-16hex".
func (sc SpanContext) String() string {
	return fmt.Sprintf("%016x-%016x", sc.TraceID, sc.SpanID)
}

// ParseTraceHeader parses the wire form produced by String. It accepts
// exactly "16hex-16hex"; anything else reports ok=false.
func ParseTraceHeader(s string) (SpanContext, bool) {
	if len(s) != 33 || s[16] != '-' {
		return SpanContext{}, false
	}
	tid, err := strconv.ParseUint(s[:16], 16, 64)
	if err != nil {
		return SpanContext{}, false
	}
	sid, err := strconv.ParseUint(s[17:], 16, 64)
	if err != nil {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: tid, SpanID: sid}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

type traceCtxKey struct{}

// ContextWith returns ctx carrying the given trace identity.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, sc)
}

// FromContext extracts the trace identity carried by ctx, if any.
func FromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(traceCtxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// idSource is a lock-protected PRNG for span/trace IDs; crypto-strength
// identity is not needed for correlation, determinism-per-process is
// harmless, and the stdlib-only constraint rules out heavier schemes.
var idSource = struct {
	sync.Mutex
	r *rand.Rand
}{r: rand.New(rand.NewSource(time.Now().UnixNano()))}

func newID() uint64 {
	idSource.Lock()
	defer idSource.Unlock()
	for {
		if id := idSource.r.Uint64(); id != 0 {
			return id
		}
	}
}

// Span is one timed operation within a trace. The nil Span is a valid
// no-op, so callers can unconditionally defer End.
type Span struct {
	r      *Registry
	name   string
	sc     SpanContext
	parent uint64
	start  time.Time
	err    error
}

// SpanRecord is a finished span as kept in the registry's ring.
type SpanRecord struct {
	Name     string
	TraceID  uint64
	SpanID   uint64
	ParentID uint64
	Start    time.Time
	Duration time.Duration
	Err      string
}

// spanRingCap bounds the finished-span ring: enough for a status
// snapshot, small enough to never matter.
const spanRingCap = 256

type spanRing struct {
	mu   sync.Mutex
	buf  [spanRingCap]SpanRecord
	next int
	n    int
}

func (sr *spanRing) add(rec SpanRecord) {
	sr.mu.Lock()
	sr.buf[sr.next] = rec
	sr.next = (sr.next + 1) % spanRingCap
	if sr.n < spanRingCap {
		sr.n++
	}
	sr.mu.Unlock()
}

func (sr *spanRing) snapshot() []SpanRecord {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	out := make([]SpanRecord, 0, sr.n)
	for i := 0; i < sr.n; i++ {
		out = append(out, sr.buf[(sr.next-sr.n+i+spanRingCap)%spanRingCap])
	}
	return out
}

// StartSpan opens a span named name under the trace carried by ctx (a
// fresh trace when ctx carries none) and returns a derived context in
// which the new span is the parent — so nested StartSpan calls, local or
// across SOAP hops, build a tree. Disabled registries return ctx
// unchanged and a nil Span.
func (r *Registry) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if !r.Enabled() {
		return ctx, nil
	}
	parent, _ := FromContext(ctx)
	sc := SpanContext{TraceID: parent.TraceID, SpanID: newID()}
	if sc.TraceID == 0 {
		sc.TraceID = newID()
	}
	s := &Span{r: r, name: name, sc: sc, parent: parent.SpanID, start: nowFunc()}
	return ContextWith(ctx, sc), s
}

// ChildSpan opens a span only when ctx already carries a trace identity —
// the per-hop instrumentation used on invocation hot paths. Untraced
// traffic (the overwhelmingly common case) pays one context lookup and no
// ID generation, so the global ID source never becomes a contention point;
// traced requests get a child span exactly as StartSpan would build one.
func (r *Registry) ChildSpan(ctx context.Context, name string) (context.Context, *Span) {
	if !r.Enabled() {
		return ctx, nil
	}
	if _, ok := FromContext(ctx); !ok {
		return ctx, nil
	}
	return r.StartSpan(ctx, name)
}

// Context returns the span's trace identity (zero for the nil Span).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetError marks the span failed; the error surfaces in the record.
func (s *Span) SetError(err error) {
	if s != nil && err != nil {
		s.err = err
	}
}

// End finishes the span: its duration feeds the registry's
// harness_span_duration_ns histogram (labelled by span name) and the
// record joins the recent-spans ring.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := nowFunc().Sub(s.start)
	if d < 0 {
		d = 0
	}
	s.r.Histogram("harness_span_duration_ns", "span", s.name).Observe(uint64(d))
	rec := SpanRecord{
		Name: s.name, TraceID: s.sc.TraceID, SpanID: s.sc.SpanID,
		ParentID: s.parent, Start: s.start, Duration: d,
	}
	if s.err != nil {
		rec.Err = s.err.Error()
		s.r.Counter("harness_span_errors_total", "span", s.name).Inc()
	}
	s.r.spans.add(rec)
}

// RecentSpans returns the registry's ring of finished spans, oldest
// first.
func (r *Registry) RecentSpans() []SpanRecord {
	if !r.Enabled() {
		return nil
	}
	return r.spans.snapshot()
}
