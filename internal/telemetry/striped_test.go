package telemetry

import (
	"sync"
	"testing"
)

// TestCounterStripedSum checks that the striped counter neither loses nor
// double-counts increments under heavy goroutine concurrency.
func TestCounterStripedSum(t *testing.T) {
	c := &Counter{}
	const goroutines, per = 16, 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("Value = %d, want %d", got, goroutines*per)
	}
	c.Add(5)
	if got := c.Value(); got != goroutines*per+5 {
		t.Fatalf("after Add: %d", got)
	}
	var nilc *Counter
	nilc.Inc()
	nilc.Add(3)
	if nilc.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
}

// TestCounterIncNoAlloc pins the hot-path property the striping must not
// cost: the stack-address stripe probe does not escape.
func TestCounterIncNoAlloc(t *testing.T) {
	c := &Counter{}
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Inc allocates %v per op", n)
	}
}

// TestVecWithNoAlloc pins the lock-free steady state of the COW label
// caches: a warmed With is an atomic load plus a map probe, 0 allocs.
func TestVecWithNoAlloc(t *testing.T) {
	r := New()
	cv := r.CounterVec("t_c_total", "op")
	gv := r.GaugeVec("t_g", "op")
	hv := r.HistogramVec("t_h_ns", "op")
	cv.With("x")
	gv.With("x")
	hv.With("x")
	if n := testing.AllocsPerRun(1000, func() {
		cv.With("x")
		gv.With("x")
		hv.With("x")
	}); n != 0 {
		t.Fatalf("warm With allocates %v per op", n)
	}
}

// TestVecConcurrentWith races inserts and lookups over distinct labels;
// every caller must converge on one handle per label.
func TestVecConcurrentWith(t *testing.T) {
	r := New()
	cv := r.CounterVec("race_total", "op")
	labels := []string{"a", "b", "c", "d", "e"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				cv.With(labels[i%len(labels)]).Inc()
			}
		}()
	}
	wg.Wait()
	for _, l := range labels {
		if got := cv.With(l).Value(); got != 8*2000/uint64(len(labels)) {
			t.Fatalf("label %s = %d", l, got)
		}
	}
}
