package telemetry

import "sync"

// The Vec types are pre-bound metric families with one variable label —
// the per-operation dimension of the invoke/coherency instrumentation.
// They cache the label-value → handle mapping behind an RWMutex so the
// steady state is one read-locked map hit, and they are nil-safe: a Vec
// obtained from a disabled registry is nil, With on a nil Vec returns a
// nil handle, and every operation on a nil handle is a branch.

// CounterVec is a counter family keyed by one variable label.
type CounterVec struct {
	r     *Registry
	name  string
	label string
	fixed []string // fixed label pairs appended to every child

	mu sync.RWMutex
	m  map[string]*Counter
}

// CounterVec returns a counter family: name with one variable label plus
// optional fixed label pairs.
func (r *Registry) CounterVec(name, label string, fixedPairs ...string) *CounterVec {
	if !r.Enabled() {
		return nil
	}
	return &CounterVec{r: r, name: name, label: label, fixed: fixedPairs, m: make(map[string]*Counter)}
}

// With returns the child counter for the given label value.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c := v.m[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	pairs := append(append(make([]string, 0, len(v.fixed)+2), v.fixed...), v.label, value)
	c = v.r.Counter(v.name, pairs...)
	v.mu.Lock()
	if have, ok := v.m[value]; ok {
		c = have
	} else {
		v.m[value] = c
	}
	v.mu.Unlock()
	return c
}

// GaugeVec is a gauge family keyed by one variable label.
type GaugeVec struct {
	r     *Registry
	name  string
	label string
	fixed []string

	mu sync.RWMutex
	m  map[string]*Gauge
}

// GaugeVec returns a gauge family: name with one variable label plus
// optional fixed label pairs.
func (r *Registry) GaugeVec(name, label string, fixedPairs ...string) *GaugeVec {
	if !r.Enabled() {
		return nil
	}
	return &GaugeVec{r: r, name: name, label: label, fixed: fixedPairs, m: make(map[string]*Gauge)}
}

// With returns the child gauge for the given label value.
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	g := v.m[value]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	pairs := append(append(make([]string, 0, len(v.fixed)+2), v.fixed...), v.label, value)
	g = v.r.Gauge(v.name, pairs...)
	v.mu.Lock()
	if have, ok := v.m[value]; ok {
		g = have
	} else {
		v.m[value] = g
	}
	v.mu.Unlock()
	return g
}

// HistogramVec is a histogram family keyed by one variable label.
type HistogramVec struct {
	r     *Registry
	name  string
	label string
	fixed []string

	mu sync.RWMutex
	m  map[string]*Histogram
}

// HistogramVec returns a histogram family: name with one variable label
// plus optional fixed label pairs.
func (r *Registry) HistogramVec(name, label string, fixedPairs ...string) *HistogramVec {
	if !r.Enabled() {
		return nil
	}
	return &HistogramVec{r: r, name: name, label: label, fixed: fixedPairs, m: make(map[string]*Histogram)}
}

// With returns the child histogram for the given label value.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	h := v.m[value]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	pairs := append(append(make([]string, 0, len(v.fixed)+2), v.fixed...), v.label, value)
	h = v.r.Histogram(v.name, pairs...)
	v.mu.Lock()
	if have, ok := v.m[value]; ok {
		h = have
	} else {
		v.m[value] = h
	}
	v.mu.Unlock()
	return h
}
