package telemetry

import (
	"sync"
	"sync/atomic"
)

// The Vec types are pre-bound metric families with one variable label —
// the per-operation dimension of the invoke/coherency instrumentation.
// The label-value → handle mapping is a copy-on-write map behind an
// atomic pointer, so the steady state of With is one atomic load and one
// map probe: no locks on the hot path (S34 — the old RWMutex read lock
// serialized every instrumented call sitewide). Vecs are nil-safe: a Vec
// obtained from a disabled registry is nil, With on a nil Vec returns a
// nil handle, and every operation on a nil handle is a branch.

// vecCache is the shared copy-on-write label cache. Lookups are
// lock-free; inserts copy the map under a writer mutex and republish.
type vecCache[T any] struct {
	mu sync.Mutex
	m  atomic.Pointer[map[string]*T]
}

// get returns the cached handle for value, lock-free.
func (c *vecCache[T]) get(value string) *T {
	if mp := c.m.Load(); mp != nil {
		return (*mp)[value]
	}
	return nil
}

// insert publishes value → mk() unless a racing insert got there first,
// returning the winning handle.
func (c *vecCache[T]) insert(value string, mk func() *T) *T {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.m.Load()
	if old != nil {
		if h, ok := (*old)[value]; ok {
			return h
		}
	}
	next := make(map[string]*T, 1)
	if old != nil {
		next = make(map[string]*T, len(*old)+1)
		for k, v := range *old {
			next[k] = v
		}
	}
	h := mk()
	next[value] = h
	c.m.Store(&next)
	return h
}

// CounterVec is a counter family keyed by one variable label.
type CounterVec struct {
	r     *Registry
	name  string
	label string
	fixed []string // fixed label pairs appended to every child

	cache vecCache[Counter]
}

// CounterVec returns a counter family: name with one variable label plus
// optional fixed label pairs.
func (r *Registry) CounterVec(name, label string, fixedPairs ...string) *CounterVec {
	if !r.Enabled() {
		return nil
	}
	return &CounterVec{r: r, name: name, label: label, fixed: fixedPairs}
}

// With returns the child counter for the given label value.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	if c := v.cache.get(value); c != nil {
		return c
	}
	return v.cache.insert(value, func() *Counter {
		pairs := append(append(make([]string, 0, len(v.fixed)+2), v.fixed...), v.label, value)
		return v.r.Counter(v.name, pairs...)
	})
}

// GaugeVec is a gauge family keyed by one variable label.
type GaugeVec struct {
	r     *Registry
	name  string
	label string
	fixed []string

	cache vecCache[Gauge]
}

// GaugeVec returns a gauge family: name with one variable label plus
// optional fixed label pairs.
func (r *Registry) GaugeVec(name, label string, fixedPairs ...string) *GaugeVec {
	if !r.Enabled() {
		return nil
	}
	return &GaugeVec{r: r, name: name, label: label, fixed: fixedPairs}
}

// With returns the child gauge for the given label value.
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	if g := v.cache.get(value); g != nil {
		return g
	}
	return v.cache.insert(value, func() *Gauge {
		pairs := append(append(make([]string, 0, len(v.fixed)+2), v.fixed...), v.label, value)
		return v.r.Gauge(v.name, pairs...)
	})
}

// HistogramVec is a histogram family keyed by one variable label.
type HistogramVec struct {
	r     *Registry
	name  string
	label string
	fixed []string

	cache vecCache[Histogram]
}

// HistogramVec returns a histogram family: name with one variable label
// plus optional fixed label pairs.
func (r *Registry) HistogramVec(name, label string, fixedPairs ...string) *HistogramVec {
	if !r.Enabled() {
		return nil
	}
	return &HistogramVec{r: r, name: name, label: label, fixed: fixedPairs}
}

// With returns the child histogram for the given label value.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	if h := v.cache.get(value); h != nil {
		return h
	}
	return v.cache.insert(value, func() *Histogram {
		pairs := append(append(make([]string, 0, len(v.fixed)+2), v.fixed...), v.label, value)
		return v.r.Histogram(v.name, pairs...)
	})
}
