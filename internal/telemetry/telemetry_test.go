package telemetry

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("calls_total", "binding", "xdr")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels converge on one instance.
	if r.Counter("calls_total", "binding", "xdr") != c {
		t.Fatal("re-lookup returned a different counter")
	}
	// Label order must not matter.
	c2 := r.Counter("multi_total", "a", "1", "b", "2")
	if r.Counter("multi_total", "b", "2", "a", "1") != c2 {
		t.Fatal("label order changed identity")
	}
	g := r.Gauge("live")
	g.Inc()
	g.Add(10)
	g.Dec()
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge = %d, want 10", got)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

func TestNilAndDisabledAreNoOps(t *testing.T) {
	var r *Registry
	for _, reg := range []*Registry{r, Disabled()} {
		c := reg.Counter("x")
		c.Inc()
		c.Add(9)
		if c.Value() != 0 {
			t.Fatal("nil counter recorded")
		}
		g := reg.Gauge("y")
		g.Set(5)
		if g.Value() != 0 {
			t.Fatal("nil gauge recorded")
		}
		h := reg.Histogram("z")
		h.Observe(7)
		h.ObserveSince(h.Start())
		if h.Count() != 0 || !h.Start().IsZero() {
			t.Fatal("nil histogram recorded")
		}
		if v := reg.CounterVec("v", "op"); v.With("a") != nil {
			t.Fatal("nil vec returned live counter")
		}
		if v := reg.HistogramVec("v", "op"); v.With("a") != nil {
			t.Fatal("nil vec returned live histogram")
		}
		if v := reg.GaugeVec("v", "op"); v.With("a") != nil {
			t.Fatal("nil vec returned live gauge")
		}
		ctx, sp := reg.StartSpan(context.Background(), "op")
		if sp != nil {
			t.Fatal("disabled registry returned live span")
		}
		sp.SetError(errors.New("x"))
		sp.End() // must not panic
		if _, ok := FromContext(ctx); ok {
			t.Fatal("disabled span injected trace context")
		}
		if reg.Enabled() {
			t.Fatal("Enabled() = true")
		}
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("lat_ns")
	for _, v := range []uint64{0, 1, 2, 3, 4, 100, 1000, 1 << 40} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 0+1+2+3+4+100+1000+(1<<40) {
		t.Fatalf("sum = %d", h.Sum())
	}
	// p50 over {0,1,2,3,4,100,1000,2^40}: 4th obs is 3 -> bucket bound 3.
	if q := h.Quantile(0.5); q != 3 {
		t.Fatalf("p50 = %d, want 3", q)
	}
	if q := h.Quantile(1); q < 1<<40 {
		t.Fatalf("p100 = %d, want >= 2^40", q)
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("p0 bucket bound = %d, want 0", q)
	}
	// Values past the last bucket clamp instead of exploding.
	h.Observe(^uint64(0))
	if h.Count() != 9 {
		t.Fatal("clamped observation lost")
	}
}

func TestHistogramTimer(t *testing.T) {
	r := New()
	h := r.Histogram("t_ns")
	now := time.Unix(100, 0)
	old := nowFunc
	nowFunc = func() time.Time { return now }
	defer func() { nowFunc = old }()

	start := h.Start()
	now = now.Add(8 * time.Millisecond)
	h.ObserveSince(start)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != uint64(8*time.Millisecond) {
		t.Fatalf("sum = %d", h.Sum())
	}
}

func TestVecsShareChildren(t *testing.T) {
	r := New()
	v := r.CounterVec("harness_invoke_calls_total", "op", "binding", "xdr")
	v.With("mul").Inc()
	v.With("mul").Inc()
	v.With("add").Inc()
	if got := r.Counter("harness_invoke_calls_total", "binding", "xdr", "op", "mul").Value(); got != 2 {
		t.Fatalf("mul = %d, want 2", got)
	}
	// Concurrent With on a fresh value must converge on one child.
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v.With("racy").Inc()
		}()
	}
	wg.Wait()
	if got := v.With("racy").Value(); got != 16 {
		t.Fatalf("racy = %d, want 16", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := New()
	r.Help("harness_calls_total", "total calls by binding")
	r.Counter("harness_calls_total", "binding", "xdr").Add(3)
	r.Counter("harness_calls_total", "binding", "soap").Add(1)
	r.Gauge("harness_live").Set(7)
	h := r.Histogram("harness_lat_ns", "binding", "xdr")
	h.Observe(3) // bucket 2 (bound 3)
	h.Observe(900)

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP harness_calls_total total calls by binding",
		"# TYPE harness_calls_total counter",
		`harness_calls_total{binding="soap"} 1`,
		`harness_calls_total{binding="xdr"} 3`,
		"# TYPE harness_live gauge",
		"harness_live 7",
		"# TYPE harness_lat_ns histogram",
		`harness_lat_ns_bucket{binding="xdr",le="3"} 1`,
		`harness_lat_ns_bucket{binding="xdr",le="1023"} 2`,
		`harness_lat_ns_bucket{binding="xdr",le="+Inf"} 2`,
		`harness_lat_ns_sum{binding="xdr"} 903`,
		`harness_lat_ns_count{binding="xdr"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := New()
	r.Counter("esc_total", "msg", "a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{msg="a\"b\\c\nd"} 1`) {
		t.Fatalf("bad escaping:\n%s", sb.String())
	}
}

func TestSnapshotDump(t *testing.T) {
	r := New()
	r.Counter("c_total").Add(2)
	r.Histogram("h_ns").Observe(5)
	_, sp := r.StartSpan(context.Background(), "work")
	sp.End()
	var sb strings.Builder
	if err := r.WriteSnapshot(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"c_total", "h_ns", "recent spans", "work"} {
		if !strings.Contains(out, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, out)
		}
	}
}

func TestOr(t *testing.T) {
	if Or(nil) != Default() {
		t.Fatal("Or(nil) != Default()")
	}
	r := New()
	if Or(r) != r {
		t.Fatal("Or(r) != r")
	}
	if Or(Disabled()) != Disabled() {
		t.Fatal("Or(Disabled()) != Disabled()")
	}
}
