package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets bounds the power-of-two bucket array. Bucket i holds
// observations v with bits.Len64(v) == i, i.e. v ∈ [2^(i-1), 2^i);
// bucket 0 holds v == 0 and the last bucket absorbs everything larger.
// 48 buckets cover 1 ns .. ~1.6 days when observing nanoseconds, and
// 1 B .. 128 TiB when observing byte counts.
const histBuckets = 48

// Histogram is a lock-free, allocation-free histogram with power-of-two
// buckets. Observe is a pair of atomic adds plus a bit-length — cheap
// enough to sit on every invocation path. The nil Histogram is a valid
// no-op.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	i := bits.Len64(v)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// BucketBound returns the inclusive upper bound of bucket i (2^i − 1);
// the final bucket is unbounded.
func BucketBound(i int) uint64 {
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// ObserveDuration records a duration in nanoseconds (negative clamps to
// zero).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Start returns the timestamp to later pass to ObserveSince. On the nil
// Histogram it returns the zero time without consulting the clock, so a
// disabled timer costs one branch.
func (h *Histogram) Start() time.Time {
	if h == nil {
		return time.Time{}
	}
	return nowFunc()
}

// ObserveSince records the elapsed time since start (from Start). A zero
// start — the disabled path — records nothing.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil || start.IsZero() {
		return
	}
	h.ObserveDuration(nowFunc().Sub(start))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the mean observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts:
// it returns the upper bound of the bucket containing the q·count-th
// observation — an upper estimate with power-of-two resolution.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(histBuckets - 1)
}

// nonEmptyBuckets returns (index, cumulative count) rows for exposition:
// every bucket up to and including the highest non-empty one.
func (h *Histogram) nonEmptyBuckets() (idx []int, cum []uint64) {
	if h == nil {
		return nil, nil
	}
	highest := -1
	counts := make([]uint64, histBuckets)
	for i := 0; i < histBuckets; i++ {
		counts[i] = h.buckets[i].Load()
		if counts[i] > 0 {
			highest = i
		}
	}
	if highest < 0 {
		return nil, nil
	}
	var c uint64
	for i := 0; i <= highest; i++ {
		c += counts[i]
		if counts[i] > 0 {
			idx = append(idx, i)
			cum = append(cum, c)
		}
	}
	return idx, cum
}
