// Package namesvc implements the Harness table-lookup plugin of Figure 2:
// a hierarchy of named tables mapping string keys to wire values, used by
// other plugins (notably the PVM emulation's task table) and exposed as an
// ordinary component so remote parties can read it through any binding.
package namesvc

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"harness2/internal/container"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// PluginClass is the class name under which the plugin registers.
const PluginClass = "harness.names"

// Service is the table-lookup service.
type Service struct {
	mu     sync.RWMutex
	tables map[string]map[string]any
}

var _ container.Component = (*Service)(nil)

// New returns an empty name service.
func New() *Service {
	return &Service{tables: make(map[string]map[string]any)}
}

// Factory returns the plugin factory.
func Factory() container.Factory {
	return func() (container.Component, error) { return New(), nil }
}

// Put stores value under table/key; the value must be a wire type.
func (s *Service) Put(table, key string, value any) error {
	if err := wire.Check(value); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[table]
	if !ok {
		t = make(map[string]any)
		s.tables[table] = t
	}
	t[key] = value
	return nil
}

// Get retrieves table/key.
func (s *Service) Get(table, key string) (any, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[table]
	if !ok {
		return nil, false
	}
	v, ok := t[key]
	return v, ok
}

// Delete removes table/key; deleting a missing key is a no-op. Empty
// tables are garbage-collected.
func (s *Service) Delete(table, key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tables[table]; ok {
		delete(t, key)
		if len(t) == 0 {
			delete(s.tables, table)
		}
	}
}

// Keys returns the sorted keys of a table.
func (s *Service) Keys(table string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t := s.tables[table]
	out := make([]string, 0, len(t))
	for k := range t {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Tables returns the sorted table names.
func (s *Service) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for k := range s.tables {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CompareAndPut stores value only when the current value equals old
// (old == nil means "only if absent"), returning whether it stored.
// This gives co-operating plugins an atomic claim primitive.
func (s *Service) CompareAndPut(table, key string, old, value any) (bool, error) {
	if err := wire.Check(value); err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[table]
	if !ok {
		t = make(map[string]any)
		s.tables[table] = t
	}
	cur, exists := t[key]
	if old == nil {
		if exists {
			return false, nil
		}
	} else if !exists || !wire.Equal(cur, old) {
		return false, nil
	}
	t[key] = value
	return true, nil
}

// Describe implements container.Component.
func (s *Service) Describe() wsdl.ServiceSpec {
	kv := []wsdl.ParamSpec{
		{Name: "table", Type: wire.KindString},
		{Name: "key", Type: wire.KindString},
	}
	return wsdl.ServiceSpec{
		Name: "NameService",
		Operations: []wsdl.OpSpec{
			{Name: "put", Input: append(kv, wsdl.ParamSpec{Name: "value", Type: wire.KindString}),
				Output: []wsdl.ParamSpec{{Name: "ok", Type: wire.KindBool}}},
			{Name: "get", Input: kv,
				Output: []wsdl.ParamSpec{{Name: "value", Type: wire.KindString}, {Name: "found", Type: wire.KindBool}}},
			{Name: "delete", Input: kv,
				Output: []wsdl.ParamSpec{{Name: "ok", Type: wire.KindBool}}},
			{Name: "keys", Input: []wsdl.ParamSpec{{Name: "table", Type: wire.KindString}},
				Output: []wsdl.ParamSpec{{Name: "keys", Type: wire.KindStringArray}}},
		},
	}
}

// Invoke implements container.Component. The remote surface carries
// string values only; richer wire values are a local-API affordance.
func (s *Service) Invoke(ctx context.Context, op string, args []wire.Arg) ([]wire.Arg, error) {
	tableV, _ := wire.GetArg(args, "table")
	table, _ := tableV.(string)
	keyV, _ := wire.GetArg(args, "key")
	key, _ := keyV.(string)
	switch op {
	case "put":
		valueV, _ := wire.GetArg(args, "value")
		value, ok := valueV.(string)
		if !ok {
			return nil, fmt.Errorf("namesvc: put requires a string value")
		}
		if err := s.Put(table, key, value); err != nil {
			return nil, err
		}
		return wire.Args("ok", true), nil
	case "get":
		v, found := s.Get(table, key)
		str, _ := v.(string)
		return wire.Args("value", str, "found", found), nil
	case "delete":
		s.Delete(table, key)
		return wire.Args("ok", true), nil
	case "keys":
		return wire.Args("keys", s.Keys(table)), nil
	}
	return nil, fmt.Errorf("namesvc: no such operation %q", op)
}
