package namesvc

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"harness2/internal/wire"
)

func TestPutGetDelete(t *testing.T) {
	s := New()
	if err := s.Put("tasks", "t1", "node1"); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get("tasks", "t1")
	if !ok || v.(string) != "node1" {
		t.Fatalf("get = %v %v", v, ok)
	}
	if _, ok := s.Get("tasks", "missing"); ok {
		t.Fatal("missing key should miss")
	}
	if _, ok := s.Get("notable", "t1"); ok {
		t.Fatal("missing table should miss")
	}
	s.Delete("tasks", "t1")
	if _, ok := s.Get("tasks", "t1"); ok {
		t.Fatal("deleted key should miss")
	}
	// Empty tables are collected.
	if got := s.Tables(); len(got) != 0 {
		t.Fatalf("tables = %v", got)
	}
	s.Delete("nope", "x") // no-op must not panic
}

func TestPutRejectsNonWireValues(t *testing.T) {
	s := New()
	if err := s.Put("t", "k", int(5)); err == nil {
		t.Fatal("plain int is not a wire type")
	}
	if err := s.Put("t", "k", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
}

func TestKeysAndTables(t *testing.T) {
	s := New()
	_ = s.Put("b", "z", "1")
	_ = s.Put("b", "a", "2")
	_ = s.Put("a", "k", "3")
	if got := s.Tables(); len(got) != 2 || got[0] != "a" {
		t.Fatalf("tables = %v", got)
	}
	if got := s.Keys("b"); len(got) != 2 || got[0] != "a" || got[1] != "z" {
		t.Fatalf("keys = %v", got)
	}
	if got := s.Keys("nope"); len(got) != 0 {
		t.Fatalf("keys of missing table = %v", got)
	}
}

func TestCompareAndPut(t *testing.T) {
	s := New()
	ok, err := s.CompareAndPut("t", "k", nil, "v1")
	if err != nil || !ok {
		t.Fatalf("initial claim: %v %v", ok, err)
	}
	ok, _ = s.CompareAndPut("t", "k", nil, "v2")
	if ok {
		t.Fatal("second only-if-absent claim must fail")
	}
	ok, _ = s.CompareAndPut("t", "k", "wrong", "v2")
	if ok {
		t.Fatal("wrong expectation must fail")
	}
	ok, _ = s.CompareAndPut("t", "k", "v1", "v2")
	if !ok {
		t.Fatal("correct expectation must succeed")
	}
	v, _ := s.Get("t", "k")
	if v.(string) != "v2" {
		t.Fatalf("v = %v", v)
	}
	if _, err := s.CompareAndPut("t", "k", nil, int(1)); err == nil {
		t.Fatal("non-wire value must be rejected")
	}
	// CAS on a missing key with a non-nil expectation fails.
	ok, _ = s.CompareAndPut("t", "nokey", "x", "y")
	if ok {
		t.Fatal("CAS on missing key must fail")
	}
}

func TestConcurrentClaims(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	wins := make(chan int, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ok, err := s.CompareAndPut("claims", "leader", nil, fmt.Sprintf("w%d", i))
			if err != nil {
				t.Error(err)
			}
			if ok {
				wins <- i
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	n := 0
	for range wins {
		n++
	}
	if n != 1 {
		t.Fatalf("winners = %d, want exactly 1", n)
	}
}

func TestComponentInvoke(t *testing.T) {
	s := New()
	ctx := context.Background()
	if _, err := s.Invoke(ctx, "put", wire.Args("table", "t", "key", "k", "value", "v")); err != nil {
		t.Fatal(err)
	}
	out, err := s.Invoke(ctx, "get", wire.Args("table", "t", "key", "k"))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := wire.GetArg(out, "value")
	found, _ := wire.GetArg(out, "found")
	if v.(string) != "v" || !found.(bool) {
		t.Fatalf("get = %v %v", v, found)
	}
	out, _ = s.Invoke(ctx, "keys", wire.Args("table", "t"))
	if ks, _ := wire.GetArg(out, "keys"); len(ks.([]string)) != 1 {
		t.Fatalf("keys = %v", ks)
	}
	if _, err := s.Invoke(ctx, "delete", wire.Args("table", "t", "key", "k")); err != nil {
		t.Fatal(err)
	}
	out, _ = s.Invoke(ctx, "get", wire.Args("table", "t", "key", "k"))
	if found, _ := wire.GetArg(out, "found"); found.(bool) {
		t.Fatal("found after delete")
	}
	if _, err := s.Invoke(ctx, "put", wire.Args("table", "t", "key", "k", "value", int32(1))); err == nil {
		t.Fatal("remote put of non-string should fail")
	}
	if _, err := s.Invoke(ctx, "bogus", nil); err == nil {
		t.Fatal("unknown op should fail")
	}
}

func TestDescribe(t *testing.T) {
	s := New()
	spec := s.Describe()
	if spec.Name != "NameService" || len(spec.Operations) != 4 {
		t.Fatalf("spec = %+v", spec)
	}
}
