// Package kernel implements the Harness software backplane of Figure 1:
// a per-node kernel "into which component modules are plugged in", where
// plugins coordinate to realise distributed-computing functions and may
// leverage the services of other plugins already loaded in the same
// kernel (Figure 2).
//
// In HARNESS II terms a kernel is a component container specialised for
// plugins: each plugin class loads at most once per kernel under its class
// name, dependencies declared at registration load first, and plugins
// resolve siblings by class through the kernel. The underlying container
// remains fully visible, so kernel plugins are ordinary web-service
// components too — describable in WSDL, exposable in registries, and
// invocable through every binding.
package kernel

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"harness2/internal/container"
	"harness2/internal/wire"
)

// Errors returned by the kernel.
var (
	ErrAlreadyLoaded = errors.New("kernel: plugin already loaded")
	ErrNotLoaded     = errors.New("kernel: plugin not loaded")
	ErrNotRegistered = errors.New("kernel: plugin class not registered")
	ErrCycle         = errors.New("kernel: plugin dependency cycle")
)

// Kernel is one node's plugin backplane.
type Kernel struct {
	name string
	c    *container.Container

	mu       sync.Mutex
	requires map[string][]string
	loading  map[string]bool // cycle detection during dependency loads
}

// New creates a kernel named name over a fresh container with cfg.
// The container name is forced to the kernel name so JavaObject locators
// resolve consistently.
func New(name string, cfg container.Config) *Kernel {
	cfg.Name = name
	return &Kernel{
		name:     name,
		c:        container.New(cfg),
		requires: make(map[string][]string),
		loading:  make(map[string]bool),
	}
}

// Name returns the kernel's node name.
func (k *Kernel) Name() string { return k.name }

// Container exposes the underlying component container.
func (k *Kernel) Container() *container.Container { return k.c }

// RegisterPlugin installs a plugin class (its code) without loading it.
// requires lists plugin classes that must be loaded first — e.g. the
// hpvmd plugin of Figure 2 requires the message transport, event
// management, and table lookup plugins.
func (k *Kernel) RegisterPlugin(class string, f container.Factory, requires ...string) {
	k.c.RegisterFactory(class, f)
	k.mu.Lock()
	k.requires[class] = append([]string(nil), requires...)
	k.mu.Unlock()
}

// Load instantiates the plugin class under its class name, loading its
// declared dependencies first. Loading an already-loaded plugin returns
// ErrAlreadyLoaded; dependencies that are already loaded are fine.
func (k *Kernel) Load(class string) error {
	if _, ok := k.c.Instance(class); ok {
		return fmt.Errorf("%w: %q", ErrAlreadyLoaded, class)
	}
	return k.loadWithDeps(class)
}

func (k *Kernel) loadWithDeps(class string) error {
	if _, ok := k.c.Instance(class); ok {
		return nil
	}
	k.mu.Lock()
	if k.loading[class] {
		k.mu.Unlock()
		return fmt.Errorf("%w involving %q", ErrCycle, class)
	}
	deps, registered := k.requires[class]
	if !registered {
		k.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotRegistered, class)
	}
	k.loading[class] = true
	k.mu.Unlock()
	defer func() {
		k.mu.Lock()
		delete(k.loading, class)
		k.mu.Unlock()
	}()

	for _, req := range deps {
		if err := k.loadWithDeps(req); err != nil {
			return fmt.Errorf("kernel: loading %q: %w", class, err)
		}
	}
	if _, _, err := k.c.Deploy(class, class); err != nil {
		return err
	}
	return nil
}

// Unload removes a loaded plugin.
func (k *Kernel) Unload(class string) error {
	if _, ok := k.c.Instance(class); !ok {
		return fmt.Errorf("%w: %q", ErrNotLoaded, class)
	}
	return k.c.Undeploy(class)
}

// Loaded lists loaded plugin classes, sorted.
func (k *Kernel) Loaded() []string {
	var out []string
	for _, in := range k.c.Instances() {
		out = append(out, in.ID)
	}
	sort.Strings(out)
	return out
}

// Plugin returns a loaded plugin's component for direct (local-binding)
// use by siblings.
func (k *Kernel) Plugin(class string) (container.Component, bool) {
	inst, ok := k.c.Instance(class)
	if !ok {
		return nil, false
	}
	return inst.Component(), true
}

// Call invokes an operation on a loaded plugin through the container's
// dispatch path.
func (k *Kernel) Call(ctx context.Context, class, op string, args []wire.Arg) ([]wire.Arg, error) {
	if _, ok := k.c.Instance(class); !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotLoaded, class)
	}
	return k.c.Invoke(ctx, class, op, args)
}
