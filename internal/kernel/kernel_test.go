package kernel

import (
	"context"
	"errors"
	"testing"

	"harness2/internal/container"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

func pluginFactory(name string, loadedOrder *[]string) container.Factory {
	return container.FuncFactory(func() *container.FuncComponent {
		return &container.FuncComponent{
			Spec: wsdl.ServiceSpec{Name: name, Operations: []wsdl.OpSpec{
				{Name: "ping", Output: []wsdl.ParamSpec{{Name: "who", Type: wire.KindString}}},
			}},
			Handlers: map[string]container.OpFunc{
				"ping": func(context.Context, []wire.Arg) ([]wire.Arg, error) {
					return wire.Args("who", name), nil
				},
			},
			OnAttach: func(*container.Container) error {
				if loadedOrder != nil {
					*loadedOrder = append(*loadedOrder, name)
				}
				return nil
			},
		}
	})
}

func TestLoadUnload(t *testing.T) {
	k := New("node1", container.Config{})
	k.RegisterPlugin("p2p", pluginFactory("p2p", nil))
	if err := k.Load("p2p"); err != nil {
		t.Fatal(err)
	}
	if err := k.Load("p2p"); !errors.Is(err, ErrAlreadyLoaded) {
		t.Fatalf("err = %v", err)
	}
	if got := k.Loaded(); len(got) != 1 || got[0] != "p2p" {
		t.Fatalf("loaded = %v", got)
	}
	out, err := k.Call(context.Background(), "p2p", "ping", nil)
	if err != nil {
		t.Fatal(err)
	}
	if who, _ := wire.GetArg(out, "who"); who.(string) != "p2p" {
		t.Fatalf("who = %v", who)
	}
	if err := k.Unload("p2p"); err != nil {
		t.Fatal(err)
	}
	if err := k.Unload("p2p"); !errors.Is(err, ErrNotLoaded) {
		t.Fatalf("err = %v", err)
	}
	if _, err := k.Call(context.Background(), "p2p", "ping", nil); !errors.Is(err, ErrNotLoaded) {
		t.Fatalf("err = %v", err)
	}
}

func TestLoadUnregistered(t *testing.T) {
	k := New("node1", container.Config{})
	if err := k.Load("ghost"); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("err = %v", err)
	}
}

func TestDependencyOrder(t *testing.T) {
	// Figure 2: hpvmd requires transport, events and table plugins.
	var order []string
	k := New("node1", container.Config{})
	k.RegisterPlugin("transport", pluginFactory("transport", &order))
	k.RegisterPlugin("events", pluginFactory("events", &order))
	k.RegisterPlugin("tables", pluginFactory("tables", &order))
	k.RegisterPlugin("hpvmd", pluginFactory("hpvmd", &order), "transport", "events", "tables")
	if err := k.Load("hpvmd"); err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 || order[3] != "hpvmd" {
		t.Fatalf("order = %v", order)
	}
	if got := k.Loaded(); len(got) != 4 {
		t.Fatalf("loaded = %v", got)
	}
	// Already-loaded dependencies are fine on a second dependent.
	k.RegisterPlugin("mpi", pluginFactory("mpi", &order), "transport")
	if err := k.Load("mpi"); err != nil {
		t.Fatal(err)
	}
}

func TestTransitiveDependencies(t *testing.T) {
	var order []string
	k := New("n", container.Config{})
	k.RegisterPlugin("a", pluginFactory("a", &order), "b")
	k.RegisterPlugin("b", pluginFactory("b", &order), "c")
	k.RegisterPlugin("c", pluginFactory("c", &order))
	if err := k.Load("a"); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "c" || order[1] != "b" || order[2] != "a" {
		t.Fatalf("order = %v", order)
	}
}

func TestDependencyCycle(t *testing.T) {
	k := New("n", container.Config{})
	k.RegisterPlugin("a", pluginFactory("a", nil), "b")
	k.RegisterPlugin("b", pluginFactory("b", nil), "a")
	if err := k.Load("a"); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v", err)
	}
}

func TestMissingDependency(t *testing.T) {
	k := New("n", container.Config{})
	k.RegisterPlugin("a", pluginFactory("a", nil), "ghost")
	if err := k.Load("a"); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("err = %v", err)
	}
	if len(k.Loaded()) != 0 {
		t.Fatal("failed load must not leave plugins behind")
	}
}

func TestPluginAccessor(t *testing.T) {
	k := New("n", container.Config{})
	k.RegisterPlugin("p", pluginFactory("p", nil))
	if _, ok := k.Plugin("p"); ok {
		t.Fatal("plugin visible before load")
	}
	if err := k.Load("p"); err != nil {
		t.Fatal(err)
	}
	comp, ok := k.Plugin("p")
	if !ok || comp == nil {
		t.Fatal("plugin not accessible after load")
	}
	if comp.Describe().Name != "p" {
		t.Fatal("wrong component")
	}
	if k.Name() != "n" || k.Container() == nil {
		t.Fatal("accessors broken")
	}
	if k.Container().Name() != "n" {
		t.Fatal("container must take the kernel name")
	}
}
