package container

import (
	"context"
	"fmt"
	"strings"

	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// ManagerClass is the conventional class name of the manager component.
const ManagerClass = "harness.manager"

// Manager is the container's management service as a component: the
// paper's component container "defines a local name space, lookup service
// and a management service for other components", and since "every entity
// is potentially a public service", the management surface itself is a
// web service. Deploying a Manager makes the container remotely
// administerable — deploy/undeploy/start/stop/list/describe — through any
// binding that carries strings (SOAP and HTTP GET).
//
// Exposure remains the provider's choice: a container without a deployed
// (or without a published) Manager is not remotely manageable.
type Manager struct {
	host *Container
}

var (
	_ Component  = (*Manager)(nil)
	_ Attachable = (*Manager)(nil)
)

// ManagerFactory returns the factory for the management component.
func ManagerFactory() Factory {
	return func() (Component, error) { return &Manager{}, nil }
}

// Attach implements Attachable.
func (m *Manager) Attach(host *Container) error {
	m.host = host
	return nil
}

// Describe implements Component.
func (m *Manager) Describe() wsdl.ServiceSpec {
	id := []wsdl.ParamSpec{{Name: "id", Type: wire.KindString}}
	ok := []wsdl.ParamSpec{{Name: "ok", Type: wire.KindBool}}
	return wsdl.ServiceSpec{
		Name: "ContainerManager",
		Operations: []wsdl.OpSpec{
			{Name: "list", Output: []wsdl.ParamSpec{
				{Name: "ids", Type: wire.KindStringArray},
				{Name: "classes", Type: wire.KindStringArray},
				{Name: "services", Type: wire.KindStringArray},
				{Name: "exposures", Type: wire.KindStringArray},
			}},
			{Name: "classes", Output: []wsdl.ParamSpec{{Name: "classes", Type: wire.KindStringArray}}},
			{Name: "deploy", Input: []wsdl.ParamSpec{
				{Name: "class", Type: wire.KindString},
				{Name: "id", Type: wire.KindString},
			}, Output: []wsdl.ParamSpec{
				{Name: "id", Type: wire.KindString},
				{Name: "costNs", Type: wire.KindInt64},
			}},
			{Name: "undeploy", Input: id, Output: ok},
			{Name: "start", Input: id, Output: ok},
			{Name: "stop", Input: id, Output: ok},
			{Name: "describe", Input: id,
				Output: []wsdl.ParamSpec{{Name: "wsdl", Type: wire.KindString}}},
		},
	}
}

// Invoke implements Component.
func (m *Manager) Invoke(ctx context.Context, op string, args []wire.Arg) ([]wire.Arg, error) {
	if m.host == nil {
		return nil, fmt.Errorf("container: manager is not attached")
	}
	idOf := func() string {
		v, _ := wire.GetArg(args, "id")
		s, _ := v.(string)
		return s
	}
	switch op {
	case "list":
		instances := m.host.Instances()
		ids := make([]string, len(instances))
		classes := make([]string, len(instances))
		services := make([]string, len(instances))
		exposures := make([]string, len(instances))
		for i, in := range instances {
			ids[i] = in.ID
			classes[i] = in.Class
			services[i] = in.Spec().Name
			exposures[i] = in.Exposure.String()
		}
		return wire.Args("ids", ids, "classes", classes,
			"services", services, "exposures", exposures), nil
	case "classes":
		return wire.Args("classes", m.host.Classes()), nil
	case "deploy":
		cv, _ := wire.GetArg(args, "class")
		class, _ := cv.(string)
		if class == "" {
			return nil, fmt.Errorf("container: deploy requires a class")
		}
		if strings.HasPrefix(class, "harness.") {
			// Remote parties may not deploy framework infrastructure.
			return nil, fmt.Errorf("container: class %q is not remotely deployable", class)
		}
		inst, cost, err := m.host.Deploy(class, idOf())
		if err != nil {
			return nil, err
		}
		return wire.Args("id", inst.ID, "costNs", cost.Nanoseconds()), nil
	case "undeploy":
		if err := m.host.Undeploy(idOf()); err != nil {
			return nil, err
		}
		return wire.Args("ok", true), nil
	case "start":
		if err := m.host.Start(idOf()); err != nil {
			return nil, err
		}
		return wire.Args("ok", true), nil
	case "stop":
		if err := m.host.Stop(idOf()); err != nil {
			return nil, err
		}
		return wire.Args("ok", true), nil
	case "describe":
		defs, err := m.host.WSDLFor(idOf())
		if err != nil {
			return nil, err
		}
		return wire.Args("wsdl", defs.String()), nil
	}
	return nil, fmt.Errorf("container: manager has no operation %q", op)
}
