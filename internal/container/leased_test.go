package container

import (
	"testing"
	"time"

	"harness2/internal/registry"
)

// TestExposeLeasedRenewsUntilUnexpose proves the graceful-shutdown fix:
// a leased exposure stays registered past its lease (the keeper renews),
// and Unexpose releases it immediately instead of waiting for expiry.
func TestExposeLeasedRenewsUntilUnexpose(t *testing.T) {
	c := newC(t)
	reg := registry.New()
	inst, _, err := c.Deploy("MatMul", "m1")
	if err != nil {
		t.Fatal(err)
	}
	key, err := c.ExposeLeased(inst.ID, reg, 80*time.Millisecond, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Exposure != Public {
		t.Fatal("exposure not updated")
	}
	if e, ok := reg.Get(key); !ok || e.LeaseRemaining <= 0 {
		t.Fatalf("entry = %+v ok=%v, want live leased entry", e, ok)
	}
	// Outlive the lease: the keeper must be renewing.
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		if _, ok := reg.Get(key); !ok {
			t.Fatal("leased registration lapsed while the keeper was running")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := c.Unexpose(inst.ID, reg); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 0 {
		t.Fatal("unexpose must release the lease immediately")
	}
	if inst.Exposure != Private {
		t.Fatal("instance should revert to private")
	}
}

// TestExposeLeasedKeyStableAcrossRestart proves lease recovery: a second
// host re-publishing the same container/instance identity replaces the
// dangling registration instead of duplicating it.
func TestExposeLeasedKeyStableAcrossRestart(t *testing.T) {
	reg := registry.New()
	first := newC(t)
	inst, _, err := first.Deploy("MatMul", "m1")
	if err != nil {
		t.Fatal(err)
	}
	key1, err := first.ExposeLeased(inst.ID, reg, time.Second, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: the keeper dies with the host, the entry dangles.
	inst.mu.Lock()
	keeper := inst.keepers[reg]
	inst.mu.Unlock()
	keeper.Stop()

	second := newC(t) // same container name "node1"
	inst2, _, err := second.Deploy("MatMul", "m1")
	if err != nil {
		t.Fatal(err)
	}
	key2, err := second.ExposeLeased(inst2.ID, reg, time.Second, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if key1 != key2 {
		t.Fatalf("restart produced a new key %q != %q", key2, key1)
	}
	if reg.Len() != 1 {
		t.Fatalf("registry holds %d entries, want the one replaced registration", reg.Len())
	}
	if _, err := second.UnexposeEverywhere(inst2.ID); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 0 {
		t.Fatal("release after restart left the entry behind")
	}
}

// TestUndeployReleasesLease: undeploying a leased-exposed instance stops
// the keeper and removes the entry.
func TestUndeployReleasesLease(t *testing.T) {
	c := newC(t)
	reg := registry.New()
	inst, _, err := c.Deploy("MatMul", "m1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExposeLeased(inst.ID, reg, time.Second, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := c.Undeploy(inst.ID); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 0 {
		t.Fatal("undeploy must release leased registrations")
	}
}

// TestUnexposeEverywhere withdraws one instance from several registries
// (mixed persistent and leased) in one call.
func TestUnexposeEverywhere(t *testing.T) {
	c := newC(t)
	regA, regB := registry.New(), registry.New()
	inst, _, err := c.Deploy("MatMul", "m1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Expose(inst.ID, regA); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExposeLeased(inst.ID, regB, time.Second, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	n, err := c.UnexposeEverywhere(inst.ID)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("released %d registrations, want 2", n)
	}
	if regA.Len() != 0 || regB.Len() != 0 {
		t.Fatal("registrations left behind")
	}
	if inst.Exposure != Private {
		t.Fatal("instance should be private")
	}
	// Idempotent: nothing left to release.
	if n, err := c.UnexposeEverywhere(inst.ID); err != nil || n != 0 {
		t.Fatalf("second release: n=%d err=%v", n, err)
	}
}

// TestAbandonRegistrations is the crash model: renewal loops stop (a
// dead process renews nothing) but the entries stay, dangling until the
// lease expires — unlike UnexposeEverywhere, which removes them at once.
func TestAbandonRegistrations(t *testing.T) {
	c := newC(t)
	reg := registry.New()
	inst, _, err := c.Deploy("MatMul", "m1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExposeLeased(inst.ID, reg, 120*time.Millisecond, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if n := c.AbandonRegistrations(); n != 1 {
		t.Fatalf("abandoned %d keepers, want 1", n)
	}
	// The entry dangles: still answering immediately after the crash...
	if reg.Len() != 1 {
		t.Fatal("abandoned registration removed; it must dangle")
	}
	// ...then lapses once the lease runs out with nobody renewing.
	deadline := time.Now().Add(time.Second)
	for reg.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned lease never expired; a keeper is still renewing")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Idempotent: the keepers are gone.
	if n := c.AbandonRegistrations(); n != 0 {
		t.Fatalf("second abandon stopped %d keepers, want 0", n)
	}
}
