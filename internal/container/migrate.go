package container

import (
	"fmt"

	"harness2/internal/wire"
)

// wireCheck validates a snapshot value against the wire type system.
func wireCheck(v any) error { return wire.Check(v) }

// Stateful components can externalise and restore their state, enabling
// the mobility the paper ascribes to metacomputing components: "Mobile
// components may even move from one host to another during run time" and,
// in the Section 6 scenario, a user "can upload his application component
// to a container residing on that node".
//
// Snapshot must return wire-typed values (they may cross a binding when
// the migration is remote); Restore receives exactly what Snapshot
// produced.
type Stateful interface {
	Snapshot() ([]Field, error)
	Restore(state []Field) error
}

// Field is one named piece of externalised component state.
type Field struct {
	Name  string
	Value any
}

// ErrNotStateful is returned when migration is requested for a component
// that cannot externalise its state.
var ErrNotStateful = fmt.Errorf("container: component does not implement Stateful")

// ErrMigrateCollision is returned when the destination container already
// holds an instance under the migrating component's ID. The source
// instance is left intact and running: callers (e.g. a fleet drain
// sweeping components off a box) can distinguish "this component already
// exists over there" from a transport or restore failure and skip it.
var ErrMigrateCollision = fmt.Errorf("container: destination already holds instance")

// Migrate moves the instance id from c to dst, preserving its ID and —
// when the component implements Stateful — its state. The sequence is
// stop-and-copy: the source instance stops, its state snapshots, a fresh
// instance of the same class deploys at dst (dst must have the class's
// factory registered: code distribution is by factory registration, as
// everywhere in this reproduction), state restores, and only then is the
// source undeployed. On any failure the source instance is restarted and
// the error returned, so a failed migration never loses the component.
func Migrate(c *Container, id string, dst *Container) error {
	if c == dst {
		return fmt.Errorf("container: migration target is the source container")
	}
	// The stop-and-copy window is charged to the source container: that is
	// where the service is unavailable.
	h := c.met.lifeNs.With("migrate")
	start := h.Start()
	defer h.ObserveSince(start)
	inst, ok := c.Instance(id)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoInstance, id)
	}
	st, stateful := inst.Component().(Stateful)
	if !stateful {
		return ErrNotStateful
	}
	// Refuse up front when the ID is taken at the destination, before the
	// source is stopped: the source never blips and the caller gets a
	// distinguished error instead of a wrapped deploy failure. A deploy
	// racing into dst after this check still fails safely below (the
	// source restarts), just with the generic duplicate-ID error.
	if _, taken := dst.Instance(id); taken {
		return fmt.Errorf("%w: %q at %s", ErrMigrateCollision, id, dst.Name())
	}
	// Freeze the source so the snapshot is consistent.
	if err := c.Stop(id); err != nil {
		return err
	}
	restart := func() { _ = c.Start(id) }

	state, err := st.Snapshot()
	if err != nil {
		restart()
		return fmt.Errorf("container: snapshot %q: %w", id, err)
	}
	for _, f := range state {
		// Validate against the wire type system so remote migrations
		// behave identically to local ones.
		if err := checkStateField(f); err != nil {
			restart()
			return err
		}
	}
	newInst, _, err := dst.Deploy(inst.Class, id)
	if err != nil {
		restart()
		return fmt.Errorf("container: migrate %q to %s: %w", id, dst.Name(), err)
	}
	newSt, ok := newInst.Component().(Stateful)
	if !ok {
		_ = dst.Undeploy(id)
		restart()
		return fmt.Errorf("container: class %q at %s lost statefulness", inst.Class, dst.Name())
	}
	if err := newSt.Restore(state); err != nil {
		_ = dst.Undeploy(id)
		restart()
		return fmt.Errorf("container: restore %q at %s: %w", id, dst.Name(), err)
	}
	// Commit: remove the source (also withdraws its registrations).
	if err := c.Undeploy(id); err != nil {
		// The destination copy is live; report the cleanup failure.
		return fmt.Errorf("container: source cleanup after migrating %q: %w", id, err)
	}
	return nil
}

func checkStateField(f Field) error {
	if f.Name == "" {
		return fmt.Errorf("container: snapshot field without a name")
	}
	if err := wireCheck(f.Value); err != nil {
		return fmt.Errorf("container: snapshot field %q: %w", f.Name, err)
	}
	return nil
}
