package container

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// statefulCounterFactory builds a migratable counter: its running total
// survives Snapshot/Restore.
func statefulCounterFactory() Factory {
	return FuncFactory(func() *FuncComponent {
		var mu sync.Mutex
		var n int64
		f := &FuncComponent{
			Spec: wsdl.ServiceSpec{Name: "SCounter", Operations: []wsdl.OpSpec{
				{Name: "inc", Input: []wsdl.ParamSpec{{Name: "by", Type: wire.KindInt64}},
					Output: []wsdl.ParamSpec{{Name: "total", Type: wire.KindInt64}}},
			}},
		}
		f.Handlers = map[string]OpFunc{
			"inc": func(ctx context.Context, args []wire.Arg) ([]wire.Arg, error) {
				by, _ := wire.GetArg(args, "by")
				mu.Lock()
				defer mu.Unlock()
				n += by.(int64)
				return wire.Args("total", n), nil
			},
		}
		f.OnSnapshot = func() ([]Field, error) {
			mu.Lock()
			defer mu.Unlock()
			return []Field{{Name: "n", Value: n}}, nil
		}
		f.OnRestore = func(state []Field) error {
			mu.Lock()
			defer mu.Unlock()
			for _, s := range state {
				if s.Name == "n" {
					n = s.Value.(int64)
					return nil
				}
			}
			return fmt.Errorf("missing n")
		}
		return f
	})
}

func migrationPair(t *testing.T) (*Container, *Container) {
	t.Helper()
	src := New(Config{Name: "src"})
	dst := New(Config{Name: "dst"})
	for _, c := range []*Container{src, dst} {
		c.RegisterFactory("SCounter", statefulCounterFactory())
	}
	return src, dst
}

func TestMigratePreservesState(t *testing.T) {
	src, dst := migrationPair(t)
	inst, _, err := src.Deploy("SCounter", "job")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := src.Invoke(ctx, inst.ID, "inc", wire.Args("by", int64(3))); err != nil {
			t.Fatal(err)
		}
	}
	if err := Migrate(src, "job", dst); err != nil {
		t.Fatal(err)
	}
	if _, ok := src.Instance("job"); ok {
		t.Fatal("source instance survived migration")
	}
	out, err := dst.Invoke(ctx, "job", "inc", wire.Args("by", int64(0)))
	if err != nil {
		t.Fatal(err)
	}
	total, _ := wire.GetArg(out, "total")
	if total.(int64) != 15 {
		t.Fatalf("total after migration = %v, want 15", total)
	}
}

func TestMigrateErrors(t *testing.T) {
	src, dst := migrationPair(t)
	if err := Migrate(src, "ghost", dst); !errors.Is(err, ErrNoInstance) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := src.Deploy("SCounter", "a"); err != nil {
		t.Fatal(err)
	}
	if err := Migrate(src, "a", src); err == nil {
		t.Fatal("self-migration should fail")
	}
	// Destination without the class: source must be restarted.
	bare := New(Config{Name: "bare"})
	if err := Migrate(src, "a", bare); err == nil {
		t.Fatal("missing factory at destination should fail")
	}
	inst, _ := src.Instance("a")
	if inst.Status() != Running {
		t.Fatal("failed migration left the source stopped")
	}
	if _, err := src.Invoke(context.Background(), "a", "inc", wire.Args("by", int64(1))); err != nil {
		t.Fatalf("source unusable after failed migration: %v", err)
	}
}

func TestMigrateRejectsNonStateful(t *testing.T) {
	src, dst := migrationPair(t)
	src.RegisterFactory("Plain", counterFactory()) // no snapshot hooks
	dst.RegisterFactory("Plain", counterFactory())
	if _, _, err := src.Deploy("Plain", "p"); err != nil {
		t.Fatal(err)
	}
	err := Migrate(src, "p", dst)
	if err == nil {
		t.Fatal("non-stateful migration should fail")
	}
	// The source must keep running.
	inst, _ := src.Instance("p")
	if inst.Status() != Running {
		t.Fatal("source left stopped")
	}
}

func TestMigrateDuplicateIDAtDestination(t *testing.T) {
	src, dst := migrationPair(t)
	if _, _, err := src.Deploy("SCounter", "x"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := dst.Deploy("SCounter", "x"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := src.Invoke(ctx, "x", "inc", wire.Args("by", int64(7))); err != nil {
		t.Fatal(err)
	}
	if err := Migrate(src, "x", dst); !errors.Is(err, ErrMigrateCollision) {
		t.Fatalf("err = %v, want ErrMigrateCollision", err)
	}
	// The source must keep running — the collision is detected before the
	// stop-and-copy window opens, so there is not even a service blip.
	inst, _ := src.Instance("x")
	if inst.Status() != Running {
		t.Fatal("source left stopped after collision")
	}
	out, err := src.Invoke(ctx, "x", "inc", wire.Args("by", int64(1)))
	if err != nil {
		t.Fatalf("source unusable after collision: %v", err)
	}
	if total, _ := wire.GetArg(out, "total"); total != int64(8) {
		t.Fatalf("source state disturbed: total = %v", total)
	}
	// The destination's own instance must be untouched.
	dout, err := dst.Invoke(ctx, "x", "inc", wire.Args("by", int64(2)))
	if err != nil {
		t.Fatalf("destination instance disturbed: %v", err)
	}
	if total, _ := wire.GetArg(dout, "total"); total != int64(2) {
		t.Fatalf("destination state disturbed: total = %v", total)
	}
}

func TestMigrateRejectsNonWireState(t *testing.T) {
	src, dst := migrationPair(t)
	src.RegisterFactory("BadState", FuncFactory(func() *FuncComponent {
		return &FuncComponent{
			Spec: wsdl.ServiceSpec{Name: "BadState", Operations: []wsdl.OpSpec{{Name: "noop"}}},
			Handlers: map[string]OpFunc{
				"noop": func(context.Context, []wire.Arg) ([]wire.Arg, error) { return nil, nil },
			},
			OnSnapshot: func() ([]Field, error) {
				return []Field{{Name: "bad", Value: map[string]int{}}}, nil
			},
			OnRestore: func([]Field) error { return nil },
		}
	}))
	dst.RegisterFactory("BadState", statefulCounterFactory())
	if _, _, err := src.Deploy("BadState", "b"); err != nil {
		t.Fatal(err)
	}
	if err := Migrate(src, "b", dst); err == nil {
		t.Fatal("non-wire snapshot state should fail")
	}
	inst, _ := src.Instance("b")
	if inst.Status() != Running {
		t.Fatal("source left stopped")
	}
}
