package container

import (
	"context"
	"fmt"

	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// OpFunc implements one operation of a FuncComponent.
type OpFunc func(ctx context.Context, args []wire.Arg) ([]wire.Arg, error)

// FuncComponent adapts a service spec plus per-operation functions into a
// Component, the quickest way to implement services in Go (analogous to
// the paper's single-method Java classes).
type FuncComponent struct {
	Spec     wsdl.ServiceSpec
	Handlers map[string]OpFunc
	// OnAttach and OnDetach hook the container lifecycle; either may be
	// nil.
	OnAttach func(host *Container) error
	OnDetach func() error
	// OnSnapshot and OnRestore, when both set, make the component
	// Stateful and therefore migratable (see Migrate).
	OnSnapshot func() ([]Field, error)
	OnRestore  func(state []Field) error
}

var (
	_ Component  = (*FuncComponent)(nil)
	_ Attachable = (*FuncComponent)(nil)
	_ Detachable = (*FuncComponent)(nil)
)

// Snapshot implements Stateful when OnSnapshot is set.
func (f *FuncComponent) Snapshot() ([]Field, error) {
	if f.OnSnapshot == nil {
		return nil, ErrNotStateful
	}
	return f.OnSnapshot()
}

// Restore implements Stateful when OnRestore is set.
func (f *FuncComponent) Restore(state []Field) error {
	if f.OnRestore == nil {
		return ErrNotStateful
	}
	return f.OnRestore(state)
}

// Describe implements Component.
func (f *FuncComponent) Describe() wsdl.ServiceSpec { return f.Spec }

// Invoke implements Component.
func (f *FuncComponent) Invoke(ctx context.Context, op string, args []wire.Arg) ([]wire.Arg, error) {
	h, ok := f.Handlers[op]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchMethod, f.Spec.Name, op)
	}
	return h(ctx, args)
}

// Attach implements Attachable.
func (f *FuncComponent) Attach(host *Container) error {
	if f.OnAttach != nil {
		return f.OnAttach(host)
	}
	return nil
}

// Detach implements Detachable.
func (f *FuncComponent) Detach() error {
	if f.OnDetach != nil {
		return f.OnDetach()
	}
	return nil
}

// FuncFactory returns a Factory producing fresh FuncComponents via build.
func FuncFactory(build func() *FuncComponent) Factory {
	return func() (Component, error) { return build(), nil }
}
