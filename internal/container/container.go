// Package container implements the HARNESS II component container — the
// middle abstraction layer of the architecture (Figure 6). A container
// "defines a local name space, lookup service and a management service for
// other components": it deploys component instances from registered
// factories, dispatches invocations to specific stateful instances (the
// JavaObject binding target), answers local lookup queries, and controls
// each instance's exposure level (private, or published to one or more
// registries — a run-time decision that can be reviewed at any time).
//
// The package also models the paper's deployment-cost contrast: the
// lightweight HARNESS II container instantiates volatile components
// immediately, while a DeployPolicy can emulate the heavyweight
// e-commerce application-server flow (restart cost, human approval) that
// the paper argues is unsuitable for metacomputing (experiment E4).
package container

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"harness2/internal/registry"
	"harness2/internal/resilience"
	"harness2/internal/resilience/chaos"
	"harness2/internal/telemetry"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// Errors returned by container operations.
var (
	ErrNoFactory    = errors.New("container: no factory for class")
	ErrNoInstance   = errors.New("container: no such instance")
	ErrDuplicateID  = errors.New("container: instance id already in use")
	ErrNotExposed   = errors.New("container: instance not exposed")
	ErrStopped      = errors.New("container: instance is stopped")
	ErrNoSuchMethod = errors.New("container: no such operation")
)

// Component is a deployable service implementation.
type Component interface {
	// Describe returns the service descriptor used to generate WSDL.
	Describe() wsdl.ServiceSpec
	// Invoke executes one operation.
	Invoke(ctx context.Context, op string, args []wire.Arg) ([]wire.Arg, error)
}

// Attachable components are given their hosting container on deployment,
// enabling the inter-component leveraging of Figure 2 (a component can
// look up and call co-located services through local bindings).
type Attachable interface {
	Attach(host *Container) error
}

// Detachable components are notified on undeployment.
type Detachable interface {
	Detach() error
}

// Factory creates component instances for a class. Registering factories
// is the analogue of installing plugin code in the Harness repository.
type Factory func() (Component, error)

// Exposure is an instance's visibility level.
type Exposure int

const (
	// Private instances serve only co-located components.
	Private Exposure = iota
	// Public instances are published in one or more lookup services.
	Public
)

// String names the exposure level.
func (e Exposure) String() string {
	if e == Public {
		return "public"
	}
	return "private"
}

// Status is an instance lifecycle state.
type Status int

// Instance lifecycle: deployed instances start Running; Stop moves them to
// Stopped (refusing invocations) and Start back.
const (
	Running Status = iota
	Stopped
)

// Instance is one deployed, stateful component.
type Instance struct {
	ID       string
	Class    string
	Exposure Exposure

	mu        sync.Mutex
	status    Status
	component Component
	spec      wsdl.ServiceSpec
	// published maps registry identity (pointer) to the entry key so the
	// container can unpublish on exposure changes and undeployment.
	published map[registry.Lookup]string
	// keepers holds the lease-renewal loops of leased registrations
	// (ExposeLeased); stopped on Unexpose/Undeploy.
	keepers  map[registry.Lookup]*registry.LeaseKeeper
	deployed time.Time
	invokes  int64
}

// Status returns the instance lifecycle state.
func (in *Instance) Status() Status {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.status
}

// Spec returns the instance's service descriptor.
func (in *Instance) Spec() wsdl.ServiceSpec { return in.spec }

// Invocations returns how many operations the instance has served.
func (in *Instance) Invocations() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.invokes
}

// Component returns the underlying implementation. Co-located callers may
// type-assert it for direct in-process use — this is exactly the local
// JavaObject access path.
func (in *Instance) Component() Component { return in.component }

// DeployPolicy models the cost structure of a deployment technology.
type DeployPolicy struct {
	// Name labels the policy in experiment output.
	Name string
	// RestartCost is charged once per deployment when the technology
	// requires a container/application-server restart.
	RestartCost time.Duration
	// ApprovalCost models the human interaction the paper says era
	// deployment "usually require[s]".
	ApprovalCost time.Duration
	// PerServiceCost is the mechanical per-service installation cost.
	PerServiceCost time.Duration
	// Sleep, when true, physically sleeps the modelled costs instead of
	// only accounting them (for end-to-end demos; experiments keep it
	// false and read the returned cost).
	Sleep bool
}

// Cost returns the modelled total deployment latency under the policy.
func (p DeployPolicy) Cost() time.Duration {
	return p.RestartCost + p.ApprovalCost + p.PerServiceCost
}

// Lightweight is the HARNESS II container policy: automated instantiation
// with microsecond-scale bookkeeping only.
var Lightweight = DeployPolicy{Name: "harness2-lightweight", PerServiceCost: 50 * time.Microsecond}

// Heavyweight models the era application-server flow the paper contrasts
// against: minutes of human interaction plus a server restart.
var Heavyweight = DeployPolicy{
	Name:           "appserver-heavyweight",
	RestartCost:    30 * time.Second,
	ApprovalCost:   5 * time.Minute,
	PerServiceCost: 2 * time.Second,
}

// Config parameterises a container.
type Config struct {
	// Name is the container's name-space identifier.
	Name string
	// SOAPBase is the advertised base URL for SOAP endpoints
	// (e.g. http://host:8080/services); empty disables SOAP advertising.
	SOAPBase string
	// HTTPBase is the advertised base URL for HTTP GET (urlEncoded)
	// endpoints (e.g. http://host:8080/rest); empty disables them.
	HTTPBase string
	// XDRAddr is the advertised host:port of the XDR socket endpoint;
	// empty disables XDR advertising.
	XDRAddr string
	// XDRCompress names the wire-compression codec the XDR server accepts
	// (v3 negotiation, e.g. "flate"); empty suppresses the `compress`
	// capability in generated WSDL and remote clients stay raw.
	XDRCompress string
	// ShmAddr is the advertised shared-memory handshake address
	// (shm:<hostname>:<socket path>); empty disables shm advertising.
	// Like XDR, the binding is offered only for numeric-only services.
	ShmAddr string
	// Policy is the deployment cost model; zero value means Lightweight.
	Policy DeployPolicy
	// Telemetry selects the metrics registry; nil falls back to the
	// process default, telemetry.Disabled() switches instrumentation off.
	Telemetry *telemetry.Registry
	// Admission, when non-nil, bounds concurrent invocations across every
	// binding that dispatches into this container: excess requests are
	// shed with the distinguished Overloaded fault (S28). Nil admits
	// everything at the cost of one branch.
	Admission *resilience.Limiter
	// Chaos, when non-nil, injects deterministic faults at the dispatch
	// boundary — site ("container", op, instanceID) — so every binding
	// that reaches this container is exercised by the same schedule. Nil
	// costs one branch (S28).
	Chaos *chaos.Injector
}

// LifecycleEvent describes one container state change, delivered to
// registered listeners — the hook through which the Harness event-
// management plugin observes its own container (see events.BridgeContainer).
type LifecycleEvent struct {
	// Kind is one of deploy, undeploy, start, stop, expose, unexpose.
	Kind  string
	ID    string
	Class string
}

// LifecycleListener receives container lifecycle events. Listeners run
// synchronously on the mutating goroutine and must not block.
type LifecycleListener func(LifecycleEvent)

// Container hosts component instances.
type Container struct {
	cfg Config

	// met bundles the lifecycle instrument set (telemetry S27). All
	// handles are nil-safe, so a container configured with
	// telemetry.Disabled() pays a branch per event and nothing else.
	met struct {
		live    *telemetry.Gauge        // currently deployed instances
		invokes *telemetry.Counter      // operations dispatched locally
		lifeNs  *telemetry.HistogramVec // op: deploy, start, stop, migrate
		events  *telemetry.CounterVec   // lifecycle event kinds
	}

	mu        sync.RWMutex
	factories map[string]Factory
	instances map[string]*Instance
	listeners []LifecycleListener
	seq       int
}

// New creates an empty container.
func New(cfg Config) *Container {
	if cfg.Name == "" {
		cfg.Name = "container"
	}
	if cfg.Policy.Name == "" {
		cfg.Policy = Lightweight
	}
	c := &Container{
		cfg:       cfg,
		factories: make(map[string]Factory),
		instances: make(map[string]*Instance),
	}
	tel := telemetry.Or(cfg.Telemetry)
	tel.Help("harness_container_instances", "deployed instances by container")
	tel.Help("harness_container_invocations_total", "operations dispatched by container")
	tel.Help("harness_container_lifecycle_ns", "lifecycle operation latency by container and op")
	tel.Help("harness_container_lifecycle_events_total", "lifecycle events by container and kind")
	c.met.live = tel.Gauge("harness_container_instances", "container", cfg.Name)
	c.met.invokes = tel.Counter("harness_container_invocations_total", "container", cfg.Name)
	c.met.lifeNs = tel.HistogramVec("harness_container_lifecycle_ns", "op", "container", cfg.Name)
	c.met.events = tel.CounterVec("harness_container_lifecycle_events_total", "kind", "container", cfg.Name)
	return c
}

// Name returns the container's name-space identifier.
func (c *Container) Name() string { return c.cfg.Name }

// Policy returns the container's deployment policy.
func (c *Container) Policy() DeployPolicy { return c.cfg.Policy }

// AddLifecycleListener registers a lifecycle observer.
func (c *Container) AddLifecycleListener(fn LifecycleListener) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.listeners = append(c.listeners, fn)
}

func (c *Container) notify(kind, id, class string) {
	c.mu.RLock()
	listeners := append([]LifecycleListener(nil), c.listeners...)
	c.mu.RUnlock()
	c.met.events.With(kind).Inc()
	ev := LifecycleEvent{Kind: kind, ID: id, Class: class}
	for _, fn := range listeners {
		fn(ev)
	}
}

// RegisterFactory installs the code for a component class.
func (c *Container) RegisterFactory(class string, f Factory) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.factories[class] = f
}

// Classes lists registered component classes, sorted.
func (c *Container) Classes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.factories))
	for k := range c.factories {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Deploy instantiates class under the given instance ID (auto-generated
// when empty) and returns the instance plus the modelled deployment cost
// under the container's policy.
func (c *Container) Deploy(class, id string) (*Instance, time.Duration, error) {
	depHist := c.met.lifeNs.With("deploy")
	depStart := depHist.Start()
	c.mu.Lock()
	f, ok := c.factories[class]
	if !ok {
		c.mu.Unlock()
		return nil, 0, fmt.Errorf("%w: %q", ErrNoFactory, class)
	}
	if id == "" {
		c.seq++
		id = fmt.Sprintf("%s-%d", class, c.seq)
	}
	if _, exists := c.instances[id]; exists {
		c.mu.Unlock()
		return nil, 0, fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}
	// Reserve the ID before running user code outside the lock.
	placeholder := &Instance{ID: id, Class: class}
	c.instances[id] = placeholder
	policy := c.cfg.Policy
	c.mu.Unlock()

	comp, err := f()
	if err == nil {
		if a, ok := comp.(Attachable); ok {
			err = a.Attach(c)
		}
	}
	if err != nil {
		c.mu.Lock()
		delete(c.instances, id)
		c.mu.Unlock()
		return nil, 0, fmt.Errorf("container: deploy %s/%s: %w", class, id, err)
	}
	inst := &Instance{
		ID:        id,
		Class:     class,
		component: comp,
		spec:      comp.Describe(),
		published: make(map[registry.Lookup]string),
		keepers:   make(map[registry.Lookup]*registry.LeaseKeeper),
		deployed:  time.Now(),
	}
	c.mu.Lock()
	c.instances[id] = inst
	c.mu.Unlock()
	if policy.Sleep && policy.Cost() > 0 {
		time.Sleep(policy.Cost())
	}
	c.met.live.Inc()
	depHist.ObserveSince(depStart)
	c.notify("deploy", id, class)
	return inst, policy.Cost(), nil
}

// Undeploy stops and removes an instance, unpublishing it everywhere.
func (c *Container) Undeploy(id string) error {
	c.mu.Lock()
	inst, ok := c.instances[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoInstance, id)
	}
	delete(c.instances, id)
	c.mu.Unlock()
	inst.mu.Lock()
	pubs := inst.published
	inst.published = map[registry.Lookup]string{}
	keepers := inst.keepers
	inst.keepers = map[registry.Lookup]*registry.LeaseKeeper{}
	comp := inst.component
	inst.mu.Unlock()
	for reg, k := range keepers {
		k.Stop()
		// The keeper's key may have changed across re-publications; prefer
		// its current view over the one recorded at exposure time.
		pubs[reg] = k.Key()
	}
	for reg, key := range pubs {
		_ = reg.Remove(key)
	}
	c.met.live.Dec()
	c.notify("undeploy", id, inst.Class)
	if d, ok := comp.(Detachable); ok && comp != nil {
		return d.Detach()
	}
	return nil
}

// Instance returns a deployed instance by ID.
func (c *Container) Instance(id string) (*Instance, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	inst, ok := c.instances[id]
	if !ok || inst.component == nil {
		return nil, false
	}
	return inst, true
}

// Instances returns all deployed instances sorted by ID.
func (c *Container) Instances() []*Instance {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Instance, 0, len(c.instances))
	for _, in := range c.instances {
		if in.component != nil {
			out = append(out, in)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FindByClass returns deployed instances of the given class — the local
// lookup capability a runner box lacks.
func (c *Container) FindByClass(class string) []*Instance {
	var out []*Instance
	for _, in := range c.Instances() {
		if in.Class == class {
			out = append(out, in)
		}
	}
	return out
}

// FindByOperation returns instances whose service exposes the named
// operation.
func (c *Container) FindByOperation(op string) []*Instance {
	var out []*Instance
	for _, in := range c.Instances() {
		for _, o := range in.spec.Operations {
			if o.Name == op {
				out = append(out, in)
				break
			}
		}
	}
	return out
}

// Invoke dispatches an operation on a specific instance — the local
// (JavaObject) access path: no encoding, no network hop.
func (c *Container) Invoke(ctx context.Context, id, op string, args []wire.Arg) ([]wire.Arg, error) {
	inst, ok := c.Instance(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoInstance, id)
	}
	release, err := c.cfg.Admission.Acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	if err := c.cfg.Chaos.Apply(ctx, "container", op, id); err != nil {
		return nil, err
	}
	c.met.invokes.Inc()
	return inst.invoke(ctx, op, args)
}

func (in *Instance) invoke(ctx context.Context, op string, args []wire.Arg) ([]wire.Arg, error) {
	in.mu.Lock()
	if in.status != Running {
		in.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrStopped, in.ID)
	}
	found := false
	for _, o := range in.spec.Operations {
		if o.Name == op {
			found = true
			break
		}
	}
	in.invokes++
	comp := in.component
	in.mu.Unlock()
	if !found {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchMethod, in.Class, op)
	}
	return comp.Invoke(ctx, op, args)
}

// Stop pauses an instance: subsequent invocations fail until Start.
func (c *Container) Stop(id string) error { return c.setStatus(id, Stopped) }

// Start resumes a stopped instance.
func (c *Container) Start(id string) error { return c.setStatus(id, Running) }

func (c *Container) setStatus(id string, s Status) error {
	kind := "start"
	if s == Stopped {
		kind = "stop"
	}
	h := c.met.lifeNs.With(kind)
	start := h.Start()
	inst, ok := c.Instance(id)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoInstance, id)
	}
	inst.mu.Lock()
	inst.status = s
	inst.mu.Unlock()
	h.ObserveSince(start)
	c.notify(kind, id, inst.Class)
	return nil
}

// WSDLFor generates the instance's complete WSDL document, advertising
// every binding the container can serve: SOAP when SOAPBase is configured,
// XDR when XDRAddr is configured and the service is numeric-only, and the
// JavaObject binding pinning this exact instance.
func (c *Container) WSDLFor(id string) (*wsdl.Definitions, error) {
	inst, ok := c.Instance(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoInstance, id)
	}
	eps := wsdl.EndpointSet{
		LocalAddress: c.LocalAddress(id),
		Class:        inst.Class,
		Instance:     inst.ID,
	}
	if c.cfg.SOAPBase != "" {
		eps.SOAPAddress = strings.TrimSuffix(c.cfg.SOAPBase, "/") + "/" + inst.ID
	}
	if c.cfg.HTTPBase != "" && urlEncodable(inst.spec) {
		eps.HTTPAddress = strings.TrimSuffix(c.cfg.HTTPBase, "/") + "/" + inst.ID
	}
	if c.cfg.XDRAddr != "" && numericOnly(inst.spec) {
		eps.XDRAddress = c.cfg.XDRAddr
		eps.XDRCompress = c.cfg.XDRCompress
	}
	if c.cfg.ShmAddr != "" && numericOnly(inst.spec) {
		eps.ShmAddress = c.cfg.ShmAddr
	}
	return wsdl.Generate(inst.spec, eps)
}

// LocalAddress returns the JavaObject locator for an instance.
func (c *Container) LocalAddress(id string) string {
	return "local:" + c.cfg.Name + "/" + id
}

func urlEncodable(spec wsdl.ServiceSpec) bool {
	for _, op := range spec.Operations {
		for _, p := range append(append([]wsdl.ParamSpec{}, op.Input...), op.Output...) {
			if p.Type == wire.KindStruct {
				return false
			}
		}
	}
	return true
}

func numericOnly(spec wsdl.ServiceSpec) bool {
	for _, op := range spec.Operations {
		for _, p := range op.Input {
			if !p.Type.Numeric() {
				return false
			}
		}
		for _, p := range op.Output {
			if !p.Type.Numeric() {
				return false
			}
		}
	}
	return true
}

// InspectableServices implements registry.WSDLSource: every deployed
// instance is listed under its service name with its instance ID as the
// document locator. Mounting a WSIL handler is itself the provider's
// exposure decision for the node.
func (c *Container) InspectableServices() []registry.ServiceRef {
	var out []registry.ServiceRef
	for _, in := range c.Instances() {
		out = append(out, registry.ServiceRef{Name: in.Spec().Name, Location: in.ID})
	}
	return out
}

// WSDLDocument implements registry.WSDLSource.
func (c *Container) WSDLDocument(id string) (string, error) {
	defs, err := c.WSDLFor(id)
	if err != nil {
		return "", err
	}
	return defs.String(), nil
}

// Expose publishes an instance's WSDL into reg and marks it Public. The
// provider can call it (and Unexpose) at any time: "the decision can be
// reviewed at any time, thus allowing published services to be removed and
// private services to be published".
func (c *Container) Expose(id string, reg registry.Lookup) (string, error) {
	inst, ok := c.Instance(id)
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrNoInstance, id)
	}
	defs, err := c.WSDLFor(id)
	if err != nil {
		return "", err
	}
	key, err := reg.Publish(registry.Entry{
		Business: c.cfg.Name,
		Name:     inst.spec.Name,
		TModels:  registry.TModelsFor(defs),
		WSDL:     defs.String(),
	})
	if err != nil {
		return "", err
	}
	inst.mu.Lock()
	inst.Exposure = Public
	inst.published[reg] = key
	inst.mu.Unlock()
	c.notify("expose", id, inst.Class)
	return key, nil
}

// LeasedRegistry is a lookup service that also supports leased
// publication — satisfied by both the in-process *registry.Registry and
// the SOAP *registry.Remote, so leased exposure works wherever the
// registry runs.
type LeasedRegistry interface {
	registry.Lookup
	registry.LeaseHolder
}

// ExposeLeased publishes an instance's WSDL into reg under a lease and
// keeps the registration alive with a LeaseKeeper until Unexpose or
// Undeploy, which stop the renewal loop and remove the entry — releasing
// the lease instead of letting it dangle until expiry. The registration
// key is derived from the container and instance identity, so a restarted
// host re-publishing the same instance replaces its dangling predecessor
// rather than duplicating it.
func (c *Container) ExposeLeased(id string, reg LeasedRegistry, lease, interval time.Duration) (string, error) {
	inst, ok := c.Instance(id)
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrNoInstance, id)
	}
	defs, err := c.WSDLFor(id)
	if err != nil {
		return "", err
	}
	keeper, err := registry.KeepLease(reg, registry.Entry{
		Key:      c.cfg.Name + "::" + inst.ID,
		Business: c.cfg.Name,
		Name:     inst.spec.Name,
		TModels:  registry.TModelsFor(defs),
		WSDL:     defs.String(),
	}, lease, interval)
	if err != nil {
		return "", err
	}
	key := keeper.Key()
	inst.mu.Lock()
	inst.Exposure = Public
	inst.published[reg] = key
	inst.keepers[reg] = keeper
	inst.mu.Unlock()
	c.notify("expose", id, inst.Class)
	return key, nil
}

// Unexpose withdraws an instance from reg; when no registrations remain
// the instance reverts to Private. A leased exposure's renewal loop is
// stopped and its lease released.
func (c *Container) Unexpose(id string, reg registry.Lookup) error {
	inst, ok := c.Instance(id)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoInstance, id)
	}
	inst.mu.Lock()
	key, published := inst.published[reg]
	delete(inst.published, reg)
	keeper := inst.keepers[reg]
	delete(inst.keepers, reg)
	if len(inst.published) == 0 {
		inst.Exposure = Private
	}
	inst.mu.Unlock()
	if !published {
		return fmt.Errorf("%w: %q not published in that registry", ErrNotExposed, id)
	}
	if keeper != nil {
		keeper.Stop()
		key = keeper.Key()
	}
	c.notify("unexpose", id, inst.Class)
	return reg.Remove(key)
}

// UnexposeEverywhere withdraws an instance from every registry it is
// published in — the graceful-shutdown path: a terminating host calls it
// for each public instance so registrations disappear immediately instead
// of dangling until their leases expire. It reports the number of
// registrations released; removal errors (e.g. an unreachable registry)
// are joined, and the instance is left Private regardless.
func (c *Container) UnexposeEverywhere(id string) (int, error) {
	inst, ok := c.Instance(id)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoInstance, id)
	}
	inst.mu.Lock()
	pubs := inst.published
	inst.published = map[registry.Lookup]string{}
	keepers := inst.keepers
	inst.keepers = map[registry.Lookup]*registry.LeaseKeeper{}
	inst.Exposure = Private
	inst.mu.Unlock()
	for reg, k := range keepers {
		k.Stop()
		pubs[reg] = k.Key()
	}
	var errs []error
	for reg, key := range pubs {
		if err := reg.Remove(key); err != nil {
			errs = append(errs, err)
		}
	}
	if len(pubs) > 0 {
		c.notify("unexpose", id, inst.Class)
	}
	return len(pubs), errors.Join(errs...)
}

// AbandonRegistrations stops every lease-renewal loop WITHOUT removing
// the registrations — the crash model: a dead process stops renewing, so
// its entries dangle until the lease expires or a restarted instance
// republishes over them. It reports the number of keepers stopped.
func (c *Container) AbandonRegistrations() int {
	n := 0
	for _, inst := range c.Instances() {
		inst.mu.Lock()
		keepers := inst.keepers
		inst.keepers = map[registry.Lookup]*registry.LeaseKeeper{}
		inst.mu.Unlock()
		for _, k := range keepers {
			k.Stop()
			n++
		}
	}
	return n
}
