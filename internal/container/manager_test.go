package container

import (
	"context"
	"testing"

	"harness2/internal/wire"
)

func managedContainer(t *testing.T) (*Container, string) {
	t.Helper()
	c := New(Config{Name: "managed"})
	c.RegisterFactory("Counter", counterFactory())
	c.RegisterFactory(ManagerClass, ManagerFactory())
	inst, _, err := c.Deploy(ManagerClass, "mgr")
	if err != nil {
		t.Fatal(err)
	}
	return c, inst.ID
}

func TestManagerDeployUndeploy(t *testing.T) {
	c, mgr := managedContainer(t)
	ctx := context.Background()

	out, err := c.Invoke(ctx, mgr, "deploy", wire.Args("class", "Counter", "id", "c1"))
	if err != nil {
		t.Fatal(err)
	}
	id, _ := wire.GetArg(out, "id")
	if id.(string) != "c1" {
		t.Fatalf("id = %v", id)
	}
	if cost, _ := wire.GetArg(out, "costNs"); cost.(int64) <= 0 {
		t.Fatalf("costNs = %v", cost)
	}
	// The deployed component works.
	r, err := c.Invoke(ctx, "c1", "inc", wire.Args("by", int64(2)))
	if err != nil {
		t.Fatal(err)
	}
	if total, _ := wire.GetArg(r, "total"); total.(int64) != 2 {
		t.Fatalf("total = %v", total)
	}
	if _, err := c.Invoke(ctx, mgr, "undeploy", wire.Args("id", "c1")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Instance("c1"); ok {
		t.Fatal("undeploy did not remove the instance")
	}
	if _, err := c.Invoke(ctx, mgr, "undeploy", wire.Args("id", "c1")); err == nil {
		t.Fatal("double undeploy should fail")
	}
	if _, err := c.Invoke(ctx, mgr, "deploy", wire.Args("class", "Ghost")); err == nil {
		t.Fatal("deploy of unknown class should fail")
	}
	if _, err := c.Invoke(ctx, mgr, "deploy", nil); err == nil {
		t.Fatal("deploy without class should fail")
	}
}

func TestManagerRefusesInfrastructureClasses(t *testing.T) {
	c, mgr := managedContainer(t)
	_, err := c.Invoke(context.Background(), mgr, "deploy",
		wire.Args("class", ManagerClass))
	if err == nil {
		t.Fatal("remote deploy of harness.* classes must be refused")
	}
}

func TestManagerListAndClasses(t *testing.T) {
	c, mgr := managedContainer(t)
	ctx := context.Background()
	if _, err := c.Invoke(ctx, mgr, "deploy", wire.Args("class", "Counter", "id", "c1")); err != nil {
		t.Fatal(err)
	}
	out, err := c.Invoke(ctx, mgr, "list", nil)
	if err != nil {
		t.Fatal(err)
	}
	ids, _ := wire.GetArg(out, "ids")
	classes, _ := wire.GetArg(out, "classes")
	exposures, _ := wire.GetArg(out, "exposures")
	if len(ids.([]string)) != 2 { // manager + counter
		t.Fatalf("ids = %v", ids)
	}
	if classes.([]string)[0] != "Counter" {
		t.Fatalf("classes = %v", classes)
	}
	if exposures.([]string)[0] != "private" {
		t.Fatalf("exposures = %v", exposures)
	}
	out, err = c.Invoke(ctx, mgr, "classes", nil)
	if err != nil {
		t.Fatal(err)
	}
	if cs, _ := wire.GetArg(out, "classes"); len(cs.([]string)) != 2 {
		t.Fatalf("registered classes = %v", cs)
	}
}

func TestManagerStartStopDescribe(t *testing.T) {
	c, mgr := managedContainer(t)
	ctx := context.Background()
	if _, err := c.Invoke(ctx, mgr, "deploy", wire.Args("class", "Counter", "id", "c1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(ctx, mgr, "stop", wire.Args("id", "c1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(ctx, "c1", "inc", wire.Args("by", int64(1))); err == nil {
		t.Fatal("stopped instance should refuse invocations")
	}
	if _, err := c.Invoke(ctx, mgr, "start", wire.Args("id", "c1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(ctx, "c1", "inc", wire.Args("by", int64(1))); err != nil {
		t.Fatal(err)
	}
	out, err := c.Invoke(ctx, mgr, "describe", wire.Args("id", "c1"))
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := wire.GetArg(out, "wsdl")
	if doc.(string) == "" {
		t.Fatal("empty WSDL")
	}
	if _, err := c.Invoke(ctx, mgr, "describe", wire.Args("id", "ghost")); err == nil {
		t.Fatal("describe of unknown instance should fail")
	}
	if _, err := c.Invoke(ctx, mgr, "bogus", nil); err == nil {
		t.Fatal("unknown op should fail")
	}
}

func TestManagerUnattached(t *testing.T) {
	m := &Manager{}
	if _, err := m.Invoke(context.Background(), "list", nil); err == nil {
		t.Fatal("unattached manager should fail")
	}
}
