package container

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"harness2/internal/registry"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// counter is a stateful component proving the JavaObject binding premise:
// a specific instance accumulates state across invocations.
func counterFactory() Factory {
	return FuncFactory(func() *FuncComponent {
		var mu sync.Mutex
		var n int64
		return &FuncComponent{
			Spec: wsdl.ServiceSpec{
				Name: "Counter",
				Operations: []wsdl.OpSpec{
					{Name: "inc", Input: []wsdl.ParamSpec{{Name: "by", Type: wire.KindInt64}},
						Output: []wsdl.ParamSpec{{Name: "total", Type: wire.KindInt64}}},
				},
			},
			Handlers: map[string]OpFunc{
				"inc": func(ctx context.Context, args []wire.Arg) ([]wire.Arg, error) {
					by, _ := wire.GetArg(args, "by")
					mu.Lock()
					defer mu.Unlock()
					n += by.(int64)
					return wire.Args("total", n), nil
				},
			},
		}
	})
}

func matmulFactory() Factory {
	return FuncFactory(func() *FuncComponent {
		return &FuncComponent{
			Spec: wsdl.MatMulSpec(),
			Handlers: map[string]OpFunc{
				"getResult": func(ctx context.Context, args []wire.Arg) ([]wire.Arg, error) {
					a, _ := wire.GetArg(args, "mata")
					return wire.Args("result", a), nil
				},
			},
		}
	})
}

func newC(t *testing.T) *Container {
	t.Helper()
	c := New(Config{Name: "node1", SOAPBase: "http://host:8080/services", XDRAddr: "host:9010"})
	c.RegisterFactory("Counter", counterFactory())
	c.RegisterFactory("MatMul", matmulFactory())
	return c
}

func TestDeployInvokeStateful(t *testing.T) {
	c := newC(t)
	inst, cost, err := c.Deploy("Counter", "")
	if err != nil {
		t.Fatal(err)
	}
	if cost != Lightweight.Cost() {
		t.Fatalf("cost = %v", cost)
	}
	if inst.ID == "" || inst.Class != "Counter" {
		t.Fatalf("inst = %+v", inst)
	}
	ctx := context.Background()
	for i := 1; i <= 3; i++ {
		out, err := c.Invoke(ctx, inst.ID, "inc", wire.Args("by", int64(2)))
		if err != nil {
			t.Fatal(err)
		}
		total, _ := wire.GetArg(out, "total")
		if total.(int64) != int64(2*i) {
			t.Fatalf("iteration %d: total = %v", i, total)
		}
	}
	if inst.Invocations() != 3 {
		t.Fatalf("invocations = %d", inst.Invocations())
	}
}

func TestTwoInstancesHaveIndependentState(t *testing.T) {
	// The HARNESS II JavaObject binding exists precisely because instances
	// are distinct: incrementing one must not affect the other.
	c := newC(t)
	a, _, _ := c.Deploy("Counter", "a")
	b, _, _ := c.Deploy("Counter", "b")
	ctx := context.Background()
	_, _ = c.Invoke(ctx, a.ID, "inc", wire.Args("by", int64(10)))
	out, _ := c.Invoke(ctx, b.ID, "inc", wire.Args("by", int64(1)))
	total, _ := wire.GetArg(out, "total")
	if total.(int64) != 1 {
		t.Fatalf("instance state shared: %v", total)
	}
}

func TestDeployErrors(t *testing.T) {
	c := newC(t)
	if _, _, err := c.Deploy("Nope", ""); !errors.Is(err, ErrNoFactory) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := c.Deploy("Counter", "dup"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Deploy("Counter", "dup"); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("err = %v", err)
	}
	c.RegisterFactory("Broken", func() (Component, error) {
		return nil, errors.New("boom")
	})
	if _, _, err := c.Deploy("Broken", "x"); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
	// Failed deployment must release the reserved ID.
	c.RegisterFactory("Broken", counterFactory())
	if _, _, err := c.Deploy("Broken", "x"); err != nil {
		t.Fatalf("id not released: %v", err)
	}
}

func TestUndeploy(t *testing.T) {
	c := newC(t)
	detached := false
	c.RegisterFactory("D", FuncFactory(func() *FuncComponent {
		return &FuncComponent{
			Spec:     wsdl.ServiceSpec{Name: "D", Operations: []wsdl.OpSpec{{Name: "noop"}}},
			Handlers: map[string]OpFunc{"noop": func(context.Context, []wire.Arg) ([]wire.Arg, error) { return nil, nil }},
			OnDetach: func() error { detached = true; return nil },
		}
	}))
	inst, _, err := c.Deploy("D", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Undeploy(inst.ID); err != nil {
		t.Fatal(err)
	}
	if !detached {
		t.Fatal("OnDetach not called")
	}
	if _, ok := c.Instance(inst.ID); ok {
		t.Fatal("instance still present")
	}
	if err := c.Undeploy(inst.ID); !errors.Is(err, ErrNoInstance) {
		t.Fatalf("err = %v", err)
	}
}

func TestAttachGivesHostAccess(t *testing.T) {
	// Figure 2 behaviour: a component leverages co-located services.
	c := newC(t)
	if _, _, err := c.Deploy("Counter", "shared"); err != nil {
		t.Fatal(err)
	}
	var host *Container
	c.RegisterFactory("Leech", FuncFactory(func() *FuncComponent {
		f := &FuncComponent{
			Spec: wsdl.ServiceSpec{Name: "Leech", Operations: []wsdl.OpSpec{
				{Name: "delegate", Output: []wsdl.ParamSpec{{Name: "total", Type: wire.KindInt64}}},
			}},
		}
		f.OnAttach = func(h *Container) error { host = h; return nil }
		f.Handlers = map[string]OpFunc{
			"delegate": func(ctx context.Context, _ []wire.Arg) ([]wire.Arg, error) {
				return host.Invoke(ctx, "shared", "inc", wire.Args("by", int64(5)))
			},
		}
		return f
	}))
	inst, _, err := c.Deploy("Leech", "")
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Invoke(context.Background(), inst.ID, "delegate", nil)
	if err != nil {
		t.Fatal(err)
	}
	total, _ := wire.GetArg(out, "total")
	if total.(int64) != 5 {
		t.Fatalf("delegated total = %v", total)
	}
}

func TestInvokeErrors(t *testing.T) {
	c := newC(t)
	ctx := context.Background()
	if _, err := c.Invoke(ctx, "ghost", "inc", nil); !errors.Is(err, ErrNoInstance) {
		t.Fatalf("err = %v", err)
	}
	inst, _, _ := c.Deploy("Counter", "")
	if _, err := c.Invoke(ctx, inst.ID, "nosuch", nil); !errors.Is(err, ErrNoSuchMethod) {
		t.Fatalf("err = %v", err)
	}
}

func TestStopStart(t *testing.T) {
	c := newC(t)
	inst, _, _ := c.Deploy("Counter", "")
	if err := c.Stop(inst.ID); err != nil {
		t.Fatal(err)
	}
	if inst.Status() != Stopped {
		t.Fatal("status should be Stopped")
	}
	if _, err := c.Invoke(context.Background(), inst.ID, "inc", wire.Args("by", int64(1))); !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v", err)
	}
	if err := c.Start(inst.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(context.Background(), inst.ID, "inc", wire.Args("by", int64(1))); err != nil {
		t.Fatal(err)
	}
	if err := c.Stop("ghost"); !errors.Is(err, ErrNoInstance) {
		t.Fatalf("err = %v", err)
	}
}

func TestLocalLookup(t *testing.T) {
	c := newC(t)
	_, _, _ = c.Deploy("Counter", "c1")
	_, _, _ = c.Deploy("Counter", "c2")
	_, _, _ = c.Deploy("MatMul", "m1")
	if got := c.FindByClass("Counter"); len(got) != 2 {
		t.Fatalf("by class = %d", len(got))
	}
	if got := c.FindByOperation("getResult"); len(got) != 1 || got[0].ID != "m1" {
		t.Fatalf("by op = %v", got)
	}
	all := c.Instances()
	if len(all) != 3 || all[0].ID != "c1" {
		t.Fatalf("instances = %v", all)
	}
	classes := c.Classes()
	if len(classes) != 2 || classes[0] != "Counter" {
		t.Fatalf("classes = %v", classes)
	}
}

func TestWSDLGeneration(t *testing.T) {
	c := newC(t)
	inst, _, _ := c.Deploy("MatMul", "m1")
	defs, err := c.WSDLFor(inst.ID)
	if err != nil {
		t.Fatal(err)
	}
	// MatMul is numeric-only: all three bindings advertised.
	if len(defs.Bindings) != 3 {
		t.Fatalf("bindings = %d", len(defs.Bindings))
	}
	jb := defs.Binding("MatMulJavaBinding")
	if jb == nil || jb.Instance != "m1" {
		t.Fatalf("java binding must pin the instance: %+v", jb)
	}
	ports := defs.Services[0].Ports
	var soapAddr string
	for _, p := range ports {
		if strings.Contains(p.Binding, "SOAP") {
			soapAddr = p.Address
		}
	}
	if soapAddr != "http://host:8080/services/m1" {
		t.Fatalf("soap address = %q", soapAddr)
	}

	// Counter has int64 params (numeric) so it also gets XDR; a string
	// service must not.
	c.RegisterFactory("Str", FuncFactory(func() *FuncComponent {
		return &FuncComponent{
			Spec: wsdl.WSTimeSpec(),
			Handlers: map[string]OpFunc{"getTime": func(context.Context, []wire.Arg) ([]wire.Arg, error) {
				return wire.Args("time", "now"), nil
			}},
		}
	}))
	s, _, _ := c.Deploy("Str", "")
	sdefs, err := c.WSDLFor(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range sdefs.Bindings {
		if b.Kind == wsdl.BindXDR {
			t.Fatal("string service must not advertise XDR")
		}
	}
}

func TestExposeUnexpose(t *testing.T) {
	c := newC(t)
	reg := registry.New()
	inst, _, _ := c.Deploy("MatMul", "m1")
	if inst.Exposure != Private {
		t.Fatal("instances must start private")
	}
	key, err := c.Expose(inst.ID, reg)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Exposure != Public {
		t.Fatal("exposure not updated")
	}
	if reg.Len() != 1 {
		t.Fatal("not published")
	}
	e, _ := reg.Get(key)
	if e.Business != "node1" || e.Name != "MatMul" {
		t.Fatalf("entry = %+v", e)
	}
	if len(e.TModels) == 0 {
		t.Fatal("tModels missing")
	}
	if err := c.Unexpose(inst.ID, reg); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 0 || inst.Exposure != Private {
		t.Fatal("unexpose incomplete")
	}
	if err := c.Unexpose(inst.ID, reg); !errors.Is(err, ErrNotExposed) {
		t.Fatalf("err = %v", err)
	}
}

func TestUndeployUnpublishes(t *testing.T) {
	c := newC(t)
	reg := registry.New()
	inst, _, _ := c.Deploy("MatMul", "")
	if _, err := c.Expose(inst.ID, reg); err != nil {
		t.Fatal(err)
	}
	if err := c.Undeploy(inst.ID); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 0 {
		t.Fatal("undeploy must withdraw registrations")
	}
}

func TestDeployPolicies(t *testing.T) {
	if Heavyweight.Cost() <= Lightweight.Cost() {
		t.Fatal("heavyweight must cost more than lightweight")
	}
	c := New(Config{Name: "heavy", Policy: Heavyweight})
	c.RegisterFactory("Counter", counterFactory())
	_, cost, err := c.Deploy("Counter", "")
	if err != nil {
		t.Fatal(err)
	}
	if cost != Heavyweight.Cost() {
		t.Fatalf("cost = %v", cost)
	}
	// Sleeping policy physically delays.
	cs := New(Config{Name: "s", Policy: DeployPolicy{Name: "sleepy", PerServiceCost: 5 * time.Millisecond, Sleep: true}})
	cs.RegisterFactory("Counter", counterFactory())
	start := time.Now()
	_, _, _ = cs.Deploy("Counter", "")
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("sleeping policy did not sleep")
	}
}

func TestConcurrentDeployInvoke(t *testing.T) {
	c := newC(t)
	var wg sync.WaitGroup
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("w%d", i)
			if _, _, err := c.Deploy("Counter", id); err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 50; j++ {
				if _, err := c.Invoke(ctx, id, "inc", wire.Args("by", int64(1))); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, in := range c.Instances() {
		if in.Invocations() != 50 {
			t.Fatalf("instance %s: %d invocations", in.ID, in.Invocations())
		}
	}
}

func TestExposureString(t *testing.T) {
	if Private.String() != "private" || Public.String() != "public" {
		t.Fatal("Exposure.String broken")
	}
}

func TestComponentAccessor(t *testing.T) {
	c := newC(t)
	inst, _, _ := c.Deploy("Counter", "")
	if inst.Component() == nil {
		t.Fatal("Component() should expose the implementation")
	}
	if inst.Spec().Name != "Counter" {
		t.Fatal("Spec() wrong")
	}
}
