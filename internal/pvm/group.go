package pvm

import (
	"fmt"
	"sort"

	"harness2/internal/wire"
)

// Group support: the PVM group-server functionality (pvm_joingroup,
// pvm_gettid, pvm_gsize, pvm_lvgroup, pvm_bcast). The router doubles as
// the group server, matching PVM 3's pvmgs process; group membership is
// ordered by join, and each member holds a stable instance number until
// it leaves (numbers of departed members are reused, per PVM semantics).

type group struct {
	// members maps instance number -> TID; holes are reusable.
	members map[int]TID
	byTID   map[TID]int
}

// JoinGroup adds tid to the named group and returns its instance number.
// Joining a group twice returns the existing number.
func (r *Router) JoinGroup(name string, tid TID) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("pvm: group name must be non-empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tidHome[tid]; !ok {
		return 0, fmt.Errorf("%w: tid %d", ErrNoTask, tid)
	}
	g, ok := r.groups[name]
	if !ok {
		g = &group{members: make(map[int]TID), byTID: make(map[TID]int)}
		r.groups[name] = g
	}
	if num, ok := g.byTID[tid]; ok {
		return num, nil
	}
	// Lowest free instance number, per PVM's reuse rule.
	num := 0
	for {
		if _, used := g.members[num]; !used {
			break
		}
		num++
	}
	g.members[num] = tid
	g.byTID[tid] = num
	return num, nil
}

// LeaveGroup removes tid from the group.
func (r *Router) LeaveGroup(name string, tid TID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.groups[name]
	if !ok {
		return fmt.Errorf("pvm: no group %q", name)
	}
	num, ok := g.byTID[tid]
	if !ok {
		return fmt.Errorf("pvm: tid %d not in group %q", tid, name)
	}
	delete(g.byTID, tid)
	delete(g.members, num)
	if len(g.members) == 0 {
		delete(r.groups, name)
	}
	return nil
}

// GroupSize returns the group's current member count — pvm_gsize.
func (r *Router) GroupSize(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.groups[name]; ok {
		return len(g.members)
	}
	return 0
}

// GroupTID resolves a group instance number to its TID — pvm_gettid.
func (r *Router) GroupTID(name string, num int) (TID, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.groups[name]
	if !ok {
		return 0, fmt.Errorf("pvm: no group %q", name)
	}
	tid, ok := g.members[num]
	if !ok {
		return 0, fmt.Errorf("pvm: group %q has no instance %d", name, num)
	}
	return tid, nil
}

// GroupMembers returns the group's TIDs ordered by instance number.
func (r *Router) GroupMembers(name string) []TID {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.groups[name]
	if !ok {
		return nil
	}
	nums := make([]int, 0, len(g.members))
	for n := range g.members {
		nums = append(nums, n)
	}
	sort.Ints(nums)
	out := make([]TID, len(nums))
	for i, n := range nums {
		out[i] = g.members[n]
	}
	return out
}

// groupBarriers tracks per-group barrier state keyed by group name.
// Reuses the router's generic barrier machinery with a reserved prefix.
var groupBarrierPrefix = "\x00group:"

// GroupBarrier blocks until count members of the named group have
// entered — pvm_barrier(group, count).
func (r *Router) GroupBarrier(name string, count int) error {
	return r.Barrier(groupBarrierPrefix+name, count)
}

// Task-level group surface.

// JoinGroup enrolls the task in a group and returns its instance number.
func (t *Task) JoinGroup(name string) (int, error) {
	return t.daemon.router.JoinGroup(name, t.TID)
}

// LeaveGroup withdraws the task from a group.
func (t *Task) LeaveGroup(name string) error {
	return t.daemon.router.LeaveGroup(name, t.TID)
}

// GroupSize returns a group's member count.
func (t *Task) GroupSize(name string) int {
	return t.daemon.router.GroupSize(name)
}

// GroupBarrier joins the group barrier with the given party count.
func (t *Task) GroupBarrier(name string, count int) error {
	return t.daemon.router.GroupBarrier(name, count)
}

// BcastGroup sends a tagged message to every group member except the
// sender — pvm_bcast.
func (t *Task) BcastGroup(name string, tag int32, body []wire.Arg) error {
	members := t.daemon.router.GroupMembers(name)
	if len(members) == 0 {
		return fmt.Errorf("pvm: no group %q", name)
	}
	return t.Mcast(members, tag, body)
}
