// Package pvm implements the Harness PVM emulation of Figure 2: an hpvmd
// plugin per kernel that "emulates the PVM daemon on each host, but
// leverages process spawning, message transport, general event management,
// and table lookup from other plugins — both within the same address space
// (same Harness kernel) as well as in remote Harness kernels".
//
// The emulation provides the classic PVM programming surface — spawn,
// typed tagged message passing with pack/unpack, multicast, barriers —
// implemented on top of the kernel plugin substrate: the events plugin
// announces task lifecycle, the namesvc plugin holds the local task table,
// and the Router is the inter-kernel message transport whose traffic can
// be charged to a simnet fabric for the E7 overhead experiment.
package pvm

import (
	"errors"
	"fmt"
	"sync"

	"harness2/internal/simnet"
	"harness2/internal/wire"
)

// TID is a PVM task identifier, globally unique within a router domain.
// Like PVM's, it encodes the host: the upper bits carry the daemon index.
type TID int32

// tidHostShift positions the daemon index inside a TID.
const tidHostShift = 18

// Host extracts the daemon index encoded in the TID.
func (t TID) Host() int { return int(t >> tidHostShift) }

// Message is one PVM message: tagged, typed values from Src to Dst.
type Message struct {
	Src  TID
	Dst  TID
	Tag  int32
	Body []wire.Arg
}

// ByteSize approximates the message's wire footprint.
func (m Message) ByteSize() int {
	n := 16
	for _, a := range m.Body {
		n += len(a.Name) + wire.ByteSize(a.Value) + 8
	}
	return n
}

// Errors returned by the message layer.
var (
	ErrNoTask     = errors.New("pvm: no such task")
	ErrNoDaemon   = errors.New("pvm: no daemon for host")
	ErrTaskExited = errors.New("pvm: task has exited")
)

// Router is the inter-kernel message transport shared by the hpvmd
// daemons of one virtual machine. It assigns daemon indices and TIDs,
// maintains the global TID→daemon map, routes messages, and hosts
// barriers. When a simnet fabric is attached, inter-daemon traffic is
// charged to it.
type Router struct {
	net *simnet.Network

	mu       sync.Mutex
	daemons  map[string]*Daemon // node name -> daemon
	order    []string           // daemon registration order (host index)
	tidHome  map[TID]string     // task -> node name
	nextSeq  map[int]int32      // per-host TID sequence
	barriers map[string]*barrier
	groups   map[string]*group
}

// NewRouter creates an empty transport domain. net may be nil (no
// accounting).
func NewRouter(net *simnet.Network) *Router {
	return &Router{
		net:      net,
		daemons:  make(map[string]*Daemon),
		tidHome:  make(map[TID]string),
		nextSeq:  make(map[int]int32),
		barriers: make(map[string]*barrier),
		groups:   make(map[string]*group),
	}
}

// register admits a daemon and returns its host index.
func (r *Router) register(d *Daemon) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.daemons[d.node]; ok {
		return 0, fmt.Errorf("pvm: daemon for node %q already registered", d.node)
	}
	r.daemons[d.node] = d
	r.order = append(r.order, d.node)
	if r.net != nil {
		r.net.AddNode(d.node)
	}
	return len(r.order) - 1, nil
}

// unregister withdraws a daemon and forgets its tasks.
func (r *Router) unregister(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.daemons, node)
	for tid, home := range r.tidHome {
		if home == node {
			delete(r.tidHome, tid)
		}
	}
}

// allocTID mints a fresh TID for a task on host hostIdx at node.
func (r *Router) allocTID(hostIdx int, node string) TID {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextSeq[hostIdx]++
	tid := TID(int32(hostIdx)<<tidHostShift | r.nextSeq[hostIdx])
	r.tidHome[tid] = node
	return tid
}

func (r *Router) forget(tid TID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.tidHome, tid)
}

// home resolves a TID's hosting node.
func (r *Router) home(tid TID) (string, *Daemon, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	node, ok := r.tidHome[tid]
	if !ok {
		return "", nil, false
	}
	d, ok := r.daemons[node]
	return node, d, ok
}

// Daemons lists registered node names in registration order.
func (r *Router) Daemons() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.daemons))
	for _, n := range r.order {
		if _, live := r.daemons[n]; live {
			out = append(out, n)
		}
	}
	return out
}

// Tasks returns every live TID, unordered.
func (r *Router) Tasks() []TID {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TID, 0, len(r.tidHome))
	for tid := range r.tidHome {
		out = append(out, tid)
	}
	return out
}

// SpawnOn starts tasks on a specific daemon by node name — pvm_spawn with
// a where argument. The task function must be registered on that daemon.
func (r *Router) SpawnOn(node, name string, args []string, n int) ([]TID, error) {
	r.mu.Lock()
	d, ok := r.daemons[node]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoDaemon, node)
	}
	return d.Spawn(name, args, n)
}

// SpawnRoundRobin distributes n tasks across all registered daemons in
// registration order — pvm_spawn with PvmTaskDefault placement. Every
// daemon must have the task function registered.
func (r *Router) SpawnRoundRobin(name string, args []string, n int) ([]TID, error) {
	nodes := r.Daemons()
	if len(nodes) == 0 {
		return nil, fmt.Errorf("%w: no daemons registered", ErrNoDaemon)
	}
	out := make([]TID, 0, n)
	for i := 0; i < n; i++ {
		tids, err := r.SpawnOn(nodes[i%len(nodes)], name, args, 1)
		if err != nil {
			return out, err
		}
		out = append(out, tids...)
	}
	return out, nil
}

// Route delivers msg to its destination task's mailbox, charging the
// fabric for inter-node hops.
func (r *Router) Route(fromNode string, msg Message) error {
	node, d, ok := r.home(msg.Dst)
	if !ok {
		return fmt.Errorf("%w: tid %d", ErrNoTask, msg.Dst)
	}
	if r.net != nil && fromNode != node {
		if _, err := r.net.Send(fromNode, node, msg.ByteSize()); err != nil {
			return fmt.Errorf("pvm: route to %s: %w", node, err)
		}
	}
	return d.deliver(msg)
}

// barrier is a named rendezvous of a fixed party count.
type barrier struct {
	need    int
	arrived int
	release chan struct{}
}

// Barrier blocks the caller until count participants have entered the
// barrier with the same name, then releases them all. Mismatched counts
// for the same in-flight barrier are an error.
func (r *Router) Barrier(name string, count int) error {
	if count < 1 {
		return fmt.Errorf("pvm: barrier count must be positive")
	}
	r.mu.Lock()
	b, ok := r.barriers[name]
	if !ok {
		b = &barrier{need: count, release: make(chan struct{})}
		r.barriers[name] = b
	}
	if b.need != count {
		r.mu.Unlock()
		return fmt.Errorf("pvm: barrier %q count mismatch (%d vs %d)", name, count, b.need)
	}
	b.arrived++
	if b.arrived == b.need {
		delete(r.barriers, name)
		close(b.release)
		r.mu.Unlock()
		return nil
	}
	r.mu.Unlock()
	<-b.release
	return nil
}
