package pvm

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"harness2/internal/container"
	"harness2/internal/events"
	"harness2/internal/kernel"
	"harness2/internal/namesvc"
	"harness2/internal/simnet"
	"harness2/internal/wire"
)

// newVM builds n kernels each loading events, namesvc and hpvmd plugins
// over one router — a miniature Harness virtual machine (Figure 1).
func newVM(t *testing.T, n int, net *simnet.Network) (*Router, []*Daemon) {
	t.Helper()
	router := NewRouter(net)
	daemons := make([]*Daemon, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("host%d", i)
		k := kernel.New(name, container.Config{})
		k.RegisterPlugin(events.PluginClass, events.Factory())
		k.RegisterPlugin(namesvc.PluginClass, namesvc.Factory())
		k.RegisterPlugin(PluginClass, Factory(name, router),
			events.PluginClass, namesvc.PluginClass)
		if err := k.Load(PluginClass); err != nil {
			t.Fatal(err)
		}
		comp, _ := k.Plugin(PluginClass)
		daemons[i] = comp.(*Daemon)
	}
	return router, daemons
}

func TestSpawnAndWait(t *testing.T) {
	_, ds := newVM(t, 1, nil)
	d := ds[0]
	ran := make(chan TID, 3)
	d.RegisterTaskFunc("worker", func(ctx context.Context, self *Task, args []string) error {
		ran <- self.TID
		return nil
	})
	tids, err := d.Spawn("worker", nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tids) != 3 {
		t.Fatalf("tids = %v", tids)
	}
	seen := map[TID]bool{}
	for i := 0; i < 3; i++ {
		seen[<-ran] = true
	}
	if len(seen) != 3 {
		t.Fatal("TIDs not unique")
	}
	for _, tid := range tids {
		if tid.Host() != 0 {
			t.Fatalf("tid %d host = %d", tid, tid.Host())
		}
	}
}

func TestSpawnErrors(t *testing.T) {
	_, ds := newVM(t, 1, nil)
	if _, err := ds[0].Spawn("ghost", nil, 1); err == nil {
		t.Fatal("unknown task function should fail")
	}
	ds[0].RegisterTaskFunc("w", func(context.Context, *Task, []string) error { return nil })
	if _, err := ds[0].Spawn("w", nil, 0); err == nil {
		t.Fatal("zero count should fail")
	}
}

func TestLocalSendRecv(t *testing.T) {
	_, ds := newVM(t, 1, nil)
	d := ds[0]
	got := make(chan float64, 1)
	d.RegisterTaskFunc("recv", func(ctx context.Context, self *Task, args []string) error {
		m, err := self.Recv(AnySrc, 7)
		if err != nil {
			return err
		}
		v, err := UpkDouble(m, "x")
		if err != nil {
			return err
		}
		got <- v
		return nil
	})
	d.RegisterTaskFunc("send", func(ctx context.Context, self *Task, args []string) error {
		dst, _ := strconv.Atoi(args[0])
		return self.Send(TID(dst), 7, []wire.Arg{PkDouble("x", 3.5)})
	})
	rtids, err := d.Spawn("recv", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Spawn("send", []string{fmt.Sprint(int32(rtids[0]))}, 1); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != 3.5 {
			t.Fatalf("v = %v", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("receive timed out")
	}
}

func TestCrossDaemonMessaging(t *testing.T) {
	net := simnet.New(simnet.LAN)
	_, ds := newVM(t, 2, net)
	pong := make(chan Message, 1)
	ds[0].RegisterTaskFunc("pingpong", func(ctx context.Context, self *Task, args []string) error {
		m, err := self.Recv(AnySrc, AnyTag)
		if err != nil {
			return err
		}
		return self.Send(m.Src, m.Tag+1, m.Body)
	})
	ds[1].RegisterTaskFunc("driver", func(ctx context.Context, self *Task, args []string) error {
		dst, _ := strconv.Atoi(args[0])
		if err := self.Send(TID(dst), 10, []wire.Arg{PkString("msg", "hello")}); err != nil {
			return err
		}
		m, err := self.Recv(TID(dst), 11)
		if err != nil {
			return err
		}
		pong <- m
		return nil
	})
	serverTids, err := ds[0].Spawn("pingpong", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds[1].Spawn("driver", []string{fmt.Sprint(int32(serverTids[0]))}, 1); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-pong:
		s, _ := UpkString(m, "msg")
		if s != "hello" {
			t.Fatalf("msg = %q", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pong timed out")
	}
	// Cross-host traffic was charged to the fabric (request + reply).
	if st := net.Stats(); st.Messages != 2 {
		t.Fatalf("fabric messages = %d, want 2", st.Messages)
	}
}

func TestSelectiveRecvBuffersNonMatching(t *testing.T) {
	_, ds := newVM(t, 1, nil)
	d := ds[0]
	results := make(chan []int32, 1)
	d.RegisterTaskFunc("selective", func(ctx context.Context, self *Task, args []string) error {
		// Wait for tag 2 first even though tag 1 arrives first.
		m2, err := self.Recv(AnySrc, 2)
		if err != nil {
			return err
		}
		m1, err := self.Recv(AnySrc, 1)
		if err != nil {
			return err
		}
		a, _ := UpkInt(m1, "v")
		b, _ := UpkInt(m2, "v")
		results <- []int32{a, b}
		return nil
	})
	d.RegisterTaskFunc("producer", func(ctx context.Context, self *Task, args []string) error {
		dst, _ := strconv.Atoi(args[0])
		if err := self.Send(TID(dst), 1, []wire.Arg{PkInt("v", 100)}); err != nil {
			return err
		}
		return self.Send(TID(dst), 2, []wire.Arg{PkInt("v", 200)})
	})
	rt, _ := d.Spawn("selective", nil, 1)
	if _, err := d.Spawn("producer", []string{fmt.Sprint(int32(rt[0]))}, 1); err != nil {
		t.Fatal(err)
	}
	select {
	case vs := <-results:
		if vs[0] != 100 || vs[1] != 200 {
			t.Fatalf("vs = %v", vs)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("selective recv timed out")
	}
}

func TestRecvTimeoutAndProbe(t *testing.T) {
	_, ds := newVM(t, 1, nil)
	d := ds[0]
	done := make(chan error, 1)
	d.RegisterTaskFunc("t", func(ctx context.Context, self *Task, args []string) error {
		if self.Probe(AnySrc, AnyTag) {
			return fmt.Errorf("probe should be empty")
		}
		_, err := self.RecvTimeout(AnySrc, AnyTag, 10*time.Millisecond)
		done <- err
		return nil
	})
	if _, err := d.Spawn("t", nil, 1); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != ErrTimeout {
		t.Fatalf("err = %v", err)
	}
}

func TestMcastAndBarrier(t *testing.T) {
	net := simnet.New(simnet.LAN)
	_, ds := newVM(t, 3, net)
	const parties = 3
	var counter sync.Map
	for i, d := range ds {
		d.RegisterTaskFunc("member", func(ctx context.Context, self *Task, args []string) error {
			if err := self.Barrier("start", parties+1); err != nil {
				return err
			}
			m, err := self.Recv(AnySrc, 42)
			if err != nil {
				return err
			}
			v, _ := UpkInt(m, "round")
			counter.Store(self.TID, v)
			return self.Barrier("end", parties+1)
		})
		_ = i
	}
	var members []TID
	for _, d := range ds {
		tids, err := d.Spawn("member", nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, tids...)
	}
	ds[0].RegisterTaskFunc("root", func(ctx context.Context, self *Task, args []string) error {
		if err := self.Barrier("start", parties+1); err != nil {
			return err
		}
		if err := self.Mcast(members, 42, []wire.Arg{PkInt("round", 9)}); err != nil {
			return err
		}
		return self.Barrier("end", parties+1)
	})
	roots, err := ds[0].Spawn("root", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	rt, _ := ds[0].Task(roots[0])
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	n := 0
	counter.Range(func(_, v any) bool {
		if v.(int32) != 9 {
			t.Errorf("round = %v", v)
		}
		n++
		return true
	})
	if n != parties {
		t.Fatalf("members reached = %d", n)
	}
}

func TestBarrierCountMismatch(t *testing.T) {
	r := NewRouter(nil)
	errs := make(chan error, 1)
	go func() { errs <- r.Barrier("b", 2) }()
	time.Sleep(5 * time.Millisecond)
	if err := r.Barrier("b", 3); err == nil {
		t.Fatal("count mismatch should fail")
	}
	if err := r.Barrier("b", 2); err != nil {
		t.Fatal(err)
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if err := r.Barrier("x", 0); err == nil {
		t.Fatal("zero count should fail")
	}
}

func TestTaskLifecycleEventsAndTable(t *testing.T) {
	_, ds := newVM(t, 1, nil)
	d := ds[0]
	spawnSub := d.events.Subscribe(TopicSpawn, 4)
	exitSub := d.events.Subscribe(TopicExit, 4)
	release := make(chan struct{})
	d.RegisterTaskFunc("w", func(ctx context.Context, self *Task, args []string) error {
		<-release
		return nil
	})
	tids, _ := d.Spawn("w", nil, 1)
	ev := <-spawnSub.C
	if tid, _ := wire.GetArg(ev.Payload, "tid"); tid.(int32) != int32(tids[0]) {
		t.Fatalf("spawn event tid = %v", tid)
	}
	// Task table holds the live task.
	if v, ok := d.names.Get(taskTable, fmt.Sprintf("%d", tids[0])); !ok || v.(string) != "w" {
		t.Fatalf("task table = %v %v", v, ok)
	}
	close(release)
	tk, ok := d.Task(tids[0])
	if ok {
		_ = tk.Wait()
	}
	ev = <-exitSub.C
	if status, _ := wire.GetArg(ev.Payload, "status"); status.(string) != "ok" {
		t.Fatalf("exit status = %v", status)
	}
	// Table row removed after exit.
	deadline := time.Now().Add(time.Second)
	for {
		if _, ok := d.names.Get(taskTable, fmt.Sprintf("%d", tids[0])); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("task table row not removed")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestKillTask(t *testing.T) {
	_, ds := newVM(t, 1, nil)
	d := ds[0]
	d.RegisterTaskFunc("forever", func(ctx context.Context, self *Task, args []string) error {
		_, err := self.Recv(AnySrc, AnyTag) // blocks until cancelled
		return err
	})
	tids, _ := d.Spawn("forever", nil, 1)
	tk, _ := d.Task(tids[0])
	out, err := d.Invoke(context.Background(), "kill", wire.Args("tid", int32(tids[0])))
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := wire.GetArg(out, "ok"); !ok.(bool) {
		t.Fatal("kill failed")
	}
	if err := tk.Wait(); err == nil {
		t.Fatal("killed task should report an error")
	}
	if _, ok := d.Task(tids[0]); ok {
		t.Fatal("killed task still listed")
	}
}

func TestSendToDeadTask(t *testing.T) {
	_, ds := newVM(t, 1, nil)
	d := ds[0]
	d.RegisterTaskFunc("quick", func(context.Context, *Task, []string) error { return nil })
	d.RegisterTaskFunc("sender", func(ctx context.Context, self *Task, args []string) error {
		dst, _ := strconv.Atoi(args[0])
		return self.Send(TID(dst), 1, nil)
	})
	tids, _ := d.Spawn("quick", nil, 1)
	tk, _ := d.Task(tids[0])
	if tk != nil {
		_ = tk.Wait()
	}
	errs := make(chan error, 1)
	d.RegisterTaskFunc("s2", func(ctx context.Context, self *Task, args []string) error {
		errs <- self.Send(tids[0], 1, nil)
		return nil
	})
	if _, err := d.Spawn("s2", nil, 1); err != nil {
		t.Fatal(err)
	}
	if err := <-errs; err == nil {
		t.Fatal("send to dead task should fail")
	}
}

func TestDaemonComponentSurface(t *testing.T) {
	_, ds := newVM(t, 2, nil)
	d := ds[0]
	d.RegisterTaskFunc("w", func(ctx context.Context, self *Task, args []string) error {
		<-self.Context().Done()
		return nil
	})
	ctx := context.Background()
	out, err := d.Invoke(ctx, "spawn", wire.Args("task", "w", "count", int32(2)))
	if err != nil {
		t.Fatal(err)
	}
	tids, _ := wire.GetArg(out, "tids")
	if len(tids.([]int32)) != 2 {
		t.Fatalf("tids = %v", tids)
	}
	out, err = d.Invoke(ctx, "tasks", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := wire.GetArg(out, "tids"); len(got.([]int32)) != 2 {
		t.Fatalf("tasks = %v", got)
	}
	out, err = d.Invoke(ctx, "config", nil)
	if err != nil {
		t.Fatal(err)
	}
	hosts, _ := wire.GetArg(out, "hosts")
	if len(hosts.([]string)) != 2 {
		t.Fatalf("hosts = %v", hosts)
	}
	if _, err := d.Invoke(ctx, "spawn", wire.Args("task", "ghost")); err == nil {
		t.Fatal("spawn of unknown task should fail")
	}
	if _, err := d.Invoke(ctx, "kill", wire.Args("tid", int32(99999))); err == nil {
		t.Fatal("kill of unknown tid should fail")
	}
	if _, err := d.Invoke(ctx, "bogus", nil); err == nil {
		t.Fatal("unknown op should fail")
	}
	for _, tidv := range tids.([]int32) {
		if _, err := d.Invoke(ctx, "kill", wire.Args("tid", tidv)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDetachKillsTasksAndUnregisters(t *testing.T) {
	router, _ := newVM(t, 1, nil)
	name := "hostX"
	k := kernel.New(name, container.Config{})
	k.RegisterPlugin(events.PluginClass, events.Factory())
	k.RegisterPlugin(namesvc.PluginClass, namesvc.Factory())
	k.RegisterPlugin(PluginClass, Factory(name, router), events.PluginClass, namesvc.PluginClass)
	if err := k.Load(PluginClass); err != nil {
		t.Fatal(err)
	}
	comp, _ := k.Plugin(PluginClass)
	d := comp.(*Daemon)
	d.RegisterTaskFunc("f", func(ctx context.Context, self *Task, args []string) error {
		<-ctx.Done()
		return ctx.Err()
	})
	tids, _ := d.Spawn("f", nil, 2)
	if err := k.Unload(PluginClass); err != nil {
		t.Fatal(err)
	}
	for _, tid := range tids {
		if _, _, ok := router.home(tid); ok {
			t.Fatal("task survived daemon unload")
		}
	}
	hosts := router.Daemons()
	for _, h := range hosts {
		if h == name {
			t.Fatal("daemon still registered after unload")
		}
	}
}

func TestRouterDuplicateDaemon(t *testing.T) {
	r := NewRouter(nil)
	d1 := NewDaemon("same", r)
	if _, err := r.register(d1); err != nil {
		t.Fatal(err)
	}
	d2 := NewDaemon("same", r)
	if _, err := r.register(d2); err == nil {
		t.Fatal("duplicate daemon registration should fail")
	}
}

func TestFormatTIDs(t *testing.T) {
	s := FormatTIDs([]TID{1, 2})
	if s != "t1,t2" {
		t.Fatalf("s = %q", s)
	}
}

func TestRingApplication(t *testing.T) {
	// A classic PVM ring: token passes around tasks across 4 daemons.
	net := simnet.New(simnet.LAN)
	_, ds := newVM(t, 4, net)
	const rounds = 3
	result := make(chan int32, 1)
	for _, d := range ds {
		d.RegisterTaskFunc("ring", func(ctx context.Context, self *Task, args []string) error {
			// The coordinator message (tag 0) wires the ring topology.
			setup, err := self.Recv(AnySrc, 0)
			if err != nil {
				return err
			}
			next, _ := UpkInt(setup, "next")
			isRoot, _ := UpkInt(setup, "root")
			if isRoot == 1 {
				if err := self.Send(TID(next), 1, []wire.Arg{PkInt("hops", 0)}); err != nil {
					return err
				}
			}
			for {
				m, err := self.Recv(AnySrc, AnyTag)
				if err != nil {
					return err
				}
				if m.Tag == 2 { // shutdown token
					if isRoot != 1 {
						_ = self.Send(TID(next), 2, nil)
					}
					return nil
				}
				hops, _ := UpkInt(m, "hops")
				if isRoot == 1 && hops >= int32(rounds*len(ds)) {
					result <- hops
					return self.Send(TID(next), 2, nil)
				}
				if err := self.Send(TID(next), 1, []wire.Arg{PkInt("hops", hops+1)}); err != nil {
					return err
				}
			}
		})
	}
	var tids []TID
	for _, d := range ds {
		got, err := d.Spawn("ring", nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		tids = append(tids, got...)
	}
	// Wire the ring.
	for i, d := range ds {
		next := tids[(i+1)%len(tids)]
		root := int32(0)
		if i == 0 {
			root = 1
		}
		tk, _ := d.Task(tids[i])
		_ = tk
		// Send setup via a transient task.
		d.RegisterTaskFunc("setup", func(ctx context.Context, self *Task, args []string) error {
			return self.Send(tids[i], 0, []wire.Arg{PkInt("next", int32(next)), PkInt("root", root)})
		})
		if _, err := d.Spawn("setup", nil, 1); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case hops := <-result:
		if hops < int32(rounds*len(ds)) {
			t.Fatalf("hops = %d", hops)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ring did not complete")
	}
}
