package pvm

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"harness2/internal/container"
	"harness2/internal/events"
	"harness2/internal/namesvc"
	"harness2/internal/wire"
	"harness2/internal/wsdl"
)

// PluginClass is the kernel class name of the hpvmd plugin.
const PluginClass = "harness.hpvmd"

// Topics the daemon publishes through the events plugin.
const (
	TopicSpawn = "pvm.task.spawn"
	TopicExit  = "pvm.task.exit"
)

// taskTable is the namesvc table holding the local task registry.
const taskTable = "pvm.tasks"

// TaskFunc is the body of a spawned PVM task.
type TaskFunc func(ctx context.Context, self *Task, args []string) error

// Daemon is the hpvmd plugin: one per kernel.
type Daemon struct {
	node    string
	router  *Router
	hostIdx int

	// Leveraged sibling plugins (Figure 2), resolved at Attach.
	events *events.Service
	names  *namesvc.Service

	mu    sync.Mutex
	funcs map[string]TaskFunc
	tasks map[TID]*Task
}

var (
	_ container.Component  = (*Daemon)(nil)
	_ container.Attachable = (*Daemon)(nil)
	_ container.Detachable = (*Daemon)(nil)
)

// NewDaemon creates an hpvmd for the given node name in router's domain.
// It must still be attached (deployed into a kernel) before use.
func NewDaemon(node string, router *Router) *Daemon {
	return &Daemon{
		node:   node,
		router: router,
		funcs:  make(map[string]TaskFunc),
		tasks:  make(map[TID]*Task),
	}
}

// Factory returns a kernel plugin factory. Register it with dependencies
// on the events and namesvc plugin classes:
//
//	k.RegisterPlugin(pvm.PluginClass, pvm.Factory(k.Name(), router),
//	    events.PluginClass, namesvc.PluginClass)
func Factory(node string, router *Router) container.Factory {
	return func() (container.Component, error) {
		return NewDaemon(node, router), nil
	}
}

// Attach implements container.Attachable: resolve the leveraged sibling
// plugins through the local container and register with the router.
func (d *Daemon) Attach(host *container.Container) error {
	if inst, ok := host.Instance(events.PluginClass); ok {
		if svc, ok := inst.Component().(*events.Service); ok {
			d.events = svc
		}
	}
	if inst, ok := host.Instance(namesvc.PluginClass); ok {
		if svc, ok := inst.Component().(*namesvc.Service); ok {
			d.names = svc
		}
	}
	idx, err := d.router.register(d)
	if err != nil {
		return err
	}
	d.hostIdx = idx
	return nil
}

// Detach implements container.Detachable.
func (d *Daemon) Detach() error {
	d.mu.Lock()
	tasks := make([]*Task, 0, len(d.tasks))
	for _, t := range d.tasks {
		tasks = append(tasks, t)
	}
	d.mu.Unlock()
	for _, t := range tasks {
		t.Kill()
	}
	d.router.unregister(d.node)
	return nil
}

// Node returns the daemon's node name.
func (d *Daemon) Node() string { return d.node }

// EventsPublished reports how many events the daemon's event plugin has
// published on topic (zero when no events plugin is attached).
func (d *Daemon) EventsPublished(topic string) int64 {
	if d.events == nil {
		return 0
	}
	return d.events.Published(topic)
}

// RegisterTaskFunc installs a named task body, the analogue of an
// executable in PVM's ep= path.
func (d *Daemon) RegisterTaskFunc(name string, fn TaskFunc) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.funcs[name] = fn
}

// Spawn starts n copies of the named task function, PVM's pvm_spawn. The
// new TIDs are returned; each task runs in its own goroutine.
func (d *Daemon) Spawn(name string, args []string, n int) ([]TID, error) {
	tasks, err := d.SpawnHandles(name, args, n)
	if err != nil {
		return nil, err
	}
	tids := make([]TID, len(tasks))
	for i, t := range tasks {
		tids[i] = t.TID
	}
	return tids, nil
}

// SpawnHandles is Spawn returning the task handles themselves, for
// callers (like the MPI emulation) that must Wait on tasks without racing
// task exit against a TID lookup.
func (d *Daemon) SpawnHandles(name string, args []string, n int) ([]*Task, error) {
	if n < 1 {
		return nil, fmt.Errorf("pvm: spawn count must be positive")
	}
	d.mu.Lock()
	fn, ok := d.funcs[name]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("pvm: no task function %q", name)
	}
	tasks := make([]*Task, n)
	for i := 0; i < n; i++ {
		tasks[i] = d.startTask(name, fn, args)
	}
	return tasks, nil
}

func (d *Daemon) startTask(name string, fn TaskFunc, args []string) *Task {
	tid := d.router.allocTID(d.hostIdx, d.node)
	ctx, cancel := context.WithCancel(context.Background())
	t := &Task{
		TID:    tid,
		Name:   name,
		daemon: d,
		ctx:    ctx,
		cancel: cancel,
		mbox:   make(chan Message, 256),
		done:   make(chan struct{}),
	}
	d.mu.Lock()
	d.tasks[tid] = t
	d.mu.Unlock()
	if d.names != nil {
		_ = d.names.Put(taskTable, fmt.Sprintf("%d", tid), name)
	}
	if d.events != nil {
		d.events.Publish(events.Event{Topic: TopicSpawn, Source: d.node,
			Payload: wire.Args("tid", int32(tid), "name", name)})
	}
	go func() {
		err := fn(ctx, t, args)
		t.finish(err)
	}()
	return t
}

// taskExited cleans up after a task reaches its terminal state.
func (d *Daemon) taskExited(t *Task, err error) {
	d.mu.Lock()
	delete(d.tasks, t.TID)
	d.mu.Unlock()
	d.router.forget(t.TID)
	if d.names != nil {
		d.names.Delete(taskTable, fmt.Sprintf("%d", t.TID))
	}
	if d.events != nil {
		status := "ok"
		if err != nil {
			status = err.Error()
		}
		d.events.Publish(events.Event{Topic: TopicExit, Source: d.node,
			Payload: wire.Args("tid", int32(t.TID), "status", status)})
	}
}

// deliver places msg in the destination task's mailbox.
func (d *Daemon) deliver(msg Message) error {
	d.mu.Lock()
	t, ok := d.tasks[msg.Dst]
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: tid %d on %s", ErrNoTask, msg.Dst, d.node)
	}
	select {
	case t.mbox <- msg:
		return nil
	case <-t.done:
		return fmt.Errorf("%w: tid %d", ErrTaskExited, msg.Dst)
	}
}

// Task returns a live local task.
func (d *Daemon) Task(tid TID) (*Task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t, ok := d.tasks[tid]
	return t, ok
}

// LocalTasks lists live local TIDs, sorted.
func (d *Daemon) LocalTasks() []TID {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]TID, 0, len(d.tasks))
	for tid := range d.tasks {
		out = append(out, tid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Describe implements container.Component.
func (d *Daemon) Describe() wsdl.ServiceSpec {
	return wsdl.ServiceSpec{
		Name: "HPvmd",
		Operations: []wsdl.OpSpec{
			{Name: "spawn", Input: []wsdl.ParamSpec{
				{Name: "task", Type: wire.KindString},
				{Name: "args", Type: wire.KindStringArray},
				{Name: "count", Type: wire.KindInt32},
			}, Output: []wsdl.ParamSpec{{Name: "tids", Type: wire.KindInt32Array}}},
			{Name: "tasks", Output: []wsdl.ParamSpec{{Name: "tids", Type: wire.KindInt32Array}}},
			{Name: "kill", Input: []wsdl.ParamSpec{{Name: "tid", Type: wire.KindInt32}},
				Output: []wsdl.ParamSpec{{Name: "ok", Type: wire.KindBool}}},
			{Name: "config", Output: []wsdl.ParamSpec{{Name: "hosts", Type: wire.KindStringArray}}},
		},
	}
}

// Invoke implements container.Component: the remotely-invocable daemon
// management surface (pvm_spawn / pvm_tasks / pvm_kill / pvm_config).
func (d *Daemon) Invoke(ctx context.Context, op string, args []wire.Arg) ([]wire.Arg, error) {
	switch op {
	case "spawn":
		taskV, _ := wire.GetArg(args, "task")
		task, _ := taskV.(string)
		count := int32(1)
		if cv, ok := wire.GetArg(args, "count"); ok {
			count, _ = cv.(int32)
		}
		var argv []string
		if av, ok := wire.GetArg(args, "args"); ok {
			argv, _ = av.([]string)
		}
		tids, err := d.Spawn(task, argv, int(count))
		if err != nil {
			return nil, err
		}
		out := make([]int32, len(tids))
		for i, t := range tids {
			out[i] = int32(t)
		}
		return wire.Args("tids", out), nil
	case "tasks":
		local := d.LocalTasks()
		out := make([]int32, len(local))
		for i, t := range local {
			out[i] = int32(t)
		}
		return wire.Args("tids", out), nil
	case "kill":
		tidV, _ := wire.GetArg(args, "tid")
		tid, _ := tidV.(int32)
		t, ok := d.Task(TID(tid))
		if !ok {
			return nil, fmt.Errorf("%w: tid %d", ErrNoTask, tid)
		}
		t.Kill()
		return wire.Args("ok", true), nil
	case "config":
		return wire.Args("hosts", d.router.Daemons()), nil
	}
	return nil, fmt.Errorf("pvm: no such operation %q", op)
}

// FormatTIDs renders TIDs for diagnostics.
func FormatTIDs(tids []TID) string {
	parts := make([]string, len(tids))
	for i, t := range tids {
		parts[i] = fmt.Sprintf("t%x", int32(t))
	}
	return strings.Join(parts, ",")
}
