package pvm

import (
	"context"
	"sync"
	"testing"
	"time"

	"harness2/internal/wire"
)

func TestGroupJoinLeaveNumbers(t *testing.T) {
	_, ds := newVM(t, 1, nil)
	d := ds[0]
	hold := make(chan struct{})
	d.RegisterTaskFunc("idle", func(ctx context.Context, self *Task, args []string) error {
		<-hold
		return nil
	})
	tids, err := d.Spawn("idle", nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer close(hold)
	r := d.router

	n0, err := r.JoinGroup("workers", tids[0])
	if err != nil || n0 != 0 {
		t.Fatalf("n0 = %d, %v", n0, err)
	}
	n1, _ := r.JoinGroup("workers", tids[1])
	n2, _ := r.JoinGroup("workers", tids[2])
	if n1 != 1 || n2 != 2 {
		t.Fatalf("numbers = %d %d", n1, n2)
	}
	// Re-join returns the same number.
	again, _ := r.JoinGroup("workers", tids[1])
	if again != 1 {
		t.Fatalf("rejoin = %d", again)
	}
	if r.GroupSize("workers") != 3 {
		t.Fatalf("size = %d", r.GroupSize("workers"))
	}
	// gettid.
	tid, err := r.GroupTID("workers", 2)
	if err != nil || tid != tids[2] {
		t.Fatalf("gettid = %v %v", tid, err)
	}
	// Leave frees the lowest number, which the next join reuses.
	if err := r.LeaveGroup("workers", tids[0]); err != nil {
		t.Fatal(err)
	}
	if r.GroupSize("workers") != 2 {
		t.Fatalf("size after leave = %d", r.GroupSize("workers"))
	}
	reused, _ := r.JoinGroup("workers", tids[0])
	if reused != 0 {
		t.Fatalf("reused = %d, want 0", reused)
	}
	members := r.GroupMembers("workers")
	if len(members) != 3 || members[0] != tids[0] {
		t.Fatalf("members = %v", members)
	}
}

func TestGroupErrors(t *testing.T) {
	r := NewRouter(nil)
	if _, err := r.JoinGroup("", 1); err == nil {
		t.Fatal("empty group name should fail")
	}
	if _, err := r.JoinGroup("g", 999); err == nil {
		t.Fatal("joining with dead tid should fail")
	}
	if err := r.LeaveGroup("nope", 1); err == nil {
		t.Fatal("leaving unknown group should fail")
	}
	if _, err := r.GroupTID("nope", 0); err == nil {
		t.Fatal("gettid of unknown group should fail")
	}
	if r.GroupSize("nope") != 0 {
		t.Fatal("unknown group size should be 0")
	}
	if r.GroupMembers("nope") != nil {
		t.Fatal("unknown group members should be nil")
	}
}

func TestGroupLeaveUnknownMember(t *testing.T) {
	_, ds := newVM(t, 1, nil)
	d := ds[0]
	hold := make(chan struct{})
	d.RegisterTaskFunc("idle", func(ctx context.Context, self *Task, args []string) error {
		<-hold
		return nil
	})
	tids, _ := d.Spawn("idle", nil, 2)
	defer close(hold)
	if _, err := d.router.JoinGroup("g", tids[0]); err != nil {
		t.Fatal(err)
	}
	if err := d.router.LeaveGroup("g", tids[1]); err == nil {
		t.Fatal("leaving a group one never joined should fail")
	}
	// Last member leaving dissolves the group.
	if err := d.router.LeaveGroup("g", tids[0]); err != nil {
		t.Fatal(err)
	}
	if d.router.GroupSize("g") != 0 {
		t.Fatal("group should dissolve")
	}
}

func TestGroupBcastAndBarrierAcrossDaemons(t *testing.T) {
	_, ds := newVM(t, 3, nil)
	const members = 3
	var got sync.Map
	var wg sync.WaitGroup
	wg.Add(members)
	for _, d := range ds {
		d.RegisterTaskFunc("member", func(ctx context.Context, self *Task, args []string) error {
			defer wg.Done()
			if _, err := self.JoinGroup("g"); err != nil {
				return err
			}
			// Everyone (members + root) waits until the group is fully
			// formed before the broadcast.
			if err := self.GroupBarrier("ready", members+1); err != nil {
				return err
			}
			m, err := self.Recv(AnySrc, 3)
			if err != nil {
				return err
			}
			v, _ := UpkInt(m, "v")
			got.Store(self.TID, v)
			return self.LeaveGroup("g")
		})
	}
	for _, d := range ds {
		if _, err := d.Spawn("member", nil, 1); err != nil {
			t.Fatal(err)
		}
	}
	rootDone := make(chan error, 1)
	ds[0].RegisterTaskFunc("root", func(ctx context.Context, self *Task, args []string) error {
		if err := self.GroupBarrier("ready", members+1); err != nil {
			rootDone <- err
			return err
		}
		if self.GroupSize("g") != members {
			rootDone <- context.DeadlineExceeded
			return nil
		}
		err := self.BcastGroup("g", 3, []wire.Arg{PkInt("v", 11)})
		rootDone <- err
		return err
	})
	if _, err := ds[0].Spawn("root", nil, 1); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-rootDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("root timed out")
	}
	wg.Wait()
	count := 0
	got.Range(func(_, v any) bool {
		if v.(int32) != 11 {
			t.Errorf("v = %v", v)
		}
		count++
		return true
	})
	if count != members {
		t.Fatalf("recipients = %d", count)
	}
}

func TestBcastToEmptyGroup(t *testing.T) {
	_, ds := newVM(t, 1, nil)
	d := ds[0]
	errs := make(chan error, 1)
	d.RegisterTaskFunc("b", func(ctx context.Context, self *Task, args []string) error {
		errs <- self.BcastGroup("nothing", 1, nil)
		return nil
	})
	if _, err := d.Spawn("b", nil, 1); err != nil {
		t.Fatal(err)
	}
	if err := <-errs; err == nil {
		t.Fatal("bcast to unknown group should fail")
	}
}

func TestSpawnOnAndRoundRobin(t *testing.T) {
	router, ds := newVM(t, 3, nil)
	for _, d := range ds {
		d.RegisterTaskFunc("w", func(ctx context.Context, self *Task, args []string) error {
			<-ctx.Done()
			return ctx.Err()
		})
	}
	// Targeted spawn lands on the named daemon.
	tids, err := router.SpawnOn("host2", "w", nil, 2)
	if err != nil || len(tids) != 2 {
		t.Fatalf("tids=%v err=%v", tids, err)
	}
	for _, tid := range tids {
		if _, ok := ds[2].Task(tid); !ok {
			t.Fatalf("task %d not on host2", tid)
		}
	}
	if _, err := router.SpawnOn("ghost", "w", nil, 1); err == nil {
		t.Fatal("unknown node should fail")
	}
	// Round-robin placement covers every daemon.
	rr, err := router.SpawnRoundRobin("w", nil, 6)
	if err != nil || len(rr) != 6 {
		t.Fatalf("rr=%v err=%v", rr, err)
	}
	for i, d := range ds {
		n := len(d.LocalTasks())
		want := 2
		if i == 2 {
			want = 4 // the two targeted ones plus round-robin share
		}
		if n != want {
			t.Fatalf("host%d tasks = %d, want %d", i, n, want)
		}
	}
	// Cleanup.
	for _, d := range ds {
		for _, tid := range d.LocalTasks() {
			if tk, ok := d.Task(tid); ok {
				tk.Kill()
				_ = tk.Wait()
			}
		}
	}
	empty := NewRouter(nil)
	if _, err := empty.SpawnRoundRobin("w", nil, 1); err == nil {
		t.Fatal("round robin with no daemons should fail")
	}
}
