package pvm

import (
	"context"
	"errors"
	"fmt"
	"time"

	"harness2/internal/wire"
)

// AnyTag matches any message tag in Recv, like PVM's -1.
const AnyTag int32 = -1

// AnySrc matches any source task in Recv, like PVM's -1.
const AnySrc TID = -1

// Task is one running PVM task: the handle passed to its TaskFunc, used
// for messaging in the classic pvm_send/pvm_recv style.
type Task struct {
	TID  TID
	Name string

	daemon *Daemon
	ctx    context.Context
	cancel context.CancelFunc
	mbox   chan Message
	done   chan struct{}
	err    error

	// pending buffers messages drained while matching a selective Recv.
	pending []Message
}

// Context returns the task's cancellation context.
func (t *Task) Context() context.Context { return t.ctx }

// Kill cancels the task.
func (t *Task) Kill() { t.cancel() }

func (t *Task) finish(err error) {
	t.err = err
	close(t.done)
	t.daemon.taskExited(t, err)
}

// Wait blocks until the task exits and returns its error.
func (t *Task) Wait() error {
	<-t.done
	return t.err
}

// Send transmits values to dst with the given tag — pvm_send. Values must
// be wire types.
func (t *Task) Send(dst TID, tag int32, body []wire.Arg) error {
	if err := wire.CheckArgs(body); err != nil {
		return err
	}
	return t.daemon.router.Route(t.daemon.node, Message{Src: t.TID, Dst: dst, Tag: tag, Body: body})
}

// Mcast transmits the same message to several tasks — pvm_mcast. Delivery
// is best-effort per destination; the first error is returned after all
// destinations are attempted.
func (t *Task) Mcast(dsts []TID, tag int32, body []wire.Arg) error {
	if err := wire.CheckArgs(body); err != nil {
		return err
	}
	var firstErr error
	for _, dst := range dsts {
		if dst == t.TID {
			continue
		}
		err := t.daemon.router.Route(t.daemon.node, Message{Src: t.TID, Dst: dst, Tag: tag, Body: body})
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ErrTimeout is returned by RecvTimeout when the deadline expires.
var ErrTimeout = errors.New("pvm: receive timed out")

// Recv blocks for the next message matching src and tag (AnySrc/AnyTag
// wildcards) — pvm_recv. Non-matching messages are buffered and remain
// receivable later, preserving arrival order per match set.
func (t *Task) Recv(src TID, tag int32) (Message, error) {
	return t.recv(src, tag, nil)
}

// RecvTimeout is Recv with a deadline — pvm_trecv.
func (t *Task) RecvTimeout(src TID, tag int32, d time.Duration) (Message, error) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	return t.recv(src, tag, timer.C)
}

func match(m Message, src TID, tag int32) bool {
	if src != AnySrc && m.Src != src {
		return false
	}
	if tag != AnyTag && m.Tag != tag {
		return false
	}
	return true
}

func (t *Task) recv(src TID, tag int32, timeout <-chan time.Time) (Message, error) {
	// First scan messages buffered by earlier selective receives.
	for i, m := range t.pending {
		if match(m, src, tag) {
			t.pending = append(t.pending[:i], t.pending[i+1:]...)
			return m, nil
		}
	}
	for {
		select {
		case m := <-t.mbox:
			if match(m, src, tag) {
				return m, nil
			}
			t.pending = append(t.pending, m)
		case <-timeout:
			return Message{}, ErrTimeout
		case <-t.ctx.Done():
			return Message{}, fmt.Errorf("pvm: task %d cancelled: %w", t.TID, t.ctx.Err())
		}
	}
}

// Probe reports whether a matching message is immediately available —
// pvm_probe. It never blocks.
func (t *Task) Probe(src TID, tag int32) bool {
	for _, m := range t.pending {
		if match(m, src, tag) {
			return true
		}
	}
	for {
		select {
		case m := <-t.mbox:
			t.pending = append(t.pending, m)
			if match(m, src, tag) {
				return true
			}
		default:
			return false
		}
	}
}

// Barrier joins the named rendezvous of count parties — pvm_barrier.
func (t *Task) Barrier(name string, count int) error {
	return t.daemon.router.Barrier(name, count)
}

// Spawn lets a task spawn siblings on its own daemon — pvm_spawn from
// inside a task.
func (t *Task) Spawn(name string, args []string, n int) ([]TID, error) {
	return t.daemon.Spawn(name, args, n)
}

// Pack helpers: PVM's pvm_pk* family maps onto named wire args. These are
// thin but keep application code close to the original idiom.

// PkInt packs an int32 under the given name.
func PkInt(name string, v int32) wire.Arg { return wire.Arg{Name: name, Value: v} }

// PkDouble packs a float64 under the given name.
func PkDouble(name string, v float64) wire.Arg { return wire.Arg{Name: name, Value: v} }

// PkDoubleArray packs a []float64 under the given name.
func PkDoubleArray(name string, v []float64) wire.Arg { return wire.Arg{Name: name, Value: v} }

// PkString packs a string under the given name.
func PkString(name string, v string) wire.Arg { return wire.Arg{Name: name, Value: v} }

// UpkInt unpacks an int32 by name from a message body.
func UpkInt(m Message, name string) (int32, error) {
	v, ok := wire.GetArg(m.Body, name)
	if !ok {
		return 0, fmt.Errorf("pvm: message has no %q", name)
	}
	i, ok := v.(int32)
	if !ok {
		return 0, fmt.Errorf("pvm: %q is %T, not int32", name, v)
	}
	return i, nil
}

// UpkDouble unpacks a float64 by name from a message body.
func UpkDouble(m Message, name string) (float64, error) {
	v, ok := wire.GetArg(m.Body, name)
	if !ok {
		return 0, fmt.Errorf("pvm: message has no %q", name)
	}
	f, ok := v.(float64)
	if !ok {
		return 0, fmt.Errorf("pvm: %q is %T, not float64", name, v)
	}
	return f, nil
}

// UpkDoubleArray unpacks a []float64 by name from a message body.
func UpkDoubleArray(m Message, name string) ([]float64, error) {
	v, ok := wire.GetArg(m.Body, name)
	if !ok {
		return nil, fmt.Errorf("pvm: message has no %q", name)
	}
	a, ok := v.([]float64)
	if !ok {
		return nil, fmt.Errorf("pvm: %q is %T, not []float64", name, v)
	}
	return a, nil
}

// UpkString unpacks a string by name from a message body.
func UpkString(m Message, name string) (string, error) {
	v, ok := wire.GetArg(m.Body, name)
	if !ok {
		return "", fmt.Errorf("pvm: message has no %q", name)
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("pvm: %q is %T, not string", name, v)
	}
	return s, nil
}
