package cowmap

import (
	"fmt"
	"sync"
	"testing"
)

func TestBasicStoreLoadDelete(t *testing.T) {
	m := New[int]()
	if _, ok := m.Load("a"); ok {
		t.Fatal("empty map should miss")
	}
	m.Store("a", 1)
	m.Store("b", 2)
	if v, ok := m.Load("a"); !ok || v != 1 {
		t.Fatalf("a = %d %v", v, ok)
	}
	m.Store("a", 3)
	if v, _ := m.Load("a"); v != 3 {
		t.Fatalf("overwrite: a = %d", v)
	}
	if !m.Delete("a") {
		t.Fatal("delete existing")
	}
	if m.Delete("a") {
		t.Fatal("double delete")
	}
	if _, ok := m.Load("a"); ok {
		t.Fatal("deleted key must miss")
	}
	if v, ok := m.Load("b"); !ok || v != 2 {
		t.Fatalf("b = %d %v", v, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("len = %d", m.Len())
	}
}

// TestOverlayMergeBoundary drives one shard far past overlayMax so every
// write regime — overlay grow, merge, tombstone over snapshot, tombstone
// dropped on merge — is exercised, checking the full contents after each
// write.
func TestOverlayMergeBoundary(t *testing.T) {
	m := New[int]()
	want := map[string]int{}
	key := func(i int) string { return fmt.Sprintf("k%d", i) }
	check := func(step string) {
		t.Helper()
		if m.Len() != len(want) {
			t.Fatalf("%s: len = %d want %d", step, m.Len(), len(want))
		}
		for k, v := range want {
			if got, ok := m.Load(k); !ok || got != v {
				t.Fatalf("%s: %s = %d %v want %d", step, k, got, ok, v)
			}
		}
		seen := map[string]int{}
		m.Range(func(k string, v int) bool { seen[k] = v; return true })
		if len(seen) != len(want) {
			t.Fatalf("%s: range saw %d entries want %d", step, len(seen), len(want))
		}
	}
	for i := 0; i < 4*overlayMax; i++ {
		m.Store(key(i), i)
		want[key(i)] = i
		check(fmt.Sprintf("store %d", i))
	}
	for i := 0; i < 4*overlayMax; i += 3 {
		m.Delete(key(i))
		delete(want, key(i))
		check(fmt.Sprintf("delete %d", i))
	}
	for i := 0; i < 4*overlayMax; i++ {
		m.Store(key(i), -i)
		want[key(i)] = -i
		check(fmt.Sprintf("restore %d", i))
	}
}

func TestLoadOrCreate(t *testing.T) {
	m := New[*int]()
	calls := 0
	mk := func() *int { calls++; v := 7; return &v }
	v1, loaded := m.LoadOrCreate("x", mk)
	if loaded || *v1 != 7 || calls != 1 {
		t.Fatalf("first: %v %v calls=%d", v1, loaded, calls)
	}
	v2, loaded := m.LoadOrCreate("x", mk)
	if !loaded || v2 != v1 || calls != 1 {
		t.Fatalf("second: %v %v calls=%d", v2, loaded, calls)
	}
}

func TestUpdate(t *testing.T) {
	m := New[[]string]()
	add := func(s string) {
		m.Update("row", func(old []string, ok bool) ([]string, bool) {
			return append(append([]string(nil), old...), s), true
		})
	}
	add("a")
	add("b")
	if v, _ := m.Load("row"); len(v) != 2 || v[0] != "a" || v[1] != "b" {
		t.Fatalf("row = %v", v)
	}
	// keep=false deletes.
	m.Update("row", func(old []string, ok bool) ([]string, bool) { return nil, false })
	if _, ok := m.Load("row"); ok {
		t.Fatal("update-delete failed")
	}
	// Update of an absent key with keep=false must not create it.
	m.Update("ghost", func(old []string, ok bool) ([]string, bool) {
		if ok {
			t.Fatal("ghost should be absent")
		}
		return nil, false
	})
	if m.Len() != 0 {
		t.Fatalf("len = %d", m.Len())
	}
}

func TestDeleteIf(t *testing.T) {
	m := New[int]()
	m.Store("k", 1)
	if m.DeleteIf("k", func(v int) bool { return v == 2 }) {
		t.Fatal("cond false must not delete")
	}
	if !m.DeleteIf("k", func(v int) bool { return v == 1 }) {
		t.Fatal("cond true must delete")
	}
	if m.DeleteIf("k", func(int) bool { return true }) {
		t.Fatal("absent key must not delete")
	}
}

func TestRebuild(t *testing.T) {
	m := New[int]()
	for i := 0; i < 100; i++ {
		m.Store(fmt.Sprintf("k%d", i), i)
	}
	m.Rebuild(func(k string, v int) (int, bool) {
		if v%2 == 0 {
			return v * 10, true
		}
		return 0, false
	})
	if m.Len() != 50 {
		t.Fatalf("len = %d", m.Len())
	}
	if v, ok := m.Load("k4"); !ok || v != 40 {
		t.Fatalf("k4 = %d %v", v, ok)
	}
	if _, ok := m.Load("k3"); ok {
		t.Fatal("odd keys must be gone")
	}
}

func TestClear(t *testing.T) {
	m := New[int]()
	for i := 0; i < 100; i++ {
		m.Store(fmt.Sprintf("k%d", i), i)
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatalf("len = %d", m.Len())
	}
	if _, ok := m.Load("k1"); ok {
		t.Fatal("cleared key present")
	}
}

// TestConcurrentReadersWriters hammers the map from readers, writers and
// deleters at once; run under -race this is the memory-ordering proof for
// the overlay/snapshot publication protocol.
func TestConcurrentReadersWriters(t *testing.T) {
	m := New[int]()
	const keys = 128
	for i := 0; i < keys; i++ {
		m.Store(fmt.Sprintf("k%d", i), i)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("k%d", (i*7+w)%keys)
				switch i % 3 {
				case 0:
					m.Store(k, i)
				case 1:
					m.Delete(k)
				case 2:
					m.Update(k, func(old int, ok bool) (int, bool) { return old + 1, true })
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m.Load(fmt.Sprintf("k%d", (i+r)%keys))
				if i%100 == 0 {
					m.Range(func(string, int) bool { return true })
					m.Len()
				}
			}
		}(r)
	}
	for i := 0; i < 50; i++ {
		m.Rebuild(func(k string, v int) (int, bool) { return v, true })
	}
	close(stop)
	wg.Wait()
}

// TestWriterNeverHidesOtherKeys pins the invariant the merge-order
// protocol guarantees: a key stored before a burst of writes to OTHER
// keys in the same shard stays visible throughout the burst.
func TestWriterNeverHidesOtherKeys(t *testing.T) {
	m := New[int]()
	m.Store("stable", 42)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m.Store(fmt.Sprintf("x%d", i%1000), i)
		}
	}()
	for i := 0; i < 200_000; i++ {
		if v, ok := m.Load("stable"); !ok || v != 42 {
			t.Errorf("iteration %d: stable = %d %v", i, v, ok)
			break
		}
	}
	close(stop)
	wg.Wait()
}

func BenchmarkLoadHit(b *testing.B) {
	m := New[*int]()
	v := 1
	m.Store("key", &v)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, ok := m.Load("key"); !ok {
				b.Fail()
			}
		}
	})
}

func BenchmarkStore(b *testing.B) {
	m := New[int]()
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Store(keys[i&1023], i)
	}
}
