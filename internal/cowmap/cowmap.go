// Package cowmap provides a sharded, copy-on-write string-keyed map
// whose read path is lock-free and allocation-free: the contention-free
// building block of the S34 "metacity" hot-path rework.
//
// Motivation: the registry store and the discovery cache sit on the one
// path a million concurrent clients actually hammer — resolve a name,
// invoke — and before S34 both guarded their maps with a process-wide
// mutex. Under E15's Zipf-distributed load every cache HIT serialized on
// that mutex (and on one cacheline), so aggregate read throughput
// flat-lined as callers were added. This package removes the locks from
// the read side entirely:
//
//   - Keys hash (FNV-1a) onto one of 64 shards, so unrelated writers
//     never contend and a snapshot rebuild copies 1/64th of the map.
//   - Each shard publishes an immutable snapshot map through an
//     atomic.Pointer. Readers load the pointer and probe the map —
//     two atomic loads, no locks, no allocation, no writes to shared
//     cachelines.
//   - Writers serialize per shard on a mutex and publish either a new
//     small overlay (recent writes, checked by readers before the
//     snapshot) or — once the overlay outgrows overlayMax — a merged
//     snapshot. Writes are therefore amortized O(shard/overlayMax)
//     copies, not O(n), which keeps bulk publishes (the 10⁵-entry E17
//     fill, churn re-replication) linear.
//
// Memory ordering: writers publish a merged snapshot BEFORE clearing the
// overlay, and readers consult the overlay BEFORE the snapshot; with Go's
// sequentially-consistent atomics a reader that misses the overlay is
// guaranteed to see the merged snapshot, so no write is ever invisible.
//
// The map is not a general sync.Map replacement: values should be
// pointers or small headers (they are copied on merge), and iteration
// observes a per-shard consistent, cross-shard loose snapshot.
package cowmap

import (
	"sync"
	"sync/atomic"
)

// shardCount is the fixed shard fan-out (power of two). 64 shards keep
// worst-case snapshot rebuilds at ~1.6% of the population while staying
// cheap to iterate for small maps.
const shardCount = 64

// overlayMax bounds the per-shard overlay before it is merged into the
// snapshot. Writes copy the overlay (≤ overlayMax entries) and merge
// every overlayMax-th write copies the shard snapshot, so the amortized
// per-write cost is O(overlayMax + shard/overlayMax).
const overlayMax = 32

// Map is a sharded copy-on-write map from string keys to V. The zero
// value is NOT ready to use; call New. All methods are safe for
// concurrent use.
type Map[V any] struct {
	shards [shardCount]shard[V]
}

// overEntry is one overlay record: a pending value or a tombstone
// shadowing a snapshot entry.
type overEntry[V any] struct {
	v   V
	del bool
}

// shard is one lock-free-readable partition. Padded so neighbouring
// shards' write locks do not share a cacheline.
type shard[V any] struct {
	mu   sync.Mutex
	snap atomic.Pointer[map[string]V]            // immutable once published
	over atomic.Pointer[map[string]overEntry[V]] // immutable once published; nil = empty
	_    [64 - 8 - 16]byte
}

// New returns an empty map.
func New[V any]() *Map[V] {
	return &Map[V]{}
}

// fnv1a hashes the key onto a shard without allocating.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (m *Map[V]) shard(key string) *shard[V] {
	return &m.shards[fnv1a(key)&(shardCount-1)]
}

// Load returns the value stored under key. The read path is two atomic
// pointer loads and at most two map probes: no locks, no allocation.
func (m *Map[V]) Load(key string) (V, bool) {
	sh := m.shard(key)
	if op := sh.over.Load(); op != nil {
		if e, ok := (*op)[key]; ok {
			if e.del {
				var zero V
				return zero, false
			}
			return e.v, true
		}
	}
	if sp := sh.snap.Load(); sp != nil {
		v, ok := (*sp)[key]
		return v, ok
	}
	var zero V
	return zero, false
}

// loadLocked is Load for a writer already holding sh.mu.
func (sh *shard[V]) loadLocked(key string) (V, bool) {
	if op := sh.over.Load(); op != nil {
		if e, ok := (*op)[key]; ok {
			if e.del {
				var zero V
				return zero, false
			}
			return e.v, true
		}
	}
	if sp := sh.snap.Load(); sp != nil {
		v, ok := (*sp)[key]
		return v, ok
	}
	var zero V
	return zero, false
}

// publish applies one overlay entry under sh.mu: it either publishes a
// grown overlay copy or, past overlayMax, merges overlay+entry into a
// fresh snapshot (stored BEFORE the overlay is cleared — see the package
// comment for why that order keeps readers consistent).
func (sh *shard[V]) publish(key string, e overEntry[V]) {
	old := sh.over.Load()
	if old == nil && e.del {
		// Deleting a key that has no overlay shadow and no snapshot
		// presence needs no tombstone.
		if sp := sh.snap.Load(); sp == nil {
			return
		} else if _, ok := (*sp)[key]; !ok {
			return
		}
	}
	n := 1
	if old != nil {
		n += len(*old)
	}
	if n <= overlayMax {
		next := make(map[string]overEntry[V], n)
		if old != nil {
			for k, v := range *old {
				next[k] = v
			}
		}
		next[key] = e
		sh.over.Store(&next)
		return
	}
	// Merge: copy the snapshot, apply the overlay plus the new entry.
	var base map[string]V
	if sp := sh.snap.Load(); sp != nil {
		base = *sp
	}
	merged := make(map[string]V, len(base)+n)
	for k, v := range base {
		merged[k] = v
	}
	apply := func(k string, oe overEntry[V]) {
		if oe.del {
			delete(merged, k)
		} else {
			merged[k] = oe.v
		}
	}
	if old != nil {
		for k, oe := range *old {
			apply(k, oe)
		}
	}
	apply(key, e)
	sh.snap.Store(&merged)
	sh.over.Store(nil)
}

// Store sets key to value.
func (m *Map[V]) Store(key string, value V) {
	sh := m.shard(key)
	sh.mu.Lock()
	sh.publish(key, overEntry[V]{v: value})
	sh.mu.Unlock()
}

// Delete removes key, reporting whether it was present.
func (m *Map[V]) Delete(key string) bool {
	sh := m.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.loadLocked(key); !ok {
		return false
	}
	sh.publish(key, overEntry[V]{del: true})
	return true
}

// DeleteIf removes key when cond holds for the current value, reporting
// whether a removal happened. Used for eviction races: "delete this
// cache slot only if it is still the one I found expired".
func (m *Map[V]) DeleteIf(key string, cond func(V) bool) bool {
	sh := m.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	v, ok := sh.loadLocked(key)
	if !ok || !cond(v) {
		return false
	}
	sh.publish(key, overEntry[V]{del: true})
	return true
}

// LoadOrCreate returns the value under key, creating it with mk (called
// at most once, under the shard lock) when absent. loaded reports
// whether the value already existed. The hit path is lock-free.
func (m *Map[V]) LoadOrCreate(key string, mk func() V) (v V, loaded bool) {
	if v, ok := m.Load(key); ok {
		return v, true
	}
	sh := m.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if v, ok := sh.loadLocked(key); ok {
		return v, true
	}
	v = mk()
	sh.publish(key, overEntry[V]{v: v})
	return v, false
}

// Update atomically read-modify-writes the value under key: f receives
// the current value (ok=false when absent) and returns the replacement
// and whether to keep it (keep=false deletes).
func (m *Map[V]) Update(key string, f func(old V, ok bool) (V, bool)) {
	sh := m.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old, ok := sh.loadLocked(key)
	next, keep := f(old, ok)
	if keep {
		sh.publish(key, overEntry[V]{v: next})
	} else if ok {
		sh.publish(key, overEntry[V]{del: true})
	}
}

// Range calls f for every entry until f returns false. Iteration is
// lock-free: each shard contributes one consistent overlay+snapshot
// pair, but entries written while Range runs may or may not be seen.
func (m *Map[V]) Range(f func(key string, v V) bool) {
	for i := range m.shards {
		sh := &m.shards[i]
		op := sh.over.Load()
		sp := sh.snap.Load()
		if sp != nil {
			for k, v := range *sp {
				if op != nil {
					if _, shadowed := (*op)[k]; shadowed {
						continue
					}
				}
				if !f(k, v) {
					return
				}
			}
		}
		if op != nil {
			for k, e := range *op {
				if e.del {
					continue
				}
				if !f(k, e.v) {
					return
				}
			}
		}
	}
}

// Rebuild atomically filters/replaces every entry of each shard in one
// snapshot swap per shard: keep returns the (possibly replaced) value
// and whether to retain it. This is the bulk-delete primitive the
// registry's lease-expiry sweep uses — one copy per shard instead of a
// tombstone per expired key.
func (m *Map[V]) Rebuild(keep func(key string, v V) (V, bool)) {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		var base map[string]V
		if sp := sh.snap.Load(); sp != nil {
			base = *sp
		}
		op := sh.over.Load()
		next := make(map[string]V, len(base))
		consider := func(k string, v V) {
			if nv, ok := keep(k, v); ok {
				next[k] = nv
			}
		}
		for k, v := range base {
			if op != nil {
				if _, shadowed := (*op)[k]; shadowed {
					continue
				}
			}
			consider(k, v)
		}
		if op != nil {
			for k, e := range *op {
				if !e.del {
					consider(k, e.v)
				}
			}
		}
		sh.snap.Store(&next)
		sh.over.Store(nil)
		sh.mu.Unlock()
	}
}

// Clear empties the map, one shard swap at a time.
func (m *Map[V]) Clear() {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		sh.snap.Store(nil)
		sh.over.Store(nil)
		sh.mu.Unlock()
	}
}

// Len counts the live entries. Like Range it is lock-free and loosely
// consistent under concurrent writes.
func (m *Map[V]) Len() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		op := sh.over.Load()
		sp := sh.snap.Load()
		if sp != nil {
			n += len(*sp)
		}
		if op != nil {
			for k, e := range *op {
				inSnap := false
				if sp != nil {
					_, inSnap = (*sp)[k]
				}
				switch {
				case e.del && inSnap:
					n--
				case !e.del && !inSnap:
					n++
				}
			}
		}
	}
	return n
}
