package profiling

import (
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
)

func TestServe(t *testing.T) {
	defer runtime.SetMutexProfileFraction(runtime.SetMutexProfileFraction(0))
	defer runtime.SetBlockProfileRate(0)

	addr, err := Serve("127.0.0.1:0", 5, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if runtime.SetMutexProfileFraction(-1) != 5 {
		t.Error("mutex profile fraction not applied")
	}

	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/mutex",
		"/debug/pprof/block",
		"/debug/pprof/goroutine",
	} {
		resp, err := http.Get("http://" + addr + path + "?debug=1")
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Errorf("GET %s: empty body", path)
		}
	}
}

func TestServeZeroLeavesProfilersOff(t *testing.T) {
	defer runtime.SetMutexProfileFraction(runtime.SetMutexProfileFraction(0))
	runtime.SetMutexProfileFraction(0)

	if _, err := Serve("127.0.0.1:0", 0, 0); err != nil {
		t.Fatal(err)
	}
	if got := runtime.SetMutexProfileFraction(-1); got != 0 {
		t.Errorf("mutex profile fraction %d, want 0", got)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bad", 0, 0); err == nil {
		t.Fatal("expected error for unusable address")
	} else if !strings.Contains(err.Error(), "profiling:") {
		t.Errorf("error %q not wrapped with package prefix", err)
	}
}
