// Package profiling exposes the Go runtime profiler over HTTP for the
// long-running daemons (hnode, hregistry) and the benchmark driver
// (hbench). The metacity-scale work (ISSUE 10 / E15) lives and dies by
// contention profiles: the sharded registry store and the lock-free
// discovery cache were tuned against exactly the mutex and block
// profiles this package serves, so every binary grows a -pprof flag
// that turns them on without a rebuild.
//
// The handlers are mounted on a private mux bound to the operator's
// chosen address — never on the service mux — so enabling profiling
// does not widen the public SOAP/XDR surface.
package profiling

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// Serve starts the pprof endpoint on addr (e.g. "127.0.0.1:6060") and
// returns the bound address (useful with a ":0" port). mutexFraction
// and blockRate seed runtime.SetMutexProfileFraction and
// runtime.SetBlockProfileRate; pass 0 to leave either profiler off —
// both cost a sampled stack capture per contention event, so the
// defaults stay off until an operator asks.
//
// The listener serves until the process exits; profiling endpoints
// have no graceful-shutdown story to tell.
func Serve(addr string, mutexFraction, blockRate int) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("profiling: %w", err)
	}
	if mutexFraction > 0 {
		runtime.SetMutexProfileFraction(mutexFraction)
	}
	if blockRate > 0 {
		runtime.SetBlockProfileRate(blockRate)
	}
	srv := &http.Server{
		Handler:           Mux(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Mux returns a mux carrying the standard pprof handler set under
// /debug/pprof/, the same layout net/http/pprof installs on the
// default mux (index, profile, symbol, cmdline, trace, and the named
// runtime profiles via the index handler).
func Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
