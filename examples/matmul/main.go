// MatMul: the paper's Figure 8 service with all three access mechanisms.
//
// The example deploys the MatMul component, prints its generated WSDL
// (Figure 8's document, extended with the XDR binding), then multiplies
// the same pair of matrices through each binding — SOAP/HTTP, XDR socket,
// and local JavaObject — timing each to show the localization and
// encoding hierarchy the paper's design targets. It finishes with the
// SOAP array-encoding ablation (base64 vs hex vs element-wise).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"harness2"
)

const n = 128

func main() {
	fw := harness.NewFramework(nil)
	defer fw.Close()
	node, err := fw.AddNode("node1", harness.NodeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	harness.RegisterBuiltins(node.Container())
	if _, _, err := fw.DeployAndPublish("node1", "MatMul", "mm"); err != nil {
		log.Fatal(err)
	}
	defsList, err := fw.Discover("MatMul")
	if err != nil || len(defsList) == 0 {
		log.Fatalf("discover: %v", err)
	}
	defs := defsList[0]
	fmt.Println("--- MatMul WSDL (paper Figure 8 equivalent, plus XDR binding) ---")
	fmt.Println(defs.String())

	a := randomMatrix(1)
	b := randomMatrix(2)
	args := harness.Args("mata", a, "matb", b, "n", int32(n))
	want, err := harness.MatMul(a, b, n)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	fmt.Printf("multiplying two %d×%d matrices through every binding:\n", n, n)
	ports := harness.OpenAll(defs, harness.DialOptions{
		LocalContainers: []*harness.Container{node.Container()},
	})
	for _, p := range ports {
		start := time.Now()
		out, err := p.Invoke(ctx, "getResult", args)
		if err != nil {
			log.Fatalf("%v binding: %v", p.Kind(), err)
		}
		elapsed := time.Since(start)
		res, _ := harness.GetArg(out, "result")
		if !equal(res.([]float64), want) {
			log.Fatalf("%v binding returned a wrong product", p.Kind())
		}
		fmt.Printf("  %-6v binding via %-40s %v\n", p.Kind(), p.Endpoint(), elapsed)
		_ = p.Close()
	}

	// Ablation: the SOAP binding under each array encoding.
	fmt.Println("SOAP array-encoding ablation (same call):")
	soapRefs := defs.PortsByKind(harness.BindSOAP)
	for _, enc := range []harness.ArrayEncoding{
		harness.EncodeBase64, harness.EncodeElementwise, harness.EncodeHex,
	} {
		p, err := harness.Dial(defs, harness.DialOptions{
			Codec:  harness.SOAPCodec{Arrays: enc},
			Forbid: []harness.BindingKind{harness.BindXDR, harness.BindJavaObject},
		})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if _, err := p.Invoke(ctx, "getResult", args); err != nil {
			log.Fatalf("soap/%v: %v", enc, err)
		}
		fmt.Printf("  soap arrays=%-12v %v\n", enc, time.Since(start))
		_ = p.Close()
	}
	_ = soapRefs
}

func randomMatrix(seed int64) []float64 {
	out := make([]float64, n*n)
	x := uint64(seed)*2654435761 + 1
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = float64(int64(x%2000)-1000) / 100
	}
	return out
}

func equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
