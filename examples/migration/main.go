// Migration: mobile components and failure recovery in a DVM.
//
// The paper's metacomputing model allows that "mobile components may even
// move from one host to another during run time". This example builds a
// three-node DVM under full-synchrony coherency, deploys a stateful
// accumulator, feeds it work, migrates it live between nodes (state
// intact, unified namespace updated), then kills a node and lets the
// heartbeat failure detector evict it — showing the dead node's services
// vanishing from every surviving member's view.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"harness2"
)

func accumulatorFactory() harness.Factory {
	return harness.FuncFactory(func() *harness.FuncComponent {
		var mu sync.Mutex
		var sum float64
		f := &harness.FuncComponent{
			Spec: harness.ServiceSpec{Name: "Accumulator", Operations: []harness.OpSpec{
				{Name: "add",
					Input:  []harness.ParamSpec{{Name: "x", Type: harness.KindFloat64}},
					Output: []harness.ParamSpec{{Name: "sum", Type: harness.KindFloat64}}},
			}},
		}
		f.Handlers = map[string]harness.OpFunc{
			"add": func(ctx context.Context, args []harness.Arg) ([]harness.Arg, error) {
				xv, _ := harness.GetArg(args, "x")
				mu.Lock()
				defer mu.Unlock()
				sum += xv.(float64)
				return harness.Args("sum", sum), nil
			},
		}
		f.OnSnapshot = func() ([]harness.StateField, error) {
			mu.Lock()
			defer mu.Unlock()
			return []harness.StateField{{Name: "sum", Value: sum}}, nil
		}
		f.OnRestore = func(state []harness.StateField) error {
			mu.Lock()
			defer mu.Unlock()
			for _, s := range state {
				if s.Name == "sum" {
					sum = s.Value.(float64)
					return nil
				}
			}
			return fmt.Errorf("state missing sum")
		}
		return f
	})
}

func main() {
	net := harness.NewSimNetwork(harness.LAN)
	d := harness.NewDVM("mobility-demo", harness.NewFullSync(net))
	nodes := []string{"alpha", "beta", "gamma"}
	for _, name := range nodes {
		c := harness.NewContainer(harness.ContainerConfig{Name: name})
		c.RegisterFactory("Accumulator", accumulatorFactory())
		if err := d.AddNode(c); err != nil {
			log.Fatal(err)
		}
	}

	if _, err := d.Deploy("alpha", "Accumulator", "acc"); err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	feed := func(x float64) float64 {
		out, err := d.Invoke(ctx, "gamma", harness.DVMQuery{Service: "Accumulator"}, "add",
			harness.Args("x", x))
		if err != nil {
			log.Fatal(err)
		}
		v, _ := harness.GetArg(out, "sum")
		return v.(float64)
	}

	feed(1)
	feed(2)
	fmt.Printf("deployed on alpha; sum after feeding 1+2+3 = %v\n", feed(3))
	where(d, "before migration")

	if err := d.Migrate("alpha", "acc", "beta"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("migrated alpha→beta; sum after feeding 4 = %v (state survived)\n", feed(4))
	where(d, "after migration")

	// beta dies: partition it from everyone, then let the detector evict.
	for _, n := range nodes {
		if n != "beta" {
			net.Partition(n, "beta", true)
		}
	}
	det := harness.NewFailureDetector(d, 3)
	evicted, err := d.EvictFailed("alpha", det)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure detector evicted: %v\n", evicted)
	where(d, "after eviction")

	entries, err := d.Lookup("alpha", harness.DVMQuery{Service: "Accumulator"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("surviving Accumulator entries: %d (the component died with beta —\n", len(entries))
	fmt.Println("a production system would re-deploy from its last snapshot)")
}

func where(d *harness.DVM, label string) {
	entries, err := d.Lookup("gamma", harness.DVMQuery{Service: "Accumulator"})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		fmt.Printf("  [%s] %s lives on %s\n", label, e.Instance, e.Node)
	}
}
