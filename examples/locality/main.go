// Locality: the Section 6 LAPACK scenario.
//
// "A user's application is composed of two main components: the
// application logic and the computational library (e.g. LAPACK)." The
// example deploys the LinSolve component (the optimized-library stand-in)
// on a node, then runs the same batch of solves from three placements of
// the application logic:
//
//  1. on the user's home node, calling the library remotely over SOAP;
//  2. on a well-connected node, using the XDR socket binding;
//  3. uploaded into the library's own container, using the local
//     JavaObject binding.
//
// Each step down the list is the migration the paper describes, and each
// should cut the per-job time.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"harness2"
)

const (
	n    = 200
	jobs = 10
)

func main() {
	fw := harness.NewFramework(nil)
	defer fw.Close()
	node, err := fw.AddNode("library-node", harness.NodeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	harness.RegisterBuiltins(node.Container())
	if _, _, err := fw.DeployAndPublish("library-node", "LinSolve", "lapack"); err != nil {
		log.Fatal(err)
	}
	defsList, err := fw.Discover("LinSolve")
	if err != nil || len(defsList) == 0 {
		log.Fatalf("discover: %v", err)
	}
	defs := defsList[0]

	r := rand.New(rand.NewSource(42))
	a := make([]float64, n*n)
	for i := range a {
		a[i] = r.NormFloat64()
	}
	for i := 0; i < n; i++ {
		a[i*n+i] += n + 1 // well-conditioned
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	args := harness.Args("a", a, "b", b, "n", int32(n))
	ctx := context.Background()

	type placement struct {
		label  string
		forbid []harness.BindingKind
		local  []*harness.Container
	}
	placements := []placement{
		{"home node, SOAP to remote library", []harness.BindingKind{harness.BindXDR, harness.BindJavaObject}, nil},
		{"nearby node, XDR socket to library", []harness.BindingKind{harness.BindJavaObject}, nil},
		{"inside the library container, local binding", nil, []*harness.Container{node.Container()}},
	}
	var prev time.Duration
	for _, pl := range placements {
		p, err := harness.Dial(defs, harness.DialOptions{Forbid: pl.forbid, LocalContainers: pl.local})
		if err != nil {
			log.Fatalf("%s: %v", pl.label, err)
		}
		start := time.Now()
		for j := 0; j < jobs; j++ {
			out, err := p.Invoke(ctx, "solve", args)
			if err != nil {
				log.Fatalf("%s: %v", pl.label, err)
			}
			if j == 0 {
				x, _ := harness.GetArg(out, "x")
				checkResidual(a, b, x.([]float64))
			}
		}
		total := time.Since(start)
		_ = p.Close()
		speedup := ""
		if prev > 0 {
			speedup = fmt.Sprintf("  (%.2fx faster than previous placement)", float64(prev)/float64(total))
		}
		fmt.Printf("%-45s binding=%-5v %2d jobs in %8v%s\n", pl.label, p.Kind(), jobs, total, speedup)
		prev = total
	}
}

func checkResidual(a, b, x []float64) {
	worst := 0.0
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			sum += a[i*n+j] * x[j]
		}
		if d := sum - b[i]; d > worst || -d > worst {
			if d < 0 {
				d = -d
			}
			worst = d
		}
	}
	if worst > 1e-6 {
		log.Fatalf("solution residual too large: %g", worst)
	}
}
