// Quickstart: the paper's Figure 7 WSTime service, end to end.
//
// It walks the full HARNESS II loop: start a node, deploy the trivial
// Time component, generate and print its WSDL description (the document
// of Figure 7, with SOAP and JavaObject bindings), publish it in the
// lookup service, discover it back, and invoke it twice — once through
// the standard SOAP/HTTP binding (any SOAP client could do this) and once
// through the local JavaObject binding (no encoding, no network hop).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"harness2"
)

func main() {
	fw := harness.NewFramework(nil)
	defer fw.Close()

	node, err := fw.AddNode("node1", harness.NodeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	harness.RegisterBuiltins(node.Container())

	// Deploy and publish: the provider's run-time exposure decision.
	if _, _, err := fw.DeployAndPublish("node1", "WSTime", "clock"); err != nil {
		log.Fatal(err)
	}

	// Discover the service the way any WSDL-aware client would.
	defsList, err := fw.Discover("WSTime")
	if err != nil || len(defsList) == 0 {
		log.Fatalf("discover: %v", err)
	}
	defs := defsList[0]
	fmt.Println("--- WSTime WSDL (paper Figure 7 equivalent) ---")
	fmt.Println(defs.String())

	ctx := context.Background()

	// 1. The standard SOAP/HTTP binding: the handheld-client path.
	soapPort, err := fw.DialRemote(defs)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	out, err := soapPort.Invoke(ctx, "getTime", nil)
	if err != nil {
		log.Fatal(err)
	}
	soapTime := time.Since(start)
	v, _ := harness.GetArg(out, "time")
	fmt.Printf("SOAP  binding (%s): getTime() = %q in %v\n", soapPort.Endpoint(), v, soapTime)
	_ = soapPort.Close()

	// 2. The HARNESS II JavaObject binding: local, non-mediated access to
	// the same stateful instance.
	localPort, err := fw.Dial(defs)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	out, err = localPort.Invoke(ctx, "getTime", nil)
	if err != nil {
		log.Fatal(err)
	}
	localTime := time.Since(start)
	v, _ = harness.GetArg(out, "time")
	fmt.Printf("local binding (%s): getTime() = %q in %v\n", localPort.Endpoint(), v, localTime)
	_ = localPort.Close()

	if localTime > 0 {
		fmt.Printf("localization win: SOAP costs %.0fx the local binding\n",
			float64(soapTime)/float64(localTime))
	}
}
