// MPI π: the canonical MPI demonstration running on the Harness plugin
// stack. The paper lists the MPI emulation among the environment plugins
// ("currently PVM, MPI, and JavaSpaces plugins are available"); this
// example loads hpvmd (and its event/table plugin dependencies) on four
// kernels, forms an eight-rank MPI world across them, and estimates π by
// parallel numerical integration with Reduce, then verifies with an
// AllReduce and a Scatter/Gather round.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"harness2/internal/container"
	"harness2/internal/events"
	"harness2/internal/kernel"
	"harness2/internal/mpi"
	"harness2/internal/namesvc"
	"harness2/internal/pvm"
	"harness2/internal/simnet"
)

const (
	hosts = 4
	ranks = 8
	steps = 2_000_000
)

func main() {
	net := simnet.New(simnet.LAN)
	router := pvm.NewRouter(net)
	daemons := make([]*pvm.Daemon, hosts)
	for i := range daemons {
		name := fmt.Sprintf("host%d", i)
		k := kernel.New(name, container.Config{})
		k.RegisterPlugin(events.PluginClass, events.Factory())
		k.RegisterPlugin(namesvc.PluginClass, namesvc.Factory())
		k.RegisterPlugin(pvm.PluginClass, pvm.Factory(name, router),
			events.PluginClass, namesvc.PluginClass)
		if err := k.Load(pvm.PluginClass); err != nil {
			log.Fatal(err)
		}
		comp, _ := k.Plugin(pvm.PluginClass)
		daemons[i] = comp.(*pvm.Daemon)
	}
	world, err := mpi.NewWorld(router, daemons)
	if err != nil {
		log.Fatal(err)
	}

	err = world.Run(ranks, func(ctx context.Context, c *mpi.Comm) error {
		// Integrate 4/(1+x²) over [0,1]: each rank takes a strided slice.
		h := 1.0 / steps
		local := 0.0
		for i := c.Rank(); i < steps; i += c.Size() {
			x := h * (float64(i) + 0.5)
			local += 4.0 / (1.0 + x*x)
		}
		pi, err := c.Reduce(0, mpi.OpSum, local*h)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Printf("π ≈ %.12f  (error %.2e, %d ranks on %d hosts)\n",
				pi, math.Abs(pi-math.Pi), c.Size(), hosts)
		}

		// Everyone learns the global maximum of the local partial sums.
		maxPart, err := c.AllReduce(mpi.OpMax, local*h)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Printf("largest per-rank contribution: %.6f\n", maxPart)
		}

		// Scatter/gather round trip: root distributes a vector, each rank
		// squares its chunk, root gathers.
		var data []float64
		if c.Rank() == 0 {
			data = make([]float64, 2*c.Size())
			for i := range data {
				data[i] = float64(i)
			}
		}
		chunk, err := c.Scatter(0, data)
		if err != nil {
			return err
		}
		for i := range chunk {
			chunk[i] *= chunk[i]
		}
		squared, err := c.Gather(0, chunk)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Printf("scatter/square/gather over %d ranks: %v ... %v\n",
				c.Size(), squared[:3], squared[len(squared)-1])
		}
		return c.Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}
	st := net.Stats()
	fmt.Printf("fabric traffic: %d inter-host messages, %d bytes\n", st.Messages, st.Bytes)
}
