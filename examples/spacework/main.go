// Space-based master/worker: the JavaSpaces emulation plugin as a
// coordination substrate.
//
// A master writes task entries into a tuple space deployed as a kernel
// plugin; four workers take tasks by template, compute (a LinSolve job
// per task), and write result entries back; the master collects results
// by template. Decoupled in time and space — no worker knows the master,
// matching the JavaSpaces model the paper lists among the environment
// plugins.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"harness2/internal/container"
	"harness2/internal/core"
	"harness2/internal/jspaces"
	"harness2/internal/kernel"
	"harness2/internal/wire"
)

const (
	tasks   = 24
	workers = 4
	matrixN = 192
)

func main() {
	k := kernel.New("space-node", container.Config{})
	k.RegisterPlugin(jspaces.PluginClass, jspaces.Factory())
	if err := k.Load(jspaces.PluginClass); err != nil {
		log.Fatal(err)
	}
	comp, _ := k.Plugin(jspaces.PluginClass)
	space := comp.(*jspaces.Component).Space()

	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			solved := 0
			for {
				// Take a task; a short timeout doubles as the shutdown
				// signal once the bag drains.
				entry, err := space.Take(ctx, wire.NewStruct("Task"), 300*time.Millisecond)
				if err != nil {
					fmt.Printf("worker %d: done after %d tasks\n", w, solved)
					return
				}
				seqV, _ := entry.Get("seq")
				seedV, _ := entry.Get("seed")
				x := solve(seedV.(int64))
				res := wire.NewStruct("Result").
					Set("seq", seqV).
					Set("worker", int32(w)).
					Set("x0", x[0])
				if _, err := space.Write(res, 0); err != nil {
					log.Fatal(err)
				}
				solved++
			}
		}(w)
	}

	// Master: write the bag of tasks, then collect all results.
	start := time.Now()
	for i := 0; i < tasks; i++ {
		task := wire.NewStruct("Task").
			Set("seq", int32(i)).
			Set("seed", int64(i)*7919)
		if _, err := space.Write(task, 0); err != nil {
			log.Fatal(err)
		}
	}
	perWorker := map[int32]int{}
	for i := 0; i < tasks; i++ {
		res, err := space.Take(ctx, wire.NewStruct("Result"), 10*time.Second)
		if err != nil {
			log.Fatalf("collecting result %d: %v", i, err)
		}
		wv, _ := res.Get("worker")
		perWorker[wv.(int32)]++
	}
	elapsed := time.Since(start)
	wg.Wait()

	fmt.Printf("%d LinSolve(%d×%d) tasks through the tuple space in %v\n",
		tasks, matrixN, matrixN, elapsed)
	for w := int32(0); w < workers; w++ {
		fmt.Printf("  worker %d solved %d\n", w, perWorker[w])
	}
	if space.Count(nil) != 0 {
		log.Fatalf("space not drained: %d entries remain", space.Count(nil))
	}
}

// solve builds a deterministic well-conditioned system and solves it.
func solve(seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	a := make([]float64, matrixN*matrixN)
	for i := range a {
		a[i] = r.NormFloat64()
	}
	for i := 0; i < matrixN; i++ {
		a[i*matrixN+i] += matrixN + 1
	}
	b := make([]float64, matrixN)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	x, err := core.LinSolve(a, b, matrixN)
	if err != nil {
		log.Fatal(err)
	}
	return x
}
