// PVM ring: a classic PVM application running on the Harness plugin
// stack of Figures 1 and 2.
//
// Four kernels each load the event-management, table-lookup, and hpvmd
// plugins (hpvmd declares the other two as dependencies, so the kernel
// loads them first — the plugin-leveraging behaviour of Figure 2). A
// token then circulates around one ring task per kernel for a configured
// number of laps, and the example reports the per-hop latency and the
// traffic the router charged to the simulated LAN fabric.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"harness2/internal/container"
	"harness2/internal/events"
	"harness2/internal/kernel"
	"harness2/internal/namesvc"
	"harness2/internal/pvm"
	"harness2/internal/simnet"
	"harness2/internal/wire"
)

const (
	hosts = 4
	laps  = 250
)

func main() {
	net := simnet.New(simnet.LAN)
	router := pvm.NewRouter(net)

	daemons := make([]*pvm.Daemon, hosts)
	for i := range daemons {
		name := fmt.Sprintf("host%d", i)
		k := kernel.New(name, container.Config{})
		k.RegisterPlugin(events.PluginClass, events.Factory())
		k.RegisterPlugin(namesvc.PluginClass, namesvc.Factory())
		k.RegisterPlugin(pvm.PluginClass, pvm.Factory(name, router),
			events.PluginClass, namesvc.PluginClass)
		if err := k.Load(pvm.PluginClass); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s loaded plugins: %v\n", name, k.Loaded())
		comp, _ := k.Plugin(pvm.PluginClass)
		daemons[i] = comp.(*pvm.Daemon)
	}

	result := make(chan time.Duration, 1)
	for i, d := range daemons {
		isRoot := i == 0
		d.RegisterTaskFunc("ring", func(ctx context.Context, self *pvm.Task, args []string) error {
			setup, err := self.Recv(pvm.AnySrc, 0)
			if err != nil {
				return err
			}
			next, _ := pvm.UpkInt(setup, "next")
			var start time.Time
			if isRoot {
				start = time.Now()
				if err := self.Send(pvm.TID(next), 1, []wire.Arg{pvm.PkInt("hops", 0)}); err != nil {
					return err
				}
			}
			for {
				m, err := self.Recv(pvm.AnySrc, pvm.AnyTag)
				if err != nil {
					return err
				}
				if m.Tag == 2 {
					if !isRoot {
						_ = self.Send(pvm.TID(next), 2, nil)
					}
					return nil
				}
				hops, _ := pvm.UpkInt(m, "hops")
				if isRoot && hops >= int32(laps*hosts) {
					result <- time.Since(start)
					return self.Send(pvm.TID(next), 2, nil)
				}
				if err := self.Send(pvm.TID(next), 1, []wire.Arg{pvm.PkInt("hops", hops+1)}); err != nil {
					return err
				}
			}
		})
	}

	// Spawn one ring member per daemon, then wire the topology.
	tids := make([]pvm.TID, hosts)
	for i, d := range daemons {
		got, err := d.Spawn("ring", nil, 1)
		if err != nil {
			log.Fatal(err)
		}
		tids[i] = got[0]
	}
	for i, d := range daemons {
		next := tids[(i+1)%hosts]
		d.RegisterTaskFunc("wire", func(ctx context.Context, self *pvm.Task, args []string) error {
			return self.Send(tids[i], 0, []wire.Arg{pvm.PkInt("next", int32(next))})
		})
		if _, err := d.Spawn("wire", nil, 1); err != nil {
			log.Fatal(err)
		}
	}

	select {
	case elapsed := <-result:
		totalHops := laps * hosts
		fmt.Printf("token completed %d laps (%d hops) in %v — %.1fµs/hop\n",
			laps, totalHops, elapsed, float64(elapsed.Microseconds())/float64(totalHops))
	case <-time.After(30 * time.Second):
		log.Fatal("ring did not complete")
	}
	st := net.Stats()
	fmt.Printf("fabric traffic: %d inter-host messages, %d bytes\n", st.Messages, st.Bytes)
	fmt.Printf("spawn events published per host: %d\n", daemons[0].EventsPublished(pvm.TopicSpawn))
}
